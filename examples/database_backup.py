#!/usr/bin/env python3
"""Database backup scenario: the paper's S-DB workload with retention.

A database exports full-volume snapshots of its tables on a schedule.
SLIMSTORE deduplicates across versions, the G-node compacts sparse
containers and reverse-deduplicates offline, and a rolling retention
window collects old versions (Section VI-B).  This is the workload behind
the paper's Figs 5-9.

Run:  python examples/database_backup.py
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.workloads import SDBConfig, SDBGenerator

RETENTION_VERSIONS = 5


def main() -> None:
    generator = SDBGenerator(
        SDBConfig(
            table_count=3,
            initial_table_bytes=1 << 20,
            version_count=12,
            seed=2021,
        )
    )
    config = SlimStoreConfig(
        merge_threshold=4,
        min_superchunk_bytes=16 * 1024,
        max_superchunk_bytes=64 * 1024,
    )
    store = SlimStore(config)

    print(f"Backing up {generator.config.table_count} tables x "
          f"{generator.config.version_count} versions, keeping the last "
          f"{RETENTION_VERSIONS}.\n")
    header = (
        f"{'ver':>3}  {'dedup':>6}  {'MB/s':>6}  {'G-dups':>6}  "
        f"{'sparse':>6}  {'stored MB':>9}"
    )
    print(header)
    print("-" * len(header))

    for dataset_version in generator.versions():
        reverse_dups = 0
        sparse = 0
        ratios = []
        throughputs = []
        for item in dataset_version.files:
            report = store.backup(item.path, item.data)
            ratios.append(report.dedup_ratio)
            throughputs.append(report.throughput_mb_s)
            if report.reverse_dedup:
                reverse_dups += report.reverse_dedup.duplicates_removed
            if report.compaction:
                sparse += len(report.compaction.sparse_containers)
            # Rolling retention: drop the version that fell off the window.
            expired = dataset_version.version - RETENTION_VERSIONS
            if expired >= 0:
                store.delete_version(item.path, expired)
        stored = store.space_report().container_bytes / (1 << 20)
        print(
            f"{dataset_version.version:>3}  {sum(ratios)/len(ratios):>6.1%}  "
            f"{sum(throughputs)/len(throughputs):>6.0f}  {reverse_dups:>6}  "
            f"{sparse:>6}  {stored:>9.1f}"
        )

    print("\nVerifying the retained window restores byte-exactly...")
    snapshot = generator.current_version()
    for item in snapshot.files:
        live = store.versions(item.path)
        restored = store.restore(item.path, live[-1])
        assert restored.data == item.data, item.path
        print(f"  {item.path}: versions {live[0]}..{live[-1]} live, latest OK "
              f"({restored.containers_read} container reads)")

    summary = generator.summary()
    print(f"\nDataset: {summary.total_bytes / (1 << 20):.0f} MB logical, "
          f"avg duplication ratio {summary.average_duplication_ratio:.2f}; "
          f"stored {store.space_report().container_bytes / (1 << 20):.1f} MB.")


if __name__ == "__main__":
    main()
