#!/usr/bin/env python3
"""Quickstart: back up three versions of a file and restore them.

Demonstrates the core SLIMSTORE loop — incremental multi-version backup
with online deduplication, then byte-exact restore of any version — plus
the headline statistics each job reports.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SlimStore


def make_data(rng: np.random.Generator, size: int) -> bytes:
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def edit(rng: np.random.Generator, data: bytes, edits: int = 3) -> bytes:
    """A new version: a few localized 8 KB overwrites, like a real file."""
    out = bytearray(data)
    for _ in range(edits):
        start = int(rng.integers(0, len(out) - 8192))
        out[start : start + 8192] = make_data(rng, 8192)
    return bytes(out)


def main() -> None:
    rng = np.random.default_rng(seed=7)
    store = SlimStore()  # simulated OSS + 6 L-nodes + G-node, all defaults

    print("== Backing up three versions of db/accounts.tbl ==")
    versions = [make_data(rng, 2 << 20)]
    for _ in range(2):
        versions.append(edit(rng, versions[-1]))

    for data in versions:
        report = store.backup("db/accounts.tbl", data)
        result = report.result
        print(
            f"  v{report.version}: {result.logical_bytes >> 20} MiB in, "
            f"dedup ratio {result.dedup_ratio:.1%}, "
            f"throughput {result.throughput_mb_s:.0f} MB/s (virtual), "
            f"{result.counters.get('containers_written')} containers written"
        )

    print("\n== Restoring every version ==")
    for version, original in enumerate(versions):
        restored = store.restore("db/accounts.tbl", version)
        status = "OK" if restored.data == original else "MISMATCH"
        print(
            f"  v{version}: {status}, {restored.containers_read} container reads, "
            f"{restored.throughput_mb_s:.0f} MB/s with "
            f"{restored.prefetch_threads} prefetch threads"
        )

    space = store.space_report()
    logical = sum(len(v) for v in versions)
    print(
        f"\n== Space ==\n  logical {logical >> 20} MiB across versions, "
        f"stored {space.container_bytes >> 20} MiB of chunks "
        f"({space.container_bytes / logical:.1%} of logical)"
    )


if __name__ == "__main__":
    main()
