#!/usr/bin/env python3
"""Enterprise backup scenario: R-Data, cluster scaling, restic comparison.

Backs up a many-file enterprise workload (the paper's R-Data shape) through
both SLIMSTORE and the restic model, then projects cluster-scale throughput
for concurrent jobs over multiple L-nodes — the paper's Fig 10 story:
stateless L-nodes scale linearly while restic serialises on its shared
repository index.

Run:  python examples/enterprise_backup.py
"""

from __future__ import annotations

from repro import ObjectStorageService, SlimStore, SlimStoreConfig
from repro.baselines import ResticRepository
from repro.bench.scaling import (
    restic_aggregate_throughput,
    slimstore_backup_scaling,
)
from repro.sim.cost_model import CostModel
from repro.workloads import RDataConfig, RDataGenerator


def main() -> None:
    generator = RDataGenerator(
        RDataConfig(file_count=24, version_count=5, max_file_bytes=1 << 20,
                    size_log_mean=12.2, seed=1953)
    )
    versions = generator.versions()

    slim = SlimStore(
        SlimStoreConfig(
            chunk_avg_size=8192,
            min_superchunk_bytes=32 * 1024,
            max_superchunk_bytes=64 * 1024,
            merge_threshold=3,
        )
    )
    restic = ResticRepository(
        ObjectStorageService(CostModel()), chunk_avg=128 * 1024, pack_bytes=1 << 20
    )

    print(f"Backing up {len(versions[0].files)} files x {len(versions)} versions "
          "through SLIMSTORE and restic...\n")
    slim_jobs, restic_jobs = [], []
    for dataset_version in versions:
        for item in dataset_version.files:
            slim_jobs.append(slim.backup(item.path, item.data).result)
            restic_jobs.append(restic.backup(item.path, item.data))

    slim_job = max(slim_jobs[-len(versions[-1].files):], key=lambda r: r.logical_bytes)
    restic_job = max(restic_jobs[-len(versions[-1].files):], key=lambda r: r.logical_bytes)
    print(f"Typical job ({slim_job.logical_bytes >> 10} KiB file):")
    print(f"  SLIMSTORE: {slim_job.throughput_mb_s:.0f} MB/s")
    print(f"  restic:    {restic_job.throughput_mb_s:.0f} MB/s "
          f"({restic_job.serial_seconds * 1e3:.1f} ms under the repo lock)")

    print("\nProjected aggregate backup throughput (6 L-nodes):")
    print(f"{'jobs':>5}  {'SLIMSTORE MB/s':>14}  {'restic MB/s':>11}")
    model = CostModel()
    for jobs in (1, 4, 13, 24, 48, 72):
        slim_aggregate = slimstore_backup_scaling(
            slim_job.logical_bytes, slim_job.elapsed_seconds,
            slim_job.uploaded_bytes, jobs, lnode_count=6, cost_model=model,
        )
        restic_aggregate = restic_aggregate_throughput(
            restic_job.logical_bytes,
            restic_job.breakdown.elapsed_pipelined(),
            restic_job.serial_seconds,
            jobs,
        )
        print(f"{jobs:>5}  {slim_aggregate:>14.0f}  {restic_aggregate:>11.0f}")

    slim_space = slim.space_report().container_bytes
    restic_space = restic.stored_bytes()
    print(
        f"\nOccupied space: SLIMSTORE {slim_space / (1 << 20):.1f} MB vs "
        f"restic {restic_space / (1 << 20):.1f} MB "
        f"({slim_space / restic_space:.0%} of restic)"
    )

    # Spot-check correctness on the latest state of every file.
    for item in versions[-1].files:
        assert slim.restore(item.path).data == item.data
    print("\nAll latest-version restores verified byte-exact.")


if __name__ == "__main__":
    main()
