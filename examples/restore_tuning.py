#!/usr/bin/env python3
"""Restore tuning: prefetch threads, cache sizes and version age.

Explores the restore-side knobs the paper evaluates in Section VII-C:
LAW-based prefetch parallelism (Table II), the full-vision cache size
(Fig 8(a,b)) and how sparse container compaction keeps new-version
restores fast as the backup history grows (Fig 8(c,d)).

Run:  python examples/restore_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import SlimStore, SlimStoreConfig
from repro.core.restore import RestoreEngine


def build_history(store: SlimStore, rng: np.random.Generator, versions: int) -> bytes:
    data = rng.integers(0, 256, size=2 << 20, dtype=np.uint8).tobytes()
    for _ in range(versions):
        store.backup("vm/disk.img", data)
        out = bytearray(data)
        for _ in range(4):
            start = int(rng.integers(0, len(out) - 16384))
            out[start : start + 16384] = rng.integers(
                0, 256, 16384, dtype=np.uint8
            ).tobytes()
        data = bytes(out)
    return data


def main() -> None:
    rng = np.random.default_rng(11)
    store = SlimStore(SlimStoreConfig())
    build_history(store, rng, versions=10)
    latest = store.versions("vm/disk.img")[-1]

    print("== Prefetch thread scaling (Table II) ==")
    print(f"{'threads':>8}  {'MB/s':>6}")
    for threads in (0, 1, 2, 4, 6, 8):
        result = store.restore(
            "vm/disk.img", latest, prefetch_threads=threads, verify=False
        )
        print(f"{threads:>8}  {result.throughput_mb_s:>6.0f}")

    print("\n== Memory cache size (Fig 8a/b) ==")
    print(f"{'cache':>8}  {'containers read':>15}  {'MB/s':>6}")
    for cache_mb in (1, 2, 4, 8):
        config = store.config.with_overrides(
            restore_cache_bytes=cache_mb << 20,
            restore_disk_cache_bytes=4 * (cache_mb << 20),
            verify_restore=False,
        )
        engine = RestoreEngine(config, store.storage, store.cost_model)
        result = engine.restore("vm/disk.img", latest, prefetch_threads=0)
        print(f"{cache_mb:>7}M  {result.containers_read:>15}  "
              f"{result.throughput_mb_s:>6.0f}")

    print("\n== Restore speed by version age (Fig 8d) ==")
    print(f"{'version':>8}  {'ctr reads':>9}  {'MB/s':>6}  {'redirects':>9}")
    for version in store.versions("vm/disk.img")[:: max(1, latest // 4)]:
        result = store.restore("vm/disk.img", version, verify=False)
        print(
            f"{version:>8}  {result.containers_read:>9}  "
            f"{result.throughput_mb_s:>6.0f}  "
            f"{result.counters.get('global_index_redirects'):>9}"
        )
    print("\nNote: old versions may redirect through the global index for "
          "chunks that reverse dedup or compaction moved — the deliberate "
          "trade that keeps NEW versions fast and OLD versions cheap.")


if __name__ == "__main__":
    main()
