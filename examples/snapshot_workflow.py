#!/usr/bin/env python3
"""Snapshot workflow: full-volume backup runs with FIFO retention.

The paper's users "upload the latest status of files to the cloud on a
regular basis" — a *snapshot* groups one such run across every file, so a
point-in-time state restores as a unit and old runs are collected as
units.  Built on the durable-repository support, so the same flow works
across process restarts (see also ``python -m repro --help`` for the CLI).

Run:  python examples/snapshot_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro import SlimStore

KEEP_SNAPSHOTS = 3


def make_volume(rng: np.random.Generator) -> dict[str, bytes]:
    return {
        "etc/app.conf": rng.integers(0, 256, 32 * 1024, dtype=np.uint8).tobytes(),
        "db/main.tbl": rng.integers(0, 256, 1 << 20, dtype=np.uint8).tobytes(),
        "logs/app.log": rng.integers(0, 256, 128 * 1024, dtype=np.uint8).tobytes(),
    }


def evolve(rng: np.random.Generator, volume: dict[str, bytes]) -> dict[str, bytes]:
    """The next day's state: the log grows, the database mutates."""
    out = dict(volume)
    out["logs/app.log"] = (
        volume["logs/app.log"]
        + rng.integers(0, 256, 32 * 1024, dtype=np.uint8).tobytes()
    )
    db = bytearray(volume["db/main.tbl"])
    start = int(rng.integers(0, len(db) - 16384))
    db[start : start + 16384] = rng.integers(0, 256, 16384, dtype=np.uint8).tobytes()
    out["db/main.tbl"] = bytes(db)
    return out


def main() -> None:
    rng = np.random.default_rng(5)
    store = SlimStore()
    volume = make_volume(rng)
    states: dict[str, dict[str, bytes]] = {}

    print(f"Taking 6 daily snapshots, keeping the last {KEEP_SNAPSHOTS}:\n")
    for day in range(6):
        snapshot_id, reports = store.backup_snapshot(volume)
        states[snapshot_id] = volume
        logical = sum(len(d) for d in volume.values())
        ratio = sum(r.dedup_ratio * r.result.logical_bytes for r in reports) / logical
        print(f"  day {day}: snapshot {snapshot_id}, {logical >> 10} KiB, "
              f"dedup {ratio:.1%}")
        live = store.snapshots.list_ids()
        while len(live) > KEEP_SNAPSHOTS:
            expired = live.pop(0)
            reclaimed = store.delete_snapshot(expired)
            states.pop(expired, None)
            print(f"         collected snapshot {expired} "
                  f"({reclaimed >> 10} KiB reclaimed)")
        volume = evolve(rng, volume)

    print("\nVerifying every retained snapshot restores as a unit:")
    for snapshot_id in store.snapshots.list_ids():
        restored = store.restore_snapshot(snapshot_id)
        assert restored == states[snapshot_id]
        print(f"  snapshot {snapshot_id}: {len(restored)} files OK")

    space = store.space_report()
    print(f"\nRepository: {space.container_bytes >> 10} KiB of chunk data for "
          f"{KEEP_SNAPSHOTS} full-volume snapshots.")


if __name__ == "__main__":
    main()
