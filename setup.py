"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` falls back to the legacy ``setup.py develop`` path
when this file exists, which works offline; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
