"""SLIMSTORE reproduction — a cloud-based deduplication system for
multi-version backups (Zhang et al., ICDE 2021).

Quickstart::

    from repro import SlimStore

    store = SlimStore()
    report = store.backup("db/users.tbl", version0_bytes)
    report = store.backup("db/users.tbl", version1_bytes)
    restored = store.restore("db/users.tbl")          # latest version
    assert restored.data == version1_bytes

See :mod:`repro.core` for the system, :mod:`repro.baselines` for the
comparators (SiLO, Sparse Indexing, HAR, restore caches, restic model),
:mod:`repro.workloads` for the S-DB / R-Data dataset generators, and
:mod:`repro.bench` for the experiment harness regenerating every table and
figure of the paper's evaluation.
"""

from repro.core.blockcache import BlockCache
from repro.core.browse import BrowseSession
from repro.core.config import SlimStoreConfig
from repro.core.durability import ReplicationPolicy
from repro.oss.ossfs import BrowseFileSystem, OssFileSystem
from repro.core.service import ServiceControlPlane, ServicePolicy
from repro.core.system import BackupReport, RestoreReport, SlimStore, SpaceReport
from repro.core.tenancy import BackupService, RetentionPolicy
from repro.oss.faults import FaultPolicy
from repro.oss.object_store import ObjectStorageService
from repro.oss.retry import RetryBudget, RetryPolicy
from repro.sim.cost_model import CostModel

__version__ = "1.0.0"

__all__ = [
    "SlimStore",
    "SlimStoreConfig",
    "BackupReport",
    "RestoreReport",
    "SpaceReport",
    "ObjectStorageService",
    "FaultPolicy",
    "ReplicationPolicy",
    "RetryPolicy",
    "RetryBudget",
    "BackupService",
    "RetentionPolicy",
    "ServiceControlPlane",
    "ServicePolicy",
    "CostModel",
    "BlockCache",
    "BrowseSession",
    "BrowseFileSystem",
    "OssFileSystem",
    "__version__",
]
