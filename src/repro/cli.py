"""Command-line interface: a durable SLIMSTORE repository on local disk.

The repository is a directory holding the simulated OSS buckets as files
(one subdirectory per bucket), so backups survive process restarts —
``SlimStore.recover()`` reattaches every stateful component.

Usage::

    python -m repro backup  REPO FILE [FILE...]   [--prefix P]
                            [--ingest-segments N] [--flush-buffers N]
                            [--workers N] [--fingerprint sha1|blake2b]
    python -m repro restore REPO PATH             [--version N] [--output F]
                            [--workers N]
    python -m repro versions REPO [PATH]
    python -m repro delete  REPO PATH VERSION
    python -m repro space   REPO
    python -m repro index   REPO
    python -m repro scrub   REPO [--repair]
    python -m repro fsck    REPO [--repair]
    python -m repro browse cat   REPO PATH [--version N] [--output F]
    python -m repro browse read  REPO PATH OFFSET LENGTH [--version N]
                            [--output F]
    python -m repro browse write REPO PATH OFFSET FILE [--no-flush]
    python -m repro browse flush REPO [PATH]
    python -m repro browse stat  REPO PATH [--version N]
    python -m repro browse stats REPO [PATH] [--version N]
    python -m repro durability REPO [--enable|--disable|--retier]
                            [--replicas N] [--hot-refs N] [--cold-refs N]
                            [--data-shards K] [--parity-shards M]
                            [--fault-domains D]
    python -m repro trace record OUT --generator NAME [--seed N]
                            [--versions N]
    python -m repro trace replay REPO TRACE [--verify]
    python -m repro tenant list    REPO
    python -m repro tenant backup  REPO TENANT FILE [FILE...] [--prefix P]
    python -m repro tenant restore REPO TENANT PATH [--version N] [--output F]
    python -m repro tenant retention REPO TENANT [--keep-last N]
                            [--keep-days D] [--clear]
    python -m repro tenant apply-retention REPO TENANT
    python -m repro tenant weight  REPO TENANT [VALUE]
    python -m repro tenant remove  REPO TENANT

Example::

    python -m repro backup  /tmp/repo data/accounts.tbl
    python -m repro versions /tmp/repo
    python -m repro restore /tmp/repo data/accounts.tbl --output out.tbl
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.core.config import SlimStoreConfig
from repro.core.system import SlimStore
from repro.errors import ReproError
from repro.oss.backend import FilesystemBackend
from repro.oss.object_store import ObjectStorageService

#: Repository-level settings that must stay fixed for the repo's lifetime
#: (the index shard layout decides which store holds each fingerprint;
#: the durability policy decides the replica/parity keyspace layout).
_SETTINGS_FILE = "repro.json"


def _load_settings(root: Path) -> dict:
    """The repository's pinned settings (empty for a fresh directory)."""
    settings_path = root / _SETTINGS_FILE
    if settings_path.is_file():
        return dict(json.loads(settings_path.read_text()))
    return {}


def _save_settings(root: Path, settings: dict) -> None:
    (root / _SETTINGS_FILE).write_text(json.dumps(settings, indent=2, sort_keys=True))


def _resolve_shard_count(root: Path, requested: int | None) -> int:
    """Pin the repo's shard count, persisting it on first use.

    The shard a fingerprint lives in is a function of the shard count, so
    a repository must be recovered with the count it was created with.
    New repositories record the requested (or default) count in
    ``repro.json``; pre-sharding repositories (data present, no settings
    file) are single-shard by construction.
    """
    settings = _load_settings(root)
    if "index_shard_count" in settings:
        stored = int(settings["index_shard_count"])
        if requested is not None and requested != stored:
            raise ReproError(
                f"repository uses {stored} index shards; "
                f"cannot reopen with --index-shards {requested}"
            )
        return stored
    has_data = any(p.is_dir() for p in root.iterdir())
    if has_data:
        shard_count = 1 if requested is None else requested
        if requested is not None and requested != 1:
            raise ReproError(
                "existing repository predates sharding (single-shard); "
                f"cannot reopen with --index-shards {requested}"
            )
    else:
        shard_count = (
            SlimStoreConfig().index_shard_count if requested is None else requested
        )
    settings["index_shard_count"] = shard_count
    _save_settings(root, settings)
    return shard_count


def _resolve_workers(root: Path, requested: int | None) -> int:
    """Pin the repo's wall-clock worker count, persisting it on first set.

    Unlike the shard count, workers are a *performance* setting — every
    worker count produces byte-identical repositories — so a mismatched
    request simply re-pins the setting instead of refusing to attach.
    """
    settings = _load_settings(root)
    if requested is None:
        return int(settings.get("workers", 0))
    if settings.get("workers") != requested:
        settings["workers"] = requested
        _save_settings(root, settings)
    return requested


def _resolve_fingerprint(root: Path, requested: str | None) -> str:
    """Pin the repo's fingerprint algorithm, persisting it on first use.

    Every stored digest — recipes, container metas, index entries — is a
    function of the algorithm, so a repository must be attached with the
    algorithm it was created under; a mismatch is refused outright.
    Repositories predating the setting (data present, no record) are
    sha1 by construction.
    """
    settings = _load_settings(root)
    if "fingerprint_algo" in settings:
        stored = str(settings["fingerprint_algo"])
        if requested is not None and requested != stored:
            raise ReproError(
                f"repository fingerprints chunks with {stored}; "
                f"cannot attach with --fingerprint {requested}"
            )
        return stored
    has_data = any(p.is_dir() for p in root.iterdir())
    if has_data:
        if requested is not None and requested != "sha1":
            raise ReproError(
                "existing repository predates configurable fingerprints "
                f"(sha1); cannot attach with --fingerprint {requested}"
            )
        algo = "sha1"
    else:
        algo = requested or SlimStoreConfig().fingerprint_algo
    settings["fingerprint_algo"] = algo
    _save_settings(root, settings)
    return algo


def _durability_overrides(policy: dict) -> dict:
    """Config overrides applying a persisted durability policy dict."""
    return {
        "durability_enabled": True,
        "durability_replicas": int(policy["replica_count"]),
        "durability_hot_refs": int(policy["hot_refs"]),
        "durability_cold_refs": int(policy["cold_refs"]),
        "erasure_data_shards": int(policy["data_shards"]),
        "erasure_parity_shards": int(policy["parity_shards"]),
        "fault_domains": int(policy["fault_domains"]),
    }


def open_repository(
    repo_dir: str | Path,
    index_shards: int | None = None,
    run_recovery: bool = True,
    config_overrides: dict | None = None,
    workers: int | None = None,
    fingerprint: str | None = None,
) -> SlimStore:
    """Open (or create) a durable repository under ``repo_dir``.

    ``run_recovery=False`` attaches without resolving interrupted jobs,
    so ``repro fsck`` can report the evidence before anything is fixed.
    ``config_overrides`` applies per-invocation settings (the ingest
    pipeline knobs) on top of the repo's pinned configuration; these are
    run-time tunables, never persisted repository state.  ``workers``
    and ``fingerprint`` are persisted in ``repro.json``: workers as a
    sticky performance preference, the fingerprint algorithm as an
    attach-guarded repository invariant.
    """
    root = Path(repo_dir)
    root.mkdir(parents=True, exist_ok=True)
    shard_count = _resolve_shard_count(root, index_shards)
    fingerprint_algo = _resolve_fingerprint(root, fingerprint)
    worker_count = _resolve_workers(root, workers)
    oss = ObjectStorageService(
        backend_factory=lambda bucket: FilesystemBackend(root / bucket)
    )
    overrides: dict = {}
    durability = _load_settings(root).get("durability")
    if durability is not None:
        # The persisted policy is repository state, like the shard count:
        # the replica/parity keyspace was laid out under it, so every
        # reopen applies it automatically (``repro durability`` changes it).
        overrides.update(_durability_overrides(durability))
    overrides.update(config_overrides or {})
    config = replace(
        SlimStoreConfig(),
        index_shard_count=shard_count,
        fingerprint_algo=fingerprint_algo,
        workers=worker_count,
        **overrides,
    )
    store = SlimStore(config, oss)
    store.recover(run_recovery=run_recovery)
    return store


def open_service(repo_dir: str | Path):
    """Open (or create) a durable multi-tenant service repository.

    A service repository is a directory of per-tenant bucket
    subdirectories (``tenant-<name>``, ``tenant-<name>-index``); each
    tenant is attached lazily, running attach-time recovery.
    """
    from repro.core.tenancy import BackupService

    root = Path(repo_dir)
    root.mkdir(parents=True, exist_ok=True)
    oss = ObjectStorageService(
        backend_factory=lambda bucket: FilesystemBackend(root / bucket)
    )
    return BackupService(oss, SlimStoreConfig())


def _service_tenants(repo_dir: str | Path) -> list[str]:
    """Tenant names found on disk (bucket directories, index ones aside)."""
    root = Path(repo_dir)
    if not root.is_dir():
        return []
    names = []
    for entry in root.iterdir():
        if (
            entry.is_dir()
            and entry.name.startswith("tenant-")
            and not entry.name.endswith("-index")
        ):
            names.append(entry.name[len("tenant-"):])
    return sorted(names)


def _cmd_backup(args: argparse.Namespace) -> int:
    overrides: dict = {}
    if args.ingest_segments is not None or args.flush_buffers is not None:
        # Either knob opts the job into the event-driven ingest pipeline;
        # the other keeps its config default.
        overrides["ingest_pipeline"] = True
        if args.ingest_segments is not None:
            overrides["ingest_segments"] = args.ingest_segments
        if args.flush_buffers is not None:
            overrides["flush_buffers"] = args.flush_buffers
    store = open_repository(
        args.repo,
        index_shards=args.index_shards,
        config_overrides=overrides,
        workers=args.workers,
        fingerprint=args.fingerprint,
    )
    for file_name in args.files:
        source = Path(file_name)
        if not source.is_file():
            print(f"error: not a file: {source}", file=sys.stderr)
            return 2
        logical_path = f"{args.prefix}{source.name}" if args.prefix else str(source)
        report = store.backup(logical_path, source.read_bytes())
        result = report.result
        print(
            f"{logical_path}: v{report.version}, "
            f"{result.logical_bytes} bytes, dedup {result.dedup_ratio:.1%}, "
            f"{result.counters.get('containers_written')} containers"
        )
        stats = report.pipeline
        if stats is not None:
            print(
                f"  pipeline: {result.elapsed_seconds * 1000:.1f} ms virtual "
                f"({result.throughput_mb_s:.1f} MB/s, closed-form "
                f"{result.closed_form_elapsed_seconds * 1000:.1f} ms), "
                f"{stats.chunk_stall_count} chunk stalls, "
                f"{stats.flush_stall_count} flush stalls, "
                f"{result.counters.get('ingest_index_batches')} index batches "
                f"({result.counters.get('ingest_index_keys')} keys), "
                f"{result.intra_file_dup_hits} memo hits"
            )
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    store = open_repository(args.repo, workers=args.workers)
    result = store.restore(
        args.path,
        args.version,
        prefetch_threads=args.prefetch_threads,
        ranged=False if args.whole_containers else None,
    )
    output = Path(args.output) if args.output else Path(Path(args.path).name)
    output.write_bytes(result.data)
    print(
        f"restored {args.path}@v{result.version} -> {output} "
        f"({len(result.data)} bytes, {result.containers_read} container reads)"
    )
    mode = "ranged" if result.ranged else "whole-container"
    print(
        f"  {mode} reads: amplification {result.read_amplification:.2f}x, "
        f"{result.counters.get('ranged_bytes_saved')} bytes saved, "
        f"{result.counters.get('prefetch_stalls')} prefetch stalls"
    )
    print(
        f"  elapsed {result.elapsed_seconds * 1000:.1f} ms virtual "
        f"({result.prefetch_threads} prefetch threads, "
        f"{result.throughput_mb_s:.1f} MB/s)"
    )
    return 0


def _cmd_versions(args: argparse.Namespace) -> int:
    store = open_repository(args.repo)
    paths = [args.path] if args.path else store.catalog.paths()
    for path in paths:
        live = store.versions(path)
        if live:
            print(f"{path}: versions {', '.join(map(str, live))}")
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    store = open_repository(args.repo)
    reclaimed = store.delete_version(args.path, args.version)
    print(f"deleted {args.path}@v{args.version}, reclaimed {reclaimed} bytes")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    store = open_repository(args.repo)
    report = store.scrub(repair=args.repair)
    print(
        f"containers: {report.containers_checked} checked, "
        f"{report.chunks_verified} chunks verified, "
        f"{len(report.corrupt_chunks)} corrupt"
    )
    print(
        f"recipes: {report.recipes_checked} checked, "
        f"{report.records_verified} records verified "
        f"({report.redirected_records} via global-index redirect), "
        f"{len(report.unresolvable_records)} unresolvable"
    )
    if args.repair and report.corrupt_chunks:
        print(
            f"repair: {report.chunks_repaired} chunks healed in "
            f"{report.containers_rewritten} containers, "
            f"{len(report.quarantined_chunks)} quarantined"
        )
    if report.clean or (args.repair and report.fully_repaired
                        and not report.unresolvable_records):
        print("repository is clean")
        return 0
    for cid, fp in report.corrupt_chunks:
        print(f"  CORRUPT chunk {fp.hex()[:12]} in container {cid}", file=sys.stderr)
    for cid, fp in report.quarantined_chunks:
        print(f"  QUARANTINED chunk {fp.hex()[:12]} in container {cid}", file=sys.stderr)
    for path, version, fp in report.unresolvable_records:
        print(f"  DANGLING {path}@v{version} chunk {fp.hex()[:12]}", file=sys.stderr)
    return 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    store = open_repository(args.repo, run_recovery=False)
    from repro.core.recovery import RecoveryManager

    manager = RecoveryManager(store)
    report = manager.inspect()
    for intent in report.open_intents:
        print(f"  OPEN intent #{intent.seq}: {intent.kind} {intent.payload}",
              file=sys.stderr)
    for cid, half in sorted(report.torn_pairs.items()):
        print(f"  TORN container {cid}: only .{half} survives", file=sys.stderr)
    for cid in report.partial_reaps:
        print(f"  PARTIAL REAP container {cid}", file=sys.stderr)
    for cid in report.orphan_candidates:
        print(f"  ORPHAN container {cid}", file=sys.stderr)
    for cid, recorded, target in report.durability_class_mismatches:
        print(
            f"  DURABILITY container {cid}: class {recorded}, policy says {target}",
            file=sys.stderr,
        )
    for cid, key in report.durability_divergent:
        where = f"container {cid}" if cid is not None else "parity"
        print(f"  DIVERGENT copy {key} ({where})", file=sys.stderr)
    for seq in report.stale_cache_intents:
        print(f"  STALE cache_flush intent #{seq}", file=sys.stderr)
    for key in report.cache_debris:
        print(f"  CACHE DEBRIS {key}", file=sys.stderr)
    print(
        f"journal: {len(report.open_intents)} open intents; "
        f"containers: {len(report.torn_pairs)} torn, "
        f"{len(report.orphan_candidates)} orphaned, "
        f"{len(report.partial_reaps)} partial reaps, "
        f"{len(report.tombstoned)} in tombstone grace; "
        f"index: {report.dangling_index_entries} dangling entries; "
        f"browse cache: {len(report.stale_cache_intents)} stale flushes, "
        f"{len(report.cache_debris)} debris objects"
    )
    if store.storage.durability is not None:
        print(
            f"durability: {len(report.durability_untiered)} untiered, "
            f"{len(report.durability_class_mismatches)} class mismatches, "
            f"{len(report.durability_divergent)} divergent copies"
        )
    if report.clean:
        print("repository is consistent")
        return 0
    if not args.repair:
        print("run with --repair to recover", file=sys.stderr)
        return 1
    recovery = manager.run(report.open_intents)
    print(
        f"repair: {len(recovery.rolled_forward)} intents rolled forward, "
        f"{len(recovery.discarded)} discarded, "
        f"{len(recovery.orphans_collected)} orphans collected "
        f"({recovery.orphan_bytes} bytes), "
        f"{len(recovery.torn_collected)} torn pairs collected, "
        f"{len(recovery.reaps_finished)} reaps finished, "
        f"{recovery.index_entries_fixed} index entries fixed, "
        f"{len(recovery.replica_orphans_collected)} replica orphans swept, "
        f"{len(recovery.cache_staging_reaped)} cache staging objects reaped"
    )
    durability = store.storage.durability
    if durability is not None and (
        report.durability_divergent or report.durability_class_mismatches
    ):
        refcounts = store.catalog.refcounts()
        repaired = durability.repair_divergent(durability.audit(refcounts))
        retier = store.gnode.retier(refcounts)
        print(
            f"durability repair: {repaired} divergent copies re-synced, "
            f"{len(retier.transitions)} containers re-tiered"
        )
    if recovery.torn_damaged:
        for cid in recovery.torn_damaged:
            print(f"  DAMAGED container {cid}: referenced but torn",
                  file=sys.stderr)
        return 1
    print("repository recovered")
    return 0


def _cmd_durability(args: argparse.Namespace) -> int:
    root = Path(args.repo)
    if args.enable:
        from repro.core.durability import ReplicationPolicy

        try:
            policy = ReplicationPolicy(
                replica_count=args.replicas,
                hot_refs=args.hot_refs,
                cold_refs=args.cold_refs,
                data_shards=args.data_shards,
                parity_shards=args.parity_shards,
                fault_domains=args.fault_domains,
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        root.mkdir(parents=True, exist_ok=True)
        settings = _load_settings(root)
        settings["durability"] = policy.to_dict()
        _save_settings(root, settings)
        print(
            f"durability tier enabled: {policy.replica_count}-way replication "
            f"at >= {policy.hot_refs} refs, RS({policy.data_shards},"
            f"{policy.parity_shards}) erasure at >= {policy.cold_refs} refs, "
            f"{policy.fault_domains} fault domains"
        )
    elif args.disable:
        settings = _load_settings(root)
        if settings.pop("durability", None) is None:
            print("durability tier already disabled")
            return 0
        # Resolve any open tier intents under the old policy (the settings
        # file still carries it), then drop the whole durability keyspace
        # — the primaries carry the data.
        store = open_repository(args.repo)
        oss = store.storage.oss
        bucket = store.storage.containers._bucket
        removed = 0
        for key in list(oss.peek_keys(bucket, "durability/")):
            if oss.delete_object(bucket, key):
                removed += 1
        _save_settings(root, settings)
        print(f"durability tier disabled, {removed} replica/parity objects removed")
        return 0

    store = open_repository(args.repo)
    durability = store.storage.durability
    if durability is None:
        print("durability tier: disabled (enable with --enable)")
        return 0
    if args.retier or args.enable:
        report = store.gnode.retier(store.catalog.refcounts())
        print(
            f"retier: {report.examined} containers examined, "
            f"{len(report.transitions)} transitions, "
            f"{report.copies_written} copies written, "
            f"{report.stripes_built} stripes built "
            f"({report.parity_written} parity shards), "
            f"{report.stripes_retired} stripes retired"
        )
    policy = durability.policy
    classes = durability.classes()
    histogram: dict[str, int] = {}
    for klass in classes.values():
        histogram[klass] = histogram.get(klass, 0) + 1
    print(
        f"policy: {policy.replica_count}-way replication at >= "
        f"{policy.hot_refs} refs, RS({policy.data_shards},"
        f"{policy.parity_shards}) erasure at >= {policy.cold_refs} refs, "
        f"{policy.fault_domains} fault domains"
    )
    print(
        "classes: "
        + ", ".join(f"{k}={v}" for k, v in sorted(histogram.items()))
        if histogram
        else "classes: none tiered yet"
    )
    print(f"durability bytes: {durability.stored_bytes()}")
    print(
        f"degraded reads served: {durability.replica_failovers} replica "
        f"failovers, {durability.erasure_decodes} erasure decodes, "
        f"{durability.degraded_chunk_reads} chunk heals"
    )
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.workloads import make_generator
    from repro.workloads.trace import write_trace

    try:
        generator = make_generator(
            args.generator, seed=args.seed, version_count=args.versions
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    versions = generator.versions()
    summary = generator.summary()
    meta = {
        "generator": args.generator,
        "seed": args.seed,
        "version_count": len(versions),
        "fresh_random_bytes": generator.fresh_random_bytes,
        "summary": dict(summary.rows()),
    }
    count = write_trace(args.output, versions, name=summary.name, meta=meta)
    total = sum(version.total_bytes for version in versions)
    print(
        f"recorded {summary.name}: {count} versions, "
        f"{total} logical bytes -> {args.output}"
    )
    print(
        f"  cross-version duplication {summary.cross_version_duplication:.2f}, "
        f"intra-version {summary.intra_version_duplication:.1%}, "
        f"innovation {generator.fresh_random_bytes} bytes"
    )
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    import hashlib

    from repro.workloads.trace import read_trace, replay_into

    trace = read_trace(args.trace)
    store = open_repository(args.repo)
    assigned = replay_into(store, trace)
    logical = trace.total_bytes
    print(
        f"replayed {trace.name or args.trace}: {len(trace.versions)} versions, "
        f"{len(assigned)} backups, {logical} logical bytes"
    )
    space = store.space_report()
    stored = space.container_bytes
    ratio = 1.0 - stored / logical if logical else 0.0
    print(f"  stored {stored} container bytes (dedup {ratio:.1%})")
    if args.verify:
        checksums = trace.checksums()
        failures = 0
        for (path, trace_version), store_version in sorted(assigned.items()):
            restored = store.restore(path, store_version)
            digest = hashlib.sha256(restored.data).hexdigest()
            if digest != checksums[(path, trace_version)]:
                failures += 1
                print(
                    f"  MISMATCH {path}@v{store_version} "
                    f"(trace v{trace_version})",
                    file=sys.stderr,
                )
        if failures:
            print(f"verify FAILED: {failures} mismatched restores",
                  file=sys.stderr)
            return 1
        print(f"  verify OK: {len(assigned)} restores match the trace")
    return 0


def _tenant_handler(fn):
    """Tenant-name validation raises ValueError; print it like an error."""

    def run(args: argparse.Namespace) -> int:
        try:
            return fn(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    return run


def _cmd_tenant_list(args: argparse.Namespace) -> int:
    service = open_service(args.repo)
    names = _service_tenants(args.repo)
    if not names:
        print("no tenants")
        return 0
    for name in names:
        service.store_for(name)
        usage = service.usage(name)
        meta = service.meta(name)
        policy = meta.retention
        if policy is None:
            retention = "retention: none"
        else:
            parts = []
            if policy.keep_last_n is not None:
                parts.append(f"last {policy.keep_last_n}")
            if policy.keep_days is not None:
                parts.append(f"{policy.keep_days:g} days")
            retention = f"retention: keep {' + '.join(parts)}"
        print(
            f"{name}: {usage.stored_bytes} stored bytes, "
            f"weight {meta.weight:g}, {retention}"
        )
    return 0


def _cmd_tenant_backup(args: argparse.Namespace) -> int:
    import time

    service = open_service(args.repo)
    for file_name in args.files:
        source = Path(file_name)
        if not source.is_file():
            print(f"error: not a file: {source}", file=sys.stderr)
            return 2
        logical_path = f"{args.prefix}{source.name}" if args.prefix else str(source)
        report = service.backup(
            args.tenant, logical_path, source.read_bytes(), timestamp=time.time()
        )
        result = report.result
        print(
            f"{args.tenant}/{logical_path}: v{report.version}, "
            f"{result.logical_bytes} bytes, dedup {result.dedup_ratio:.1%}"
        )
    return 0


def _cmd_tenant_restore(args: argparse.Namespace) -> int:
    service = open_service(args.repo)
    result = service.restore(args.tenant, args.path, args.version)
    output = Path(args.output) if args.output else Path(Path(args.path).name)
    output.write_bytes(result.data)
    print(
        f"restored {args.tenant}/{args.path}@v{result.version} -> {output} "
        f"({len(result.data)} bytes)"
    )
    return 0


def _cmd_tenant_retention(args: argparse.Namespace) -> int:
    from repro.core.tenancy import RetentionPolicy

    service = open_service(args.repo)
    if args.clear:
        service.set_retention(args.tenant, None)
        print(f"{args.tenant}: retention policy cleared")
        return 0
    if args.keep_last is None and args.keep_days is None:
        policy = service.meta(args.tenant).retention
        print(f"{args.tenant}: {policy if policy is not None else 'no policy'}")
        return 0
    try:
        policy = RetentionPolicy(
            keep_last_n=args.keep_last, keep_days=args.keep_days
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    service.set_retention(args.tenant, policy)
    print(f"{args.tenant}: retention set to {policy}")
    return 0


def _cmd_tenant_apply_retention(args: argparse.Namespace) -> int:
    import time

    service = open_service(args.repo)
    report = service.apply_retention(args.tenant, now=time.time())
    if not report.deleted:
        print(f"{args.tenant}: nothing to collect")
        return 0
    for path, version in report.deleted:
        print(f"  deleted {path}@v{version}")
    print(
        f"{args.tenant}: {len(report.deleted)} versions collected, "
        f"{report.reclaimed_bytes} bytes reclaimed"
    )
    return 0


def _cmd_tenant_weight(args: argparse.Namespace) -> int:
    service = open_service(args.repo)
    if args.value is None:
        print(f"{args.tenant}: weight {service.weight(args.tenant):g}")
        return 0
    try:
        service.set_weight(args.tenant, args.value)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    print(f"{args.tenant}: weight set to {args.value:g}")
    return 0


def _cmd_tenant_remove(args: argparse.Namespace) -> int:
    service = open_service(args.repo)
    if args.tenant not in _service_tenants(args.repo):
        print(f"error: no such tenant: {args.tenant}", file=sys.stderr)
        return 2
    reclaimed = service.remove_tenant(args.tenant)
    root = Path(args.repo)
    for suffix in ("", "-index"):
        bucket_dir = root / f"tenant-{args.tenant}{suffix}"
        if not bucket_dir.is_dir():
            continue
        # Every object is gone; only empty key-path directories remain.
        for sub in sorted(bucket_dir.rglob("*"), reverse=True):
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        if not any(bucket_dir.iterdir()):
            bucket_dir.rmdir()
    print(f"{args.tenant}: removed, {reclaimed} bytes reclaimed")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    store = open_repository(args.repo)
    index = store.storage.global_index
    stats = index.shard_stats()
    print(f"shards: {index.shard_count}")
    for shard, stat in enumerate(stats):
        print(
            f"  shard {shard:3d}: {stat['entries']:>8} entries, "
            f"{stat['sstables']} sstables"
        )
    print(f"total entries: {sum(s['entries'] for s in stats)}")
    return 0


def _cmd_space(args: argparse.Namespace) -> int:
    store = open_repository(args.repo)
    report = store.space_report()
    print(f"containers:    {report.container_bytes:>12} bytes")
    print(f"recipes:       {report.recipe_bytes:>12} bytes")
    print(f"global index:  {report.global_index_bytes:>12} bytes")
    print(f"similar index: {report.similar_index_bytes:>12} bytes")
    print(f"total:         {report.total_bytes:>12} bytes")
    return 0


def _browse_session(args: argparse.Namespace):
    """Open the repository and wrap it in a browse session."""
    from repro.core.browse import BrowseSession

    store = open_repository(args.repo)
    return BrowseSession(store)


def _emit_bytes(data: bytes, output: str | None) -> None:
    """Write payload bytes to a file or to raw stdout."""
    if output:
        Path(output).write_bytes(data)
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()


def _cmd_browse_cat(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    handle = session.open(args.path, args.version)
    data = handle.read(0, handle.size)
    _emit_bytes(data, args.output)
    print(session.stats_line(), file=sys.stderr)
    return 0


def _cmd_browse_read(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    handle = session.open(args.path, args.version)
    if args.offset > handle.size:
        print(
            f"error: offset {args.offset} past EOF of {args.path} "
            f"({handle.size} bytes)",
            file=sys.stderr,
        )
        return 1
    data = handle.read(args.offset, args.length)
    _emit_bytes(data, args.output)
    print(session.stats_line(), file=sys.stderr)
    return 0


def _cmd_browse_write(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    data = Path(args.input).read_bytes()
    handle = session.open(args.path, None)
    written = handle.write(args.offset, data)
    if args.no_flush:
        print(
            f"{args.path}: {written} bytes written back at offset "
            f"{args.offset} (uncommitted; run browse flush)"
        )
    else:
        report = handle.flush()
        print(
            f"{args.path}: {written} bytes written, committed as "
            f"v{report.version} ({report.blocks_written} dirty blocks, "
            f"{report.staged_bytes} staged bytes)"
        )
    print(session.stats_line(), file=sys.stderr)
    return 0


def _cmd_browse_flush(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    reports = session.flush(args.path)
    if not reports:
        print("nothing dirty")
    for report in reports:
        print(
            f"{report.path}: committed v{report.version} "
            f"(base v{report.base_version}, {report.blocks_written} dirty "
            f"blocks, {report.staged_bytes} staged bytes)"
        )
    print(session.stats_line(), file=sys.stderr)
    return 0


def _cmd_browse_stat(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    stat = session.open(args.path, args.version).stat()
    print(f"path:          {stat.path}")
    print(f"version:       {stat.version}")
    print(f"size:          {stat.size} bytes")
    print(f"block size:    {stat.block_bytes} bytes")
    print(f"chunk records: {stat.chunk_records}")
    print(f"dirty blocks:  {stat.dirty_blocks}")
    print(f"dirty:         {'yes' if stat.dirty else 'no'}")
    print(session.stats_line(), file=sys.stderr)
    return 0


def _cmd_browse_stats(args: argparse.Namespace) -> int:
    session = _browse_session(args)
    if args.path:
        handle = session.open(args.path, args.version)
        handle.read(0, handle.size)
    print(session.stats_line())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLIMSTORE: deduplicating multi-version backups",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    backup = commands.add_parser("backup", help="back up files as new versions")
    backup.add_argument("repo", help="repository directory")
    backup.add_argument("files", nargs="+", help="files to back up")
    backup.add_argument("--prefix", default="", help="logical path prefix")
    backup.add_argument("--index-shards", type=int, default=None,
                        help="global-index shard count (fixed at repo creation)")
    backup.add_argument("--ingest-segments", type=int, default=None,
                        help="enable the pipelined ingest path with this many "
                             "extra segments of chunking look-ahead")
    backup.add_argument("--flush-buffers", type=int, default=None,
                        help="extra in-flight container flush buffers "
                             "(1 = double buffering; implies the pipeline)")
    backup.add_argument("--workers", type=int, default=None,
                        help="wall-clock worker count for parallel "
                             "chunk+fingerprint and threaded IO (0 = serial; "
                             "persisted in repro.json)")
    backup.add_argument("--fingerprint", choices=["sha1", "blake2b"],
                        default=None,
                        help="chunk fingerprint algorithm (pinned at repo "
                             "creation; attaching with a mismatch is refused)")
    backup.set_defaults(handler=_cmd_backup)

    restore = commands.add_parser("restore", help="restore a backup version")
    restore.add_argument("repo")
    restore.add_argument("path", help="logical path of the backup")
    restore.add_argument("--version", type=int, default=None,
                         help="version number (default: latest)")
    restore.add_argument("--output", default=None, help="output file")
    restore.add_argument("--prefetch-threads", type=int, default=None,
                         help="parallel OSS prefetch channels (0 disables)")
    restore.add_argument("--whole-containers", action="store_true",
                         help="read whole containers instead of ranged GETs")
    restore.add_argument("--workers", type=int, default=None,
                         help="wall-clock worker count for concurrent ranged "
                              "reads (0 = serial; persisted in repro.json)")
    restore.set_defaults(handler=_cmd_restore)

    versions = commands.add_parser("versions", help="list live versions")
    versions.add_argument("repo")
    versions.add_argument("path", nargs="?", default=None)
    versions.set_defaults(handler=_cmd_versions)

    delete = commands.add_parser("delete", help="collect the oldest version")
    delete.add_argument("repo")
    delete.add_argument("path")
    delete.add_argument("version", type=int)
    delete.set_defaults(handler=_cmd_delete)

    space = commands.add_parser("space", help="show repository space usage")
    space.add_argument("repo")
    space.set_defaults(handler=_cmd_space)

    index = commands.add_parser("index", help="show global-index shard stats")
    index.add_argument("repo")
    index.set_defaults(handler=_cmd_index)

    scrub = commands.add_parser("scrub", help="verify repository integrity")
    scrub.add_argument("repo")
    scrub.add_argument("--repair", action="store_true",
                       help="heal corrupt chunks from healthy copies")
    scrub.set_defaults(handler=_cmd_scrub)

    fsck = commands.add_parser(
        "fsck", help="check crash consistency (journal, orphans, tombstones)"
    )
    fsck.add_argument("repo")
    fsck.add_argument("--repair", action="store_true",
                      help="roll interrupted jobs forward/back and GC debris")
    fsck.set_defaults(handler=_cmd_fsck)

    defaults = SlimStoreConfig()
    durability = commands.add_parser(
        "durability", help="show or manage the replication/erasure tier"
    )
    durability.add_argument("repo")
    durability.add_argument("--enable", action="store_true",
                            help="enable the tier and persist the policy")
    durability.add_argument("--disable", action="store_true",
                            help="disable the tier and drop replica/parity bytes")
    durability.add_argument("--retier", action="store_true",
                            help="re-tier every container to the live refcounts")
    durability.add_argument("--replicas", type=int,
                            default=defaults.durability_replicas,
                            help="copies for hot containers (with --enable)")
    durability.add_argument("--hot-refs", type=int,
                            default=defaults.durability_hot_refs,
                            help="refcount where replication starts")
    durability.add_argument("--cold-refs", type=int,
                            default=defaults.durability_cold_refs,
                            help="refcount where erasure coding starts")
    durability.add_argument("--data-shards", type=int,
                            default=defaults.erasure_data_shards,
                            help="Reed-Solomon data shards per stripe")
    durability.add_argument("--parity-shards", type=int,
                            default=defaults.erasure_parity_shards,
                            help="Reed-Solomon parity shards per stripe")
    durability.add_argument("--fault-domains", type=int,
                            default=defaults.fault_domains,
                            help="simulated fault domains for placement")
    durability.set_defaults(handler=_cmd_durability)

    from repro.workloads import GENERATOR_NAMES

    trace = commands.add_parser(
        "trace", help="record or replay a workload trace (JSONL)"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_commands.add_parser(
        "record", help="generate a workload and write it as a trace file"
    )
    trace_record.add_argument("output", help="trace file to write (JSONL)")
    trace_record.add_argument("--generator", required=True,
                              choices=list(GENERATOR_NAMES),
                              help="workload generator to record")
    trace_record.add_argument("--seed", type=int, default=None,
                              help="generator seed (default: the workload's)")
    trace_record.add_argument("--versions", type=int, default=None,
                              help="backup versions to generate")
    trace_record.set_defaults(handler=_cmd_trace_record)
    trace_replay = trace_commands.add_parser(
        "replay", help="drive a trace file's backups into a repository"
    )
    trace_replay.add_argument("repo", help="repository directory")
    trace_replay.add_argument("trace", help="trace file to replay")
    trace_replay.add_argument("--verify", action="store_true",
                              help="restore every replayed backup and check "
                                   "it against the trace checksums")
    trace_replay.set_defaults(handler=_cmd_trace_replay)

    browse = commands.add_parser(
        "browse", help="random-access reads/writes on backup versions "
                       "through the L-node block cache"
    )
    browse_commands = browse.add_subparsers(dest="browse_command", required=True)
    browse_cat = browse_commands.add_parser(
        "cat", help="read a whole file at some version"
    )
    browse_cat.add_argument("repo", help="repository directory")
    browse_cat.add_argument("path", help="logical path of the backup")
    browse_cat.add_argument("--version", type=int, default=None,
                            help="version number (default: latest)")
    browse_cat.add_argument("--output", default=None,
                            help="output file (default: raw stdout)")
    browse_cat.set_defaults(handler=_cmd_browse_cat)
    browse_read = browse_commands.add_parser(
        "read", help="read a byte range without restoring the whole version"
    )
    browse_read.add_argument("repo")
    browse_read.add_argument("path")
    browse_read.add_argument("offset", type=int, help="start offset in bytes")
    browse_read.add_argument("length", type=int, help="bytes to read")
    browse_read.add_argument("--version", type=int, default=None,
                             help="version number (default: latest)")
    browse_read.add_argument("--output", default=None,
                             help="output file (default: raw stdout)")
    browse_read.set_defaults(handler=_cmd_browse_read)
    browse_write = browse_commands.add_parser(
        "write", help="write a byte range back and commit a new version"
    )
    browse_write.add_argument("repo")
    browse_write.add_argument("path")
    browse_write.add_argument("offset", type=int, help="start offset in bytes")
    browse_write.add_argument("input", help="file holding the bytes to write")
    browse_write.add_argument("--no-flush", action="store_true",
                              help="leave the write dirty in cache "
                                   "(no commit; for scripted sessions)")
    browse_write.set_defaults(handler=_cmd_browse_write)
    browse_flush = browse_commands.add_parser(
        "flush", help="commit dirtied files as new versions"
    )
    browse_flush.add_argument("repo")
    browse_flush.add_argument("path", nargs="?", default=None,
                              help="flush only this path (default: all dirty)")
    browse_flush.set_defaults(handler=_cmd_browse_flush)
    browse_stat = browse_commands.add_parser(
        "stat", help="show size/version/dirtiness of one file"
    )
    browse_stat.add_argument("repo")
    browse_stat.add_argument("path")
    browse_stat.add_argument("--version", type=int, default=None,
                             help="version number (default: latest)")
    browse_stat.set_defaults(handler=_cmd_browse_stat)
    browse_stats = browse_commands.add_parser(
        "stats", help="print the block-cache counters line"
    )
    browse_stats.add_argument("repo")
    browse_stats.add_argument("path", nargs="?", default=None,
                              help="warm the cache with one full read first")
    browse_stats.add_argument("--version", type=int, default=None,
                              help="version number (default: latest)")
    browse_stats.set_defaults(handler=_cmd_browse_stats)

    tenant = commands.add_parser(
        "tenant", help="manage a multi-tenant service repository"
    )
    tenant_commands = tenant.add_subparsers(dest="tenant_command", required=True)
    tenant_list = tenant_commands.add_parser(
        "list", help="list tenants with usage, weight and retention"
    )
    tenant_list.add_argument("repo", help="service repository directory")
    tenant_list.set_defaults(handler=_tenant_handler(_cmd_tenant_list))
    tenant_backup = tenant_commands.add_parser(
        "backup", help="back up files on behalf of a tenant"
    )
    tenant_backup.add_argument("repo")
    tenant_backup.add_argument("tenant", help="tenant name (lowercase)")
    tenant_backup.add_argument("files", nargs="+", help="files to back up")
    tenant_backup.add_argument("--prefix", default="", help="logical path prefix")
    tenant_backup.set_defaults(handler=_tenant_handler(_cmd_tenant_backup))
    tenant_restore = tenant_commands.add_parser(
        "restore", help="restore a tenant's backup version"
    )
    tenant_restore.add_argument("repo")
    tenant_restore.add_argument("tenant")
    tenant_restore.add_argument("path", help="logical path of the backup")
    tenant_restore.add_argument("--version", type=int, default=None,
                                help="version number (default: latest)")
    tenant_restore.add_argument("--output", default=None, help="output file")
    tenant_restore.set_defaults(handler=_tenant_handler(_cmd_tenant_restore))
    tenant_retention = tenant_commands.add_parser(
        "retention", help="show or set a tenant's retention policy"
    )
    tenant_retention.add_argument("repo")
    tenant_retention.add_argument("tenant")
    tenant_retention.add_argument("--keep-last", type=int, default=None,
                                  help="protect the newest N versions per path")
    tenant_retention.add_argument("--keep-days", type=float, default=None,
                                  help="protect versions younger than D days")
    tenant_retention.add_argument("--clear", action="store_true",
                                  help="drop the policy (protect everything)")
    tenant_retention.set_defaults(handler=_tenant_handler(_cmd_tenant_retention))
    tenant_apply = tenant_commands.add_parser(
        "apply-retention", help="collect versions the policy no longer protects"
    )
    tenant_apply.add_argument("repo")
    tenant_apply.add_argument("tenant")
    tenant_apply.set_defaults(handler=_tenant_handler(_cmd_tenant_apply_retention))
    tenant_weight = tenant_commands.add_parser(
        "weight", help="show or set a tenant's fair-share weight"
    )
    tenant_weight.add_argument("repo")
    tenant_weight.add_argument("tenant")
    tenant_weight.add_argument("value", type=float, nargs="?", default=None,
                               help="new weight (positive; omit to show)")
    tenant_weight.set_defaults(handler=_tenant_handler(_cmd_tenant_weight))
    tenant_remove = tenant_commands.add_parser(
        "remove", help="remove a tenant account and reclaim its space"
    )
    tenant_remove.add_argument("repo")
    tenant_remove.add_argument("tenant")
    tenant_remove.set_defaults(handler=_tenant_handler(_cmd_tenant_remove))
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
