"""Published comparators re-implemented from scratch.

The paper evaluates SLIMSTORE against SiLO and Sparse Indexing (online
deduplication, Fig 7), HAR + OPT cache and ALACC (restore, Fig 8), and the
open-source restic system (Fig 10).  Each lives here as a full
implementation over the same OSS substrate and cost model, so every
comparison is apples-to-apples.
"""

from repro.baselines.caches import (
    ALACCRestorer,
    BaselineRestoreResult,
    FAARestorer,
    LRUContainerRestorer,
    OPTCacheRestorer,
)
from repro.baselines.ddfs import DDFSSystem
from repro.baselines.har import HARDriver
from repro.baselines.silo import SiLOSystem
from repro.baselines.sparse_indexing import SparseIndexingSystem
from repro.baselines.restic import ResticRepository

__all__ = [
    "BaselineRestoreResult",
    "LRUContainerRestorer",
    "OPTCacheRestorer",
    "FAARestorer",
    "ALACCRestorer",
    "DDFSSystem",
    "HARDriver",
    "SiLOSystem",
    "SparseIndexingSystem",
    "ResticRepository",
]
