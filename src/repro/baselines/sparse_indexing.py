"""Sparse Indexing (Lillibridge et al., FAST'09).

Chunk-sampled deduplication against *champions*: an in-RAM sparse index
maps sampled fingerprints ("hooks") to the manifests (segment recipes) that
contain them.  For each input segment, the hooks vote; the top-scoring
manifests are fetched from OSS and the segment deduplicates against them.
RAM stays small because only 1-in-R fingerprints are indexed; dedup is
near-exact because incremental backups share manifests with high hook
overlap.

Like SiLO, it lacks SLIMSTORE's history-aware accelerations, which is the
gap Fig 7 quantifies.
"""

from __future__ import annotations

import struct
from collections import Counter as TallyCounter
from dataclasses import dataclass

from repro.baselines.recipes import VersionRecipes
from repro.chunking.base import make_chunker
from repro.core.config import SlimStoreConfig
from repro.core.container import ContainerBuilder, ContainerStore
from repro.fingerprint.hashing import FP_SIZE, fingerprint
from repro.fingerprint.sampling import is_sampled
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown

_MANIFEST_ENTRY = struct.Struct(">20sQI")  # fp, container id, size


@dataclass
class SparseIndexingBackupResult:
    """Throughput and dedup accounting for one Sparse Indexing job."""

    logical_bytes: int
    stored_chunk_bytes: int
    breakdown: TimeBreakdown
    counters: Counters

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def throughput_mb_s(self) -> float:
        """Deduplication throughput in MB/s."""
        elapsed = self.breakdown.elapsed_pipelined()
        if elapsed == 0:
            return 0.0
        return self.logical_bytes / elapsed / (1 << 20)


class SparseIndexingSystem:
    """A Sparse Indexing deployment over the shared OSS substrate."""

    def __init__(
        self,
        oss: ObjectStorageService,
        config: SlimStoreConfig | None = None,
        max_champions: int = 2,
        cost_model: CostModel | None = None,
        bucket: str = "sparseidx",
    ) -> None:
        self.config = config or SlimStoreConfig()
        self.cost_model = cost_model or CostModel()
        self.oss = oss
        self.bucket = bucket
        oss.create_bucket(bucket)
        self.containers = ContainerStore(oss, bucket)
        self.max_champions = max_champions
        #: In-RAM sparse index: hook fingerprint -> manifest ids holding it.
        self._sparse_index: dict[bytes, list[int]] = {}
        self._next_manifest_id = 0
        self.recipes = VersionRecipes(self.containers)

    # --- backup ------------------------------------------------------------
    def backup(self, path: str, data: bytes) -> SparseIndexingBackupResult:
        """Deduplicate one file stream by sampling and champion selection."""
        breakdown = TimeBreakdown()
        counters = Counters()
        boundary_set = self._chunker_boundaries(data, breakdown)
        builder = self.containers.new_builder(self.config.container_bytes)
        stored = 0
        local: dict[bytes, tuple[int, int]] = {}
        recipe: list[tuple[bytes, int, int]] = []
        position = 0

        while position < len(data):
            chunks, position = self._cut_segment(data, boundary_set, position, breakdown)
            hooks = [
                fp for fp, _ in chunks if is_sampled(fp, self.config.effective_sample_ratio())
            ]
            champion_cache = self._load_champions(hooks, breakdown, counters)

            manifest: list[tuple[bytes, int, int]] = []
            for fp, chunk in chunks:
                breakdown.charge("index_query", self.cost_model.cpu_index_query)
                known = local.get(fp) or champion_cache.get(fp)
                if known is not None:
                    counters.add("dup_chunks")
                    manifest.append((fp, known[0], len(chunk)))
                else:
                    if builder.is_full():
                        builder = self._flush_container(builder, breakdown, counters)
                    builder.add_chunk(fp, chunk)
                    stored += len(chunk)
                    breakdown.charge(
                        "other", self.cost_model.cpu_other_per_byte * len(chunk)
                    )
                    counters.add("unique_chunks")
                    local[fp] = (builder.container_id, len(chunk))
                    manifest.append((fp, builder.container_id, len(chunk)))
            self._store_manifest(manifest, hooks, breakdown, counters)
            recipe.extend(manifest)

        if not builder.is_empty():
            self._flush_container(builder, breakdown, counters)
        counters.add("logical_bytes", len(data))
        self.recipes.record(path, recipe)
        return SparseIndexingBackupResult(len(data), stored, breakdown, counters)

    def restore(self, path: str, version: int | None = None) -> bytes:
        """Replay a version's recipe byte-for-byte (default: latest)."""
        return self.recipes.restore(path, version)

    # --- internals -----------------------------------------------------------
    def _chunker_boundaries(self, data: bytes, breakdown: TimeBreakdown):
        self._chunker = make_chunker(self.config.chunker, self.config.chunker_params())
        return self._chunker.boundaries(data)

    def _cut_segment(self, data, boundary_set, position, breakdown):
        chunks: list[tuple[bytes, bytes]] = []
        segment_bytes = 0
        while position < len(data) and segment_bytes < self.config.segment_bytes:
            end = boundary_set.next_cut(position)
            chunk = data[position:end]
            breakdown.charge(
                "chunking", self.cost_model.chunking_cost(self._chunker.name, len(chunk))
            )
            breakdown.charge(
                "fingerprinting", self.cost_model.fingerprint_cost(len(chunk))
            )
            chunks.append((fingerprint(chunk), chunk))
            segment_bytes += len(chunk)
            position = end
        return chunks, position

    def _load_champions(
        self, hooks: list[bytes], breakdown: TimeBreakdown, counters: Counters
    ) -> dict[bytes, tuple[int, int]]:
        """Vote with the hooks, fetch the top manifests, build the cache."""
        votes: TallyCounter[int] = TallyCounter()
        for hook in hooks:
            breakdown.charge("index_query", self.cost_model.cpu_index_query)
            for manifest_id in self._sparse_index.get(hook, []):
                votes[manifest_id] += 1
        champion_cache: dict[bytes, tuple[int, int]] = {}
        for manifest_id, _score in votes.most_common(self.max_champions):
            counters.add("champions_loaded")
            before = self.oss.stats.snapshot()
            try:
                payload = self.oss.get_object(
                    self.bucket, f"manifests/{manifest_id:010d}"
                )
            except KeyError:
                continue
            breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
            for offset in range(0, len(payload), _MANIFEST_ENTRY.size):
                fp, container_id, size = _MANIFEST_ENTRY.unpack_from(payload, offset)
                if len(fp) == FP_SIZE:
                    champion_cache.setdefault(fp, (container_id, size))
        return champion_cache

    def _store_manifest(
        self,
        manifest: list[tuple[bytes, int, int]],
        hooks: list[bytes],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> None:
        if not manifest:
            return
        payload = bytearray()
        for fp, container_id, size in manifest:
            payload += _MANIFEST_ENTRY.pack(fp, container_id, size)
        before = self.oss.stats.snapshot()
        self.oss.put_object(
            self.bucket, f"manifests/{self._next_manifest_id:010d}", bytes(payload)
        )
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        for hook in hooks:
            owners = self._sparse_index.setdefault(hook, [])
            owners.append(self._next_manifest_id)
            # Keep the hook's manifest list bounded (newest win), as the
            # original does to bound RAM.
            if len(owners) > 4:
                del owners[0]
        counters.add("segments")
        self._next_manifest_id += 1

    def _flush_container(
        self, builder: ContainerBuilder, breakdown: TimeBreakdown, counters: Counters
    ) -> ContainerBuilder:
        before = self.oss.stats.snapshot()
        self.containers.write(builder)
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        counters.add("containers_written")
        return self.containers.new_builder(self.config.container_bytes)

    # --- accounting -----------------------------------------------------------
    def stored_bytes(self) -> int:
        """Container payload bytes stored by this instance (free)."""
        return self.containers.stored_bytes()
