"""In-RAM version recipes for the baseline systems.

The baselines keep container payloads on the shared OSS substrate but —
unlike SLIMSTORE, whose recipes are themselves OSS-resident — carry their
file recipes in process RAM.  That is enough to restore every version and
prove byte parity in the differential tests without granting any baseline
a durability feature the original system lacked.
"""

from __future__ import annotations

from repro.core.container import ContainerStore
from repro.errors import RestoreError

#: One recipe record: fingerprint, owning container id, chunk size.
Entry = tuple[bytes, int, int]


class VersionRecipes:
    """Per-path, per-version chunk recipes with chunk-cached replay."""

    def __init__(self, containers: ContainerStore) -> None:
        self._containers = containers
        self._recipes: dict[str, list[list[Entry]]] = {}

    def record(self, path: str, entries: list[Entry]) -> int:
        """Append one version's recipe; returns its version number."""
        versions = self._recipes.setdefault(path, [])
        versions.append(list(entries))
        return len(versions) - 1

    def versions(self, path: str) -> list[int]:
        """Version numbers recorded for ``path`` (0-based, oldest first)."""
        return list(range(len(self._recipes.get(path, []))))

    def restore(self, path: str, version: int | None = None) -> bytes:
        """Reassemble one version byte-for-byte from its containers."""
        versions = self._recipes.get(path)
        if not versions:
            raise RestoreError(f"no backups recorded for {path!r}")
        if version is None:
            version = len(versions) - 1
        if not 0 <= version < len(versions):
            raise RestoreError(f"unknown version {version} for {path!r}")
        cache: dict[tuple[int, bytes], bytes] = {}
        output = bytearray()
        for fp, container_id, _size in versions[version]:
            key = (container_id, fp)
            chunk = cache.get(key)
            if chunk is None:
                chunk = self._containers.read_chunk(container_id, fp)
                if chunk is None:
                    raise RestoreError(
                        f"chunk {fp.hex()[:12]} missing from container {container_id}"
                    )
                cache[key] = chunk
            output += chunk
        return bytes(output)
