"""Baseline restore caches: LRU, OPT (LAW container cache), FAA, ALACC.

These are the restore-side comparators of Fig 8.  All of them walk the same
recipe chunk sequence against the same container store as SLIMSTORE's
full-vision cache, so differences in containers-read and throughput come
from the replacement policies alone:

* **LRU** — container-granular least-recently-used.
* **OPT cache** — container-granular with Belady's policy *limited to a
  look-ahead window* (Fu et al.): evict the container whose next use in the
  LAW is farthest (or absent).
* **FAA** — Lillibridge et al.'s forward assembly area: restore in
  FAA-sized batches, reading each needed container once per batch, copying
  chunks straight into place with no cache at all.
* **ALACC** — Cao et al.: FAA plus a chunk-based cache whose vision is the
  look-ahead window.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.container import ContainerStore
from repro.core.recipe import ChunkRecord
from repro.errors import RestoreError
from repro.sim.cost_model import CostModel
from repro.sim.events import simulate_restore_pipeline
from repro.sim.metrics import Counters, TimeBreakdown


@dataclass
class BaselineRestoreResult:
    """What one baseline restore run produced and observed."""

    data: bytes
    breakdown: TimeBreakdown
    counters: Counters
    prefetch_threads: int
    #: Per-read durations, the read each record waits on (-1: cache hit),
    #: and per-record CPU — the trace replayed by the event pipeline.
    read_seconds: tuple[float, ...] = ()
    record_reads: tuple[int, ...] = ()
    record_cpu: tuple[float, ...] = ()

    @property
    def containers_read(self) -> int:
        """Container reads issued against OSS (repeats included)."""
        return self.counters.get("containers_read")

    @property
    def read_amplification(self) -> float:
        """OSS bytes read per restored byte."""
        if not self.data:
            return 0.0
        return self.counters.get("container_bytes_read") / len(self.data)

    @property
    def containers_per_100mb(self) -> float:
        """Containers read per 100 MB restored (Fig 8's metric)."""
        if not self.data:
            return 0.0
        return self.containers_read * (100 * (1 << 20)) / len(self.data)

    @property
    def elapsed_seconds(self) -> float:
        """Virtual duration under the prefetching model.

        With prefetching on, the recorded read/CPU trace runs through the
        same event-driven pipeline as SLIMSTORE's restore, so Fig 8(d)
        compares systems under identical scheduling physics (startup/tail
        transients included) rather than handing baselines the idealised
        ``max(cpu, download/threads)``.
        """
        cpu = self.breakdown.cpu_seconds()
        download = self.breakdown.download
        if self.prefetch_threads >= 1 and self.read_seconds:
            stats = simulate_restore_pipeline(
                self.read_seconds,
                self.record_reads,
                self.record_cpu,
                self.prefetch_threads,
            )
            return stats.elapsed_seconds
        return cpu + download

    @property
    def throughput_mb_s(self) -> float:
        """Restore throughput in MB/s."""
        elapsed = self.elapsed_seconds
        if elapsed == 0:
            return 0.0
        return len(self.data) / elapsed / (1 << 20)


class _BaselineRestorer:
    """Shared machinery: charged container reads and result assembly."""

    def __init__(
        self,
        containers: ContainerStore,
        cost_model: CostModel | None = None,
        prefetch_threads: int = 0,
    ) -> None:
        self.containers = containers
        self.cost_model = cost_model or CostModel()
        self.prefetch_threads = prefetch_threads
        self.breakdown = TimeBreakdown()
        self.counters = Counters()
        self._read_trace: list[float] = []
        self._record_reads: list[int] = []
        self._record_cpu: list[float] = []
        self._pending_read: int | None = None

    def _read_container(self, container_id: int):
        """One charged whole-container read returning (meta, payload)."""
        oss = self.containers.oss
        before = oss.stats.snapshot()
        payload = self.containers.read_data(container_id)
        meta = self.containers.read_meta(container_id, piggyback=True)
        duration = oss.stats.diff(before).read_seconds
        self.breakdown.charge("download", duration)
        self.counters.add("containers_read")
        self.counters.add("container_bytes_read", len(payload))
        self._read_trace.append(duration)
        self._pending_read = len(self._read_trace) - 1
        return meta, payload

    def _charge_restore(self, nbytes: int) -> None:
        cpu = self.cost_model.cpu_restore_per_byte * nbytes
        self.breakdown.charge("other", cpu)
        # Close the record for the pipeline trace: it waits on the read
        # issued while assembling it, or none (a cache hit).
        read, self._pending_read = self._pending_read, None
        self._record_reads.append(read if read is not None else -1)
        self._record_cpu.append(cpu)

    def _result(self, data: bytes) -> BaselineRestoreResult:
        return BaselineRestoreResult(
            data=data,
            breakdown=self.breakdown,
            counters=self.counters,
            prefetch_threads=self.prefetch_threads,
            read_seconds=tuple(self._read_trace),
            record_reads=tuple(self._record_reads),
            record_cpu=tuple(self._record_cpu),
        )

    @staticmethod
    def _chunk_from(meta, payload: bytes, fp: bytes) -> bytes:
        entry = meta.find(fp)
        if entry is None or entry.deleted:
            raise RestoreError(
                f"chunk {fp.hex()[:12]} not found in container {meta.container_id}"
            )
        return payload[entry.offset : entry.offset + entry.size]


class LRUContainerRestorer(_BaselineRestorer):
    """Container-granular LRU cache."""

    def __init__(
        self,
        containers: ContainerStore,
        cache_containers: int,
        cost_model: CostModel | None = None,
        prefetch_threads: int = 0,
    ) -> None:
        super().__init__(containers, cost_model, prefetch_threads)
        if cache_containers < 1:
            raise ValueError("cache must hold at least one container")
        self.cache_containers = cache_containers

    def restore(self, records: list[ChunkRecord]) -> BaselineRestoreResult:
        """Restore the record sequence through an LRU container cache."""
        cache: OrderedDict[int, tuple] = OrderedDict()
        output = bytearray()
        for record in records:
            cid = record.container_id
            if cid in cache:
                cache.move_to_end(cid)
                self.counters.add("cache_hits")
            else:
                cache[cid] = self._read_container(cid)
                if len(cache) > self.cache_containers:
                    cache.popitem(last=False)
            meta, payload = cache[cid]
            chunk = self._chunk_from(meta, payload, record.fp)
            output += chunk
            self._charge_restore(len(chunk))
        return self._result(bytes(output))


class OPTCacheRestorer(_BaselineRestorer):
    """Belady's policy limited to a look-ahead window, container-granular.

    The OPT cache of HAR (Fu et al.): on eviction, discard the cached
    container whose next reference inside the LAW is farthest away;
    containers not referenced in the LAW at all go first.  Fragments beyond
    the window are invisible — the weakness the FV cache removes.
    """

    def __init__(
        self,
        containers: ContainerStore,
        cache_containers: int,
        law_records: int = 512,
        cost_model: CostModel | None = None,
        prefetch_threads: int = 0,
    ) -> None:
        super().__init__(containers, cost_model, prefetch_threads)
        if cache_containers < 1:
            raise ValueError("cache must hold at least one container")
        self.cache_containers = cache_containers
        self.law_records = law_records

    def restore(self, records: list[ChunkRecord]) -> BaselineRestoreResult:
        """Restore the record sequence through the OPT container cache."""
        cache: dict[int, tuple] = {}
        output = bytearray()
        for index, record in enumerate(records):
            cid = record.container_id
            if cid in cache:
                self.counters.add("cache_hits")
            else:
                payload_pair = self._read_container(cid)
                if len(cache) >= self.cache_containers:
                    self._evict(cache, records, index)
                cache[cid] = payload_pair
            meta, payload = cache[cid]
            chunk = self._chunk_from(meta, payload, record.fp)
            output += chunk
            self._charge_restore(len(chunk))
        return self._result(bytes(output))

    def _evict(self, cache: dict[int, tuple], records: list[ChunkRecord], index: int) -> None:
        window = records[index : index + self.law_records]
        next_use: dict[int, int] = {}
        for distance, record in enumerate(window):
            next_use.setdefault(record.container_id, distance)
        victim = max(
            cache,
            key=lambda cid: next_use.get(cid, self.law_records + 1),
        )
        del cache[victim]
        self.counters.add("evictions")


class FAARestorer(_BaselineRestorer):
    """Forward assembly area: batch restore with no cache."""

    def __init__(
        self,
        containers: ContainerStore,
        faa_bytes: int,
        cost_model: CostModel | None = None,
        prefetch_threads: int = 0,
    ) -> None:
        super().__init__(containers, cost_model, prefetch_threads)
        if faa_bytes <= 0:
            raise ValueError("FAA must have positive capacity")
        self.faa_bytes = faa_bytes

    def _batches(self, records: list[ChunkRecord]):
        batch: list[ChunkRecord] = []
        batch_bytes = 0
        for record in records:
            if batch and batch_bytes + record.size > self.faa_bytes:
                yield batch
                batch, batch_bytes = [], 0
            batch.append(record)
            batch_bytes += record.size
        if batch:
            yield batch

    def restore(self, records: list[ChunkRecord]) -> BaselineRestoreResult:
        """Restore through FAA batches: one read per container per batch."""
        output = bytearray()
        for batch in self._batches(records):
            loaded: dict[int, tuple] = {}
            for record in batch:
                if record.container_id not in loaded:
                    loaded[record.container_id] = self._read_container(record.container_id)
                meta, payload = loaded[record.container_id]
                chunk = self._chunk_from(meta, payload, record.fp)
                output += chunk
                self._charge_restore(len(chunk))
        return self._result(bytes(output))


class ALACCRestorer(_BaselineRestorer):
    """FAA plus a LAW-limited chunk cache (Cao et al., FAST'18).

    Chunks read for one batch that the look-ahead window says will be used
    again are kept in a byte-bounded chunk cache; anything whose next use
    lies beyond the window is invisible and gets evicted — which is exactly
    where the full-vision cache wins (Fig 8).
    """

    def __init__(
        self,
        containers: ContainerStore,
        faa_bytes: int,
        chunk_cache_bytes: int,
        law_records: int = 512,
        cost_model: CostModel | None = None,
        prefetch_threads: int = 0,
    ) -> None:
        super().__init__(containers, cost_model, prefetch_threads)
        if faa_bytes <= 0 or chunk_cache_bytes <= 0:
            raise ValueError("FAA and chunk cache need positive capacity")
        self.faa_bytes = faa_bytes
        self.chunk_cache_bytes = chunk_cache_bytes
        self.law_records = law_records

    def restore(self, records: list[ChunkRecord]) -> BaselineRestoreResult:
        """Restore through FAA batches backed by the LAW chunk cache."""
        chunk_cache: OrderedDict[bytes, bytes] = OrderedDict()
        cache_used = 0
        output = bytearray()
        position = 0
        batch: list[ChunkRecord] = []
        batch_bytes = 0

        def law_fps(start: int) -> set[bytes]:
            return {r.fp for r in records[start : start + self.law_records]}

        for index, record in enumerate(records):
            if batch and batch_bytes + record.size > self.faa_bytes:
                cache_used = self._run_batch(
                    batch, chunk_cache, cache_used, law_fps(index), output
                )
                batch, batch_bytes = [], 0
            batch.append(record)
            batch_bytes += record.size
            position = index
        if batch:
            cache_used = self._run_batch(
                batch, chunk_cache, cache_used, law_fps(position + 1), output
            )
        return self._result(bytes(output))

    def _run_batch(
        self,
        batch: list[ChunkRecord],
        chunk_cache: OrderedDict[bytes, bytes],
        cache_used: int,
        upcoming: set[bytes],
        output: bytearray,
    ) -> int:
        loaded: dict[int, tuple] = {}
        for record in batch:
            chunk = chunk_cache.get(record.fp)
            if chunk is not None:
                chunk_cache.move_to_end(record.fp)
                self.counters.add("chunk_cache_hits")
            else:
                if record.container_id not in loaded:
                    loaded[record.container_id] = self._read_container(record.container_id)
                meta, payload = loaded[record.container_id]
                chunk = self._chunk_from(meta, payload, record.fp)
                if record.fp in upcoming:
                    chunk_cache[record.fp] = chunk
                    cache_used += len(chunk)
                    while cache_used > self.chunk_cache_bytes and chunk_cache:
                        _, evicted = chunk_cache.popitem(last=False)
                        cache_used -= len(evicted)
                        self.counters.add("chunk_evictions")
            output += chunk
            self._charge_restore(len(chunk))
        return cache_used
