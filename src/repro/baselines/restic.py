"""A faithful model of restic's deduplication architecture.

Restic (the paper's open-source comparator, Fig 10) differs from SLIMSTORE
in exactly the ways that drive that experiment:

* content-defined chunks around **1 MiB** (restic's documented default);
* chunks packed into **pack files** in a repository laid over the file
  system — here over OSS through the OSSFS adapter, as the paper does;
* **one repository-wide index**: every backup job must load it, look every
  chunk up in it, and write it back, under an exclusive repository lock.
  Concurrent jobs therefore serialise on the index, which is why restic's
  aggregate throughput flat-lines while SLIMSTORE's stateless L-nodes
  scale linearly;
* restores locate every blob through the same index and read per-blob,
  paying a request round trip per chunk.

The model implements real dedup over real bytes (pack files, index,
restore with verification); the lock behaviour is expressed through the
``serial_seconds`` each job reports, which the scaling harness feeds into
an Amdahl-style aggregate (see :mod:`repro.bench.scaling`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.chunking.base import ChunkerParams, make_chunker
from repro.errors import RestoreError
from repro.fingerprint.hashing import FP_SIZE, fingerprint
from repro.oss.object_store import ObjectStorageService
from repro.oss.ossfs import OssFileSystem
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown

_INDEX_ENTRY = struct.Struct(">20sIII")  # fp, pack id, offset, length
_SNAPSHOT_ENTRY = struct.Struct(">20sI")  # fp, length


@dataclass
class ResticBackupResult:
    """One restic backup job's accounting."""

    snapshot_id: str
    logical_bytes: int
    stored_chunk_bytes: int
    breakdown: TimeBreakdown
    counters: Counters
    #: Seconds spent inside the repository lock (index load/update/save).
    serial_seconds: float

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def throughput_mb_s(self) -> float:
        """Single-job backup throughput in MB/s."""
        elapsed = self.breakdown.elapsed_pipelined()
        if elapsed == 0:
            return 0.0
        return self.logical_bytes / elapsed / (1 << 20)


@dataclass
class ResticRestoreResult:
    """One restic restore job's accounting."""

    data: bytes
    breakdown: TimeBreakdown
    counters: Counters
    serial_seconds: float

    @property
    def throughput_mb_s(self) -> float:
        """Single-job restore throughput in MB/s."""
        elapsed = self.breakdown.cpu_seconds() + self.breakdown.download
        if elapsed == 0:
            return 0.0
        return len(self.data) / elapsed / (1 << 20)


class ResticRepository:
    """A restic-style repository on OSS (via the OSSFS adapter)."""

    #: restic's recommended chunk size (the paper quotes 1 MB).  Scaled
    #: experiments pass a smaller ``chunk_avg`` to preserve the production
    #: chunk-size : file-size ratio at reduced data volumes.
    CHUNK_AVG = 1 << 20
    #: Pack file target size.
    PACK_BYTES = 4 << 20

    def __init__(
        self,
        oss: ObjectStorageService,
        cost_model: CostModel | None = None,
        bucket: str = "restic",
        chunk_avg: int | None = None,
        pack_bytes: int | None = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.fs = OssFileSystem(oss, bucket)
        self.oss = oss
        self.bucket = bucket
        self.chunk_avg = chunk_avg or self.CHUNK_AVG
        self.pack_bytes = pack_bytes or self.PACK_BYTES
        self._chunker = make_chunker(
            "gear",
            ChunkerParams(
                max(64, self.chunk_avg // 4), self.chunk_avg, self.chunk_avg * 4
            ),
        )
        self._next_pack_id = 0
        self._next_snapshot = 0
        self._index_entry_count = 0

    # --- index (the shared, locked resource) ------------------------------
    def _load_index(self, breakdown: TimeBreakdown) -> dict[bytes, tuple[int, int, int]]:
        before = self.oss.stats.snapshot()
        try:
            payload = self.fs.read_file("index/index")
        except FileNotFoundError:
            return {}
        breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
        index: dict[bytes, tuple[int, int, int]] = {}
        for offset in range(0, len(payload), _INDEX_ENTRY.size):
            fp, pack_id, pack_offset, length = _INDEX_ENTRY.unpack_from(payload, offset)
            if len(fp) == FP_SIZE:
                index[fp] = (pack_id, pack_offset, length)
        return index

    def _save_index(
        self, index: dict[bytes, tuple[int, int, int]], breakdown: TimeBreakdown
    ) -> None:
        payload = bytearray()
        for fp, (pack_id, pack_offset, length) in index.items():
            payload += _INDEX_ENTRY.pack(fp, pack_id, pack_offset, length)
        before = self.oss.stats.snapshot()
        self.fs.write_file("index/index", bytes(payload))
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        self._index_entry_count = len(index)

    # --- backup ----------------------------------------------------------------
    def backup(self, path: str, data: bytes) -> ResticBackupResult:
        """One restic backup job: chunk, dedupe against the repository
        index, write packs, update the index under the repository lock."""
        breakdown = TimeBreakdown()
        counters = Counters()
        serial = 0.0

        # --- locked: load the shared index -------------------------------
        lock_start = breakdown.download
        index = self._load_index(breakdown)
        serial += breakdown.download - lock_start

        boundary_set = self._chunker.boundaries(data)
        pack = bytearray()
        pack_id = self._alloc_pack()
        stored = 0
        new_entries: dict[bytes, tuple[int, int, int]] = {}
        snapshot: list[tuple[bytes, int]] = []
        position = 0
        index_cpu = 0.0
        while position < len(data):
            end = boundary_set.next_cut(position)
            chunk = data[position:end]
            breakdown.charge(
                "chunking", self.cost_model.chunking_cost("gear", len(chunk))
            )
            breakdown.charge("fingerprinting", self.cost_model.fingerprint_cost(len(chunk)))
            fp = fingerprint(chunk)
            breakdown.charge("index_query", self.cost_model.cpu_index_query)
            index_cpu += self.cost_model.cpu_index_query
            snapshot.append((fp, len(chunk)))
            if fp in index or fp in new_entries:
                counters.add("dup_chunks")
            else:
                if len(pack) + len(chunk) > self.pack_bytes and pack:
                    self._flush_pack(pack_id, pack, breakdown, counters)
                    pack = bytearray()
                    pack_id = self._alloc_pack()
                new_entries[fp] = (pack_id, len(pack), len(chunk))
                pack += chunk
                stored += len(chunk)
                breakdown.charge("other", self.cost_model.cpu_other_per_byte * len(chunk))
                counters.add("unique_chunks")
            position = end
        if pack:
            self._flush_pack(pack_id, pack, breakdown, counters)

        # --- locked: merge and save the shared index ----------------------
        index.update(new_entries)
        self._save_index(index, breakdown)

        snapshot_id = self._write_snapshot(path, snapshot, breakdown)
        # Everything that touches the shared repository — index load and
        # save, per-chunk index queries, pack and snapshot writes — happens
        # under the repository lock; only chunking and hashing of local
        # data proceeds concurrently across jobs.
        serial = breakdown.download + breakdown.upload + index_cpu
        counters.add("logical_bytes", len(data))
        return ResticBackupResult(
            snapshot_id=snapshot_id,
            logical_bytes=len(data),
            stored_chunk_bytes=stored,
            breakdown=breakdown,
            counters=counters,
            serial_seconds=serial,
        )

    def _alloc_pack(self) -> int:
        pack_id = self._next_pack_id
        self._next_pack_id += 1
        return pack_id

    def _flush_pack(
        self, pack_id: int, pack: bytearray, breakdown: TimeBreakdown, counters: Counters
    ) -> None:
        before = self.oss.stats.snapshot()
        self.fs.write_file(f"data/pack_{pack_id:08d}", bytes(pack))
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        counters.add("packs_written")

    def _write_snapshot(
        self, path: str, snapshot: list[tuple[bytes, int]], breakdown: TimeBreakdown
    ) -> str:
        snapshot_id = f"{self._next_snapshot:08d}"
        self._next_snapshot += 1
        payload = bytearray(path.encode() + b"\x00")
        for fp, length in snapshot:
            payload += _SNAPSHOT_ENTRY.pack(fp, length)
        before = self.oss.stats.snapshot()
        self.fs.write_file(f"snapshots/{snapshot_id}", bytes(payload))
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        return snapshot_id

    # --- restore -------------------------------------------------------------------
    def restore(self, snapshot_id: str) -> ResticRestoreResult:
        """One restic restore job: index-located per-blob reads."""
        breakdown = TimeBreakdown()
        counters = Counters()

        lock_start = breakdown.download
        index = self._load_index(breakdown)
        serial = breakdown.download - lock_start

        before = self.oss.stats.snapshot()
        payload = self.fs.read_file(f"snapshots/{snapshot_id}")
        breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
        separator = payload.index(b"\x00")
        records = payload[separator + 1 :]

        output = bytearray()
        for offset in range(0, len(records), _SNAPSHOT_ENTRY.size):
            fp, length = _SNAPSHOT_ENTRY.unpack_from(records, offset)
            location = index.get(fp)
            if location is None:
                raise RestoreError(f"blob {fp.hex()[:12]} missing from restic index")
            pack_id, pack_offset, pack_length = location
            breakdown.charge("index_query", self.cost_model.cpu_index_query)
            before = self.oss.stats.snapshot()
            chunk = self.fs.read_range(
                f"data/pack_{pack_id:08d}", pack_offset, pack_length
            )
            breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
            counters.add("blob_reads")
            if fingerprint(chunk) != fp:
                raise RestoreError(f"blob {fp.hex()[:12]} failed verification")
            breakdown.charge(
                "other", self.cost_model.cpu_restore_per_byte * len(chunk)
            )
            output += chunk
        return ResticRestoreResult(
            data=bytes(output),
            breakdown=breakdown,
            counters=counters,
            serial_seconds=serial,
        )

    # --- accounting ---------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Pack bytes currently stored (free)."""
        return sum(
            self.oss.peek_size(self.bucket, key) or 0
            for key in self.oss.peek_keys(self.bucket, "data/")
        )
