"""DDFS-style exact deduplication with physical locality (Zhu et al.).

The Data Domain File System is the classic of the third dedup family the
paper's related work surveys: an **exact**, full-index system that fights
the disk-index bottleneck with (1) a summary Bloom filter in RAM and
(2) *locality-preserved caching* — when an on-disk index lookup hits, the
whole container's fingerprints are loaded into the cache, so the physical
locality of neighbouring chunks absorbs subsequent lookups.

Here the full fingerprint index lives on the simulated OSS (one LSM
store), which is exactly the configuration the paper argues against for
the cloud: every cache-missing fingerprint costs a remote round trip.
Useful as the exact-dedup yardstick next to SiLO/Sparse Indexing/SLIMSTORE.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.baselines.recipes import VersionRecipes
from repro.chunking.base import make_chunker
from repro.core.config import SlimStoreConfig
from repro.core.container import ContainerStore
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.lsm import LSMStore
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown

import struct

_VALUE = struct.Struct(">QI")  # container id, chunk size


@dataclass
class DDFSBackupResult:
    """One DDFS backup job's accounting."""

    logical_bytes: int
    stored_chunk_bytes: int
    breakdown: TimeBreakdown
    counters: Counters

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated (exact)."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def throughput_mb_s(self) -> float:
        """Deduplication throughput in MB/s."""
        elapsed = self.breakdown.elapsed_pipelined()
        if elapsed == 0:
            return 0.0
        return self.logical_bytes / elapsed / (1 << 20)


class DDFSSystem:
    """Exact dedup: summary Bloom + locality-preserved fingerprint cache."""

    def __init__(
        self,
        oss: ObjectStorageService,
        config: SlimStoreConfig | None = None,
        cost_model: CostModel | None = None,
        bucket: str = "ddfs",
        cache_containers: int = 64,
        bloom_capacity: int = 1 << 20,
    ) -> None:
        self.config = config or SlimStoreConfig()
        self.cost_model = cost_model or CostModel()
        self.oss = oss
        oss.create_bucket(bucket)
        self.containers = ContainerStore(oss, bucket)
        self._index = LSMStore(oss, bucket, name="ddfs-index")
        self._bloom = BloomFilter(bloom_capacity, 0.01)
        #: Locality-preserved cache: fp -> (container id, size), loaded a
        #: whole container's worth at a time, bounded in containers.
        self._cache: OrderedDict[bytes, tuple[int, int]] = OrderedDict()
        self._cached_containers: OrderedDict[int, list[bytes]] = OrderedDict()
        self.cache_containers = cache_containers
        self._chunker = make_chunker(self.config.chunker, self.config.chunker_params())
        self.recipes = VersionRecipes(self.containers)

    # ------------------------------------------------------------------
    def backup(self, path: str, data: bytes) -> DDFSBackupResult:
        """Deduplicate one file stream exactly, the DDFS way."""
        breakdown = TimeBreakdown()
        counters = Counters()
        boundary_set = self._chunker.boundaries(data)
        builder = self.containers.new_builder(self.config.container_bytes)
        stored = 0
        position = 0
        recipe: list[tuple[bytes, int, int]] = []
        from repro.fingerprint.hashing import fingerprint

        while position < len(data):
            end = boundary_set.next_cut(position)
            chunk = data[position:end]
            breakdown.charge(
                "chunking", self.cost_model.chunking_cost(self._chunker.name, len(chunk))
            )
            breakdown.charge("fingerprinting", self.cost_model.fingerprint_cost(len(chunk)))
            breakdown.charge("other", self.cost_model.cpu_record_handling)
            fp = fingerprint(chunk)
            position = end

            known = self._lookup(fp, breakdown, counters)
            if known is not None:
                counters.add("dup_chunks")
                recipe.append((fp, known[0], len(chunk)))
                continue
            # Unique: store and register.
            if builder.is_full():
                builder = self._flush(builder, breakdown, counters)
            builder.add_chunk(fp, chunk)
            stored += len(chunk)
            breakdown.charge("other", self.cost_model.cpu_other_per_byte * len(chunk))
            counters.add("unique_chunks")
            self._register(fp, builder.container_id, len(chunk))
            recipe.append((fp, builder.container_id, len(chunk)))
        if not builder.is_empty():
            self._flush(builder, breakdown, counters)
        counters.add("logical_bytes", len(data))
        self.recipes.record(path, recipe)
        return DDFSBackupResult(len(data), stored, breakdown, counters)

    def restore(self, path: str, version: int | None = None) -> bytes:
        """Replay a version's recipe byte-for-byte (default: latest)."""
        return self.recipes.restore(path, version)

    # ------------------------------------------------------------------
    def _lookup(self, fp: bytes, breakdown: TimeBreakdown, counters: Counters):
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        cached = self._cache.get(fp)
        if cached is not None:
            counters.add("cache_hits")
            return cached
        if fp not in self._bloom:
            counters.add("bloom_rejections")
            return None
        # On-OSS index lookup (the bottleneck DDFS mitigates, not removes).
        before = self.oss.stats.snapshot()
        value = self._index.get(fp)
        breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
        counters.add("index_reads")
        if value is None:
            return None
        container_id, size = _VALUE.unpack(value)
        # Locality-preserved caching: pull the whole container's
        # fingerprints into the cache.
        self._load_container_fps(container_id, breakdown, counters)
        return self._cache.get(fp, (container_id, size))

    def _load_container_fps(
        self, container_id: int, breakdown: TimeBreakdown, counters: Counters
    ) -> None:
        if container_id in self._cached_containers:
            self._cached_containers.move_to_end(container_id)
            return
        before = self.oss.stats.snapshot()
        meta = self.containers.read_meta(container_id)
        breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
        counters.add("container_meta_loads")
        loaded = []
        for entry in meta.live_entries():
            self._cache[entry.fp] = (container_id, entry.size)
            loaded.append(entry.fp)
        self._cached_containers[container_id] = loaded
        self._enforce_cache_bound()

    def _enforce_cache_bound(self) -> None:
        while len(self._cached_containers) > self.cache_containers:
            _evicted, fps = self._cached_containers.popitem(last=False)
            for evicted_fp in fps:
                self._cache.pop(evicted_fp, None)

    def _register(self, fp: bytes, container_id: int, size: int) -> None:
        self._bloom.add(fp)
        self._index.put(fp, _VALUE.pack(container_id, size))
        self._cache[fp] = (container_id, size)
        self._cached_containers.setdefault(container_id, []).append(fp)
        self._cached_containers.move_to_end(container_id)
        self._enforce_cache_bound()

    def _flush(self, builder, breakdown: TimeBreakdown, counters: Counters):
        before = self.oss.stats.snapshot()
        self.containers.write(builder)
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        counters.add("containers_written")
        return self.containers.new_builder(self.config.container_bytes)

    def stored_bytes(self) -> int:
        """Container payload bytes stored (free)."""
        return self.containers.stored_bytes()
