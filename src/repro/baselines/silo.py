"""SiLO: similarity-locality deduplication (Xia et al., ATC'11).

SiLO groups the backup stream into *segments* (the similarity unit) and
packs consecutive segments into *blocks* (the locality unit).  A small
in-RAM similarity hash table maps each segment's representative
fingerprint to the block holding it; a probe hit loads that whole block of
segment recipes into the dedup cache, so one on-disk (here: on-OSS) access
serves many chunk lookups.

Differences from SLIMSTORE's L-node that Fig 7 measures: no history-aware
skip chunking (every byte is scanned by CDC) and no chunk merging, so the
per-version CPU cost never drops below the chunking + fingerprinting
floor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.baselines.recipes import VersionRecipes
from repro.chunking.base import make_chunker
from repro.core.config import SlimStoreConfig
from repro.core.container import ContainerBuilder, ContainerStore
from repro.fingerprint.hashing import FP_SIZE, fingerprint
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown

_BLOCK_ENTRY = struct.Struct(">20sQI")  # fp, container id, size


@dataclass
class SiLOBackupResult:
    """Throughput and dedup accounting for one SiLO backup job."""

    logical_bytes: int
    stored_chunk_bytes: int
    breakdown: TimeBreakdown
    counters: Counters

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def throughput_mb_s(self) -> float:
        """Deduplication throughput in MB/s."""
        elapsed = self.breakdown.elapsed_pipelined()
        if elapsed == 0:
            return 0.0
        return self.logical_bytes / elapsed / (1 << 20)


class SiLOSystem:
    """A SiLO deployment over the shared OSS substrate."""

    def __init__(
        self,
        oss: ObjectStorageService,
        config: SlimStoreConfig | None = None,
        segments_per_block: int = 8,
        cost_model: CostModel | None = None,
        bucket: str = "silo",
    ) -> None:
        self.config = config or SlimStoreConfig()
        self.cost_model = cost_model or CostModel()
        self.oss = oss
        self.bucket = bucket
        oss.create_bucket(bucket)
        self.containers = ContainerStore(oss, bucket)
        self.segments_per_block = segments_per_block
        self._chunker = make_chunker(self.config.chunker, self.config.chunker_params())
        #: In-RAM similarity hash table: representative fp -> block id.
        self._sh_table: dict[bytes, int] = {}
        self._next_block_id = 0
        self._pending_block: list[list[tuple[bytes, int, int]]] = []
        self.recipes = VersionRecipes(self.containers)

    # --- backup ------------------------------------------------------------
    def backup(self, path: str, data: bytes) -> SiLOBackupResult:
        """Deduplicate one file stream the SiLO way.

        Two-phase per segment: chunk and fingerprint the whole segment,
        probe the similarity hash table with its representative (minimum)
        fingerprints, load the matching block of segment recipes, then
        classify every chunk against the dedup cache.
        """
        breakdown = TimeBreakdown()
        counters = Counters()
        boundary_set = self._chunker.boundaries(data)

        builder = self.containers.new_builder(self.config.container_bytes)
        stored = 0
        dedup_cache: dict[bytes, tuple[int, int]] = {}
        local: dict[bytes, tuple[int, int]] = {}
        recipe: list[tuple[bytes, int, int]] = []
        position = 0

        while position < len(data):
            chunks, position = self._cut_segment(data, boundary_set, position, breakdown)
            fps = [fp for fp, _chunk in chunks]
            for fp in self._representatives(fps):
                self._probe(fp, dedup_cache, breakdown, counters)

            segment: list[tuple[bytes, int, int]] = []
            for fp, chunk in chunks:
                breakdown.charge("index_query", self.cost_model.cpu_index_query)
                known = local.get(fp) or dedup_cache.get(fp)
                if known is not None:
                    counters.add("dup_chunks")
                    segment.append((fp, known[0], len(chunk)))
                else:
                    if builder.is_full():
                        builder = self._flush_container(builder, breakdown, counters)
                    builder.add_chunk(fp, chunk)
                    stored += len(chunk)
                    breakdown.charge(
                        "other", self.cost_model.cpu_other_per_byte * len(chunk)
                    )
                    counters.add("unique_chunks")
                    local[fp] = (builder.container_id, len(chunk))
                    segment.append((fp, builder.container_id, len(chunk)))
            self._store_segment(segment, fps, breakdown, counters)
            recipe.extend(segment)

        self._flush_block(breakdown)
        if not builder.is_empty():
            self._flush_container(builder, breakdown, counters)
        counters.add("logical_bytes", len(data))
        self.recipes.record(path, recipe)
        return SiLOBackupResult(len(data), stored, breakdown, counters)

    def restore(self, path: str, version: int | None = None) -> bytes:
        """Replay a version's recipe byte-for-byte (default: latest)."""
        return self.recipes.restore(path, version)

    def _cut_segment(self, data, boundary_set, position, breakdown):
        """Chunk one segment's worth of input, charging CPU costs."""
        chunks: list[tuple[bytes, bytes]] = []
        segment_bytes = 0
        while position < len(data) and segment_bytes < self.config.segment_bytes:
            end = boundary_set.next_cut(position)
            chunk = data[position:end]
            breakdown.charge(
                "chunking", self.cost_model.chunking_cost(self._chunker.name, len(chunk))
            )
            breakdown.charge(
                "fingerprinting", self.cost_model.fingerprint_cost(len(chunk))
            )
            chunks.append((fingerprint(chunk), chunk))
            segment_bytes += len(chunk)
            position = end
        return chunks, position

    # --- similarity & blocks ------------------------------------------------
    #: Representative fingerprints probed/registered per segment (min-hash).
    REPRESENTATIVES_PER_SEGMENT = 2

    @classmethod
    def _representatives(cls, segment_fps: list[bytes]) -> list[bytes]:
        return sorted(set(segment_fps))[: cls.REPRESENTATIVES_PER_SEGMENT]

    def _probe(
        self,
        representative: bytes,
        dedup_cache: dict[bytes, tuple[int, int]],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> None:
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        block_id = self._sh_table.get(representative)
        if block_id is None:
            return
        if block_id == self._next_block_id:
            # The matching block is still buffered in memory.
            for segment in self._pending_block:
                for fp, container_id, size in segment:
                    dedup_cache.setdefault(fp, (container_id, size))
            return
        counters.add("block_loads")
        before = self.oss.stats.snapshot()
        try:
            payload = self.oss.get_object(self.bucket, f"blocks/{block_id:010d}")
        except KeyError:
            return
        breakdown.charge("download", self.oss.stats.diff(before).read_seconds)
        for offset in range(0, len(payload), _BLOCK_ENTRY.size):
            fp, container_id, size = _BLOCK_ENTRY.unpack_from(payload, offset)
            if len(fp) == FP_SIZE:
                dedup_cache.setdefault(fp, (container_id, size))

    def _store_segment(
        self,
        segment: list[tuple[bytes, int, int]],
        segment_fps: list[bytes],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> None:
        if not segment:
            return
        self._pending_block.append(list(segment))
        for fp in self._representatives(segment_fps):
            self._sh_table[fp] = self._next_block_id
        counters.add("segments")
        if len(self._pending_block) >= self.segments_per_block:
            self._flush_block(breakdown)

    def _flush_block(self, breakdown: TimeBreakdown) -> None:
        if not self._pending_block:
            return
        payload = bytearray()
        for segment in self._pending_block:
            for fp, container_id, size in segment:
                payload += _BLOCK_ENTRY.pack(fp, container_id, size)
        before = self.oss.stats.snapshot()
        self.oss.put_object(self.bucket, f"blocks/{self._next_block_id:010d}", bytes(payload))
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        self._next_block_id += 1
        self._pending_block = []

    def _flush_container(
        self, builder: ContainerBuilder, breakdown: TimeBreakdown, counters: Counters
    ) -> ContainerBuilder:
        before = self.oss.stats.snapshot()
        self.containers.write(builder)
        breakdown.charge("upload", self.oss.stats.diff(before).write_seconds)
        counters.add("containers_written")
        return self.containers.new_builder(self.config.container_bytes)

    # --- accounting -----------------------------------------------------------
    def stored_bytes(self) -> int:
        """Container payload bytes stored by this SiLO instance (free)."""
        return self.containers.stored_bytes()
