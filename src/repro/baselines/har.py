"""HAR: History-Aware Rewriting (Fu et al., ATC'14).

HAR measures each container's utilisation from the whole-backup view and
records containers below the threshold as *sparse*; during the **next**
backup, duplicate chunks that resolve into those sparse containers are
rewritten instead of deduplicated, repairing physical locality one version
late.  That one-version lag — versus SLIMSTORE's SCC, whose compaction
benefits the current version immediately — is what Fig 8(c)/(d) measures.

The driver runs SLIMSTORE's own backup engine with SCC and reverse dedup
disabled, injecting the rewrite set through the engine's
``rewrite_containers`` hook, so chunking and dedup behaviour stay
identical across the compared systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine, BackupResult
from repro.core.restore import RestoreEngine
from repro.core.storage import StorageLayer
from repro.errors import RestoreError
from repro.sim.cost_model import CostModel


@dataclass
class HARState:
    """Per-file rewriting state carried between versions."""

    sparse_containers: set[int] = field(default_factory=set)


class HARDriver:
    """Backs up files with HAR's next-version sparse-container rewriting."""

    def __init__(
        self,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
        utilization_threshold: float | None = None,
    ) -> None:
        # HAR is an alternative to SCC/reverse dedup; force them off so the
        # comparison isolates the rewriting strategies.
        self.config = config.with_overrides(
            sparse_compaction=False, reverse_dedup=False
        )
        self.storage = storage
        self.cost_model = cost_model or CostModel()
        self.utilization_threshold = (
            config.sparse_utilization_threshold
            if utilization_threshold is None
            else utilization_threshold
        )
        self._states: dict[str, HARState] = {}
        self._version_counts: dict[str, int] = {}

    def backup(self, path: str, data: bytes) -> BackupResult:
        """One backup with rewriting driven by the previous version's
        sparse-container set."""
        state = self._states.setdefault(path, HARState())
        engine = BackupEngine(self.config, self.storage, self.cost_model)
        result = engine.backup(path, data, rewrite_containers=state.sparse_containers)
        state.sparse_containers = self._detect_sparse(result)
        self._version_counts[path] = self._version_counts.get(path, 0) + 1
        return result

    def restore(self, path: str, version: int | None = None) -> bytes:
        """Restore one version through the shared storage layer."""
        count = self._version_counts.get(path, 0)
        if count == 0:
            raise RestoreError(f"no backups recorded for {path!r}")
        if version is None:
            version = count - 1
        engine = RestoreEngine(self.config, self.storage, self.cost_model)
        return engine.restore(path, version).data

    def _detect_sparse(self, result: BackupResult) -> set[int]:
        """Utilisation bookkeeping: the paper's HAR mark phase."""
        sparse: set[int] = set()
        new_ids = set(result.new_container_ids)
        for cid, (ref_chunks, _ref_bytes) in result.referenced_containers.items():
            if cid in new_ids or not self.storage.containers.exists(cid):
                continue
            meta = self.storage.containers.read_meta(cid)
            live = meta.live_chunks()
            if live and ref_chunks / live < self.utilization_threshold:
                sparse.add(cid)
        return sparse
