"""The R-Data workload: an enterprise multi-file backup.

Only R-Data's summary statistics are published (Table I: 13 versions,
7440 files, 1.53 TB, average duplication ratio 0.92, 0.1% self-reference),
so this generator produces a file population matched to them at a
configurable scale: many small-to-medium files with lognormal sizes, most
of which survive a version unchanged, a minority partially modified, plus
a trickle of file creations and deletions.

Duplication accounting is split (see :class:`DatasetSummary`): freshly
created files are new content and count against the cross-version ratio
(they used to ride free as "duplicate"), and the intra-version ratio is
the *observed* value — zero, since this generator never copies content
within a version; the configured Table I ``self_reference`` stays a
dataset label, not a measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    BackupFile,
    DatasetSummary,
    DatasetVersion,
    WorkloadGenerator,
)


@dataclass(frozen=True)
class RDataConfig:
    """Scale and shape parameters of one R-Data instance."""

    file_count: int = 96
    version_count: int = 13
    #: Lognormal size distribution parameters (of ln(bytes)).
    size_log_mean: float = 12.0   # median ~160 KB
    size_log_sigma: float = 1.0
    min_file_bytes: int = 8 * 1024
    max_file_bytes: int = 2 * 1024 * 1024
    #: Average inter-version duplication ratio to hit (Table I: 0.92).
    duplication_ratio: float = 0.92
    #: Fraction of files touched per version (changes concentrate in few
    #: files: the rest are byte-identical across versions).
    modified_file_fraction: float = 0.25
    #: Fraction of the population forming the persistently "active" set
    #: that absorbs most modifications (real backups churn the same
    #: working set version after version).
    active_file_fraction: float = 0.30
    #: Probability that a modification lands on an active file.
    active_bias: float = 0.50
    #: Budget of one "touch-up" on a non-active file (a couple of small
    #: edits in an otherwise unchanged file — the case where adaptive
    #: chunk sizes beat uniform large chunks).
    touch_bytes: int = 32 * 1024
    #: Leading fraction of each file that absorbs most in-file changes
    #: (logs and databases mutate hot regions, not uniform offsets).
    hot_region_fraction: float = 0.30
    #: Probability an overwrite run starts inside the hot region.
    hot_bias: float = 0.85
    #: Files created / deleted per version, as a fraction of population.
    churn_file_fraction: float = 0.02
    #: Within-version duplicate content (Table I: ~0.1%).
    self_reference: float = 0.001
    seed: int = 1953

    def __post_init__(self) -> None:
        if self.file_count < 4 or self.version_count < 1:
            raise ValueError("need at least four files and one version")
        if not 0 < self.duplication_ratio < 1:
            raise ValueError("duplication_ratio must be in (0, 1)")
        if not 0 < self.modified_file_fraction <= 1:
            raise ValueError("modified_file_fraction must be in (0, 1]")


class RDataGenerator(WorkloadGenerator):
    """Deterministic generator of R-Data backup versions."""

    name = "R-Data"

    def __init__(self, config: RDataConfig | None = None) -> None:
        self.config = config or RDataConfig()
        super().__init__(self.config.seed)
        self._files: dict[str, bytearray] = {}
        self._next_file_id = 0
        for _ in range(self.config.file_count):
            self._create_file()

    # --- file management -----------------------------------------------------
    def _draw_size(self) -> int:
        config = self.config
        size = int(self._rng.lognormal(config.size_log_mean, config.size_log_sigma))
        return max(config.min_file_bytes, min(config.max_file_bytes, size))

    def _create_file(self) -> int:
        """Create one fresh file; returns its size in bytes."""
        path = f"rdata/dir_{self._next_file_id % 16:02d}/file_{self._next_file_id:05d}.dat"
        self._next_file_id += 1
        data = bytearray(self._fresh(self._draw_size()))
        self._files[path] = data
        return len(data)

    # --- version stream ----------------------------------------------------------
    def current_version(self) -> DatasetVersion:
        """The current state of every file as one backup version."""
        return DatasetVersion(
            version=self._version,
            files=[
                BackupFile(path, bytes(data))
                for path, data in sorted(self._files.items())
            ],
        )

    def next_version(self) -> DatasetVersion:
        """Mutate the population and return the new backup version."""
        config = self.config
        rng = self._rng
        total_before = sum(len(data) for data in self._files.values())

        # The per-version modification budget lands mostly on the active
        # working set, and mostly inside each file's hot region.
        budget = int(total_before * (1 - config.duplication_ratio))
        paths = sorted(self._files)
        active_count = max(1, int(len(paths) * config.active_file_fraction))
        active = paths[:active_count]
        modified_count = max(1, int(len(paths) * config.modified_file_fraction))
        chosen: list[tuple[str, bool]] = []
        for _ in range(modified_count):
            if rng.random() < config.active_bias:
                chosen.append((active[int(rng.integers(0, len(active)))], True))
            else:
                chosen.append((paths[int(rng.integers(0, len(paths)))], False))
        active_picks = max(1, sum(1 for _, is_active in chosen if is_active))
        changed = 0
        for path, is_active in chosen:
            if changed >= budget:
                break
            data = self._files.get(path)
            if data is None:
                continue
            if is_active:
                share = min(budget - changed, max(4096, budget // active_picks))
            else:
                share = min(budget - changed, config.touch_bytes)
            changed += self._overwrite_hot(data, share, clustered=is_active)

        # File churn: a few deletions and creations.  Created files are
        # fresh content — they count against the duplication ratio, not
        # toward it.
        churn = max(0, int(len(paths) * config.churn_file_fraction))
        for _ in range(churn):
            victim = paths[int(rng.integers(0, len(paths)))]
            if victim in self._files and len(self._files) > 4:
                del self._files[victim]
        created = 0
        for _ in range(churn):
            created += self._create_file()

        self._version += 1
        snapshot = self.current_version()
        self._total_bytes += snapshot.total_bytes
        if snapshot.total_bytes:
            fresh = min(snapshot.total_bytes, changed + created)
            self._observed_cross.append(1.0 - fresh / snapshot.total_bytes)
            # This generator never duplicates content within a version.
            self._observed_intra.append(0.0)
        return snapshot

    def _overwrite_hot(
        self, data: bytearray, target_bytes: int, clustered: bool = True
    ) -> int:
        """Overwrite ~``target_bytes`` of ``data``.

        Active files mutate in runs biased into their hot region
        (``clustered``); touch-ups on otherwise-cold files land at uniform
        offsets — small scattered edits, the worst case for uniform large
        chunks.
        """
        config = self.config
        rng = self._rng
        if not data or target_bytes <= 0:
            return 0
        hot_limit = max(1, int(len(data) * config.hot_region_fraction))
        changed = 0
        while changed < target_bytes:
            run = min(16 * 1024, target_bytes - changed, len(data))
            if clustered and rng.random() < config.hot_bias:
                start = int(rng.integers(0, max(1, hot_limit - run)))
            else:
                start = int(rng.integers(0, max(1, len(data) - run)))
            data[start : start + run] = self._fresh(run)
            changed += run
        return changed

    # --- reporting --------------------------------------------------------------------
    def summary(self) -> DatasetSummary:
        """Table I-style characteristics of the data generated so far."""
        average = self._observed_cross_ratio(self.config.duplication_ratio)
        return DatasetSummary(
            name=self.name,
            total_bytes=self._total_bytes,
            version_count=self._version + 1,
            file_count=len(self._files),
            average_duplication_ratio=average,
            self_reference=self.config.self_reference,
            cross_version_duplication=average,
            intra_version_duplication=self._observed_intra_ratio(),
        )
