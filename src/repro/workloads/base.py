"""Shared dataset structures, generator base class and mutation helpers."""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


@dataclass
class BackupFile:
    """One file of one backup version."""

    path: str
    data: bytes

    @property
    def size(self) -> int:
        """File length in bytes."""
        return len(self.data)


@dataclass
class DatasetVersion:
    """One full-volume backup version: every file at a point in time."""

    version: int
    files: list[BackupFile] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Logical size of this version."""
        return sum(item.size for item in self.files)


@dataclass
class DatasetSummary:
    """The Table I characteristics of a generated dataset.

    ``average_duplication_ratio`` is the paper's headline metric and
    deliberately counts only *cross-version* duplication (bytes of a
    version whose content survives from the previous version), while
    ``self_reference`` is the dataset's intra-version duplication target.
    The two observed ratios are carried separately so one number never
    silently absorbs the other: ``cross_version_duplication`` is the
    generator's observed inter-version duplicate fraction (content-wise:
    a page copied from elsewhere in the same file still duplicates
    previous-version content and counts here too), and
    ``intra_version_duplication`` is the observed fraction of bytes that
    duplicate earlier content of the *same* version.
    """

    name: str
    total_bytes: int
    version_count: int
    file_count: int
    average_duplication_ratio: float
    self_reference: float
    #: Observed inter-version duplicate fraction (None when the generator
    #: predates split accounting).
    cross_version_duplication: float | None = None
    #: Observed intra-version duplicate fraction.
    intra_version_duplication: float | None = None

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs formatted like the paper's Table I."""
        rows = [
            ("Dataset name", self.name),
            ("Total size (MB)", f"{self.total_bytes / (1 << 20):.2f}"),
            ("# of versions", str(self.version_count)),
            ("# of files", str(self.file_count)),
            ("Average duplication ratio", f"{self.average_duplication_ratio:.2f}"),
            ("Self-reference", f"{self.self_reference:.1%}"),
        ]
        if self.cross_version_duplication is not None:
            rows.append(
                ("Cross-version duplication", f"{self.cross_version_duplication:.2f}")
            )
        if self.intra_version_duplication is not None:
            rows.append(
                ("Intra-version duplication", f"{self.intra_version_duplication:.1%}")
            )
        return rows


@dataclass(frozen=True)
class DuplicationBreakdown:
    """Content-measured duplication of a version stream, split by kind.

    Computed by :func:`measure_duplication` from the emitted bytes alone
    (fixed-size block hashing), so it audits whatever accounting a
    generator claims: ``cross_version_ratio`` is the fraction of
    version-N bytes (N >= 1) whose block content already existed
    anywhere in version N-1, and ``intra_version_ratio`` is the fraction
    of bytes (all versions) whose block content appeared earlier in the
    *same* version.  A block counts at most once: intra-duplication
    takes precedence, mirroring how a dedup system stores one copy per
    stream position.
    """

    cross_version_bytes: int
    intra_version_bytes: int
    #: Bytes of versions 1.. (the cross-version denominator).
    successor_bytes: int
    #: Bytes of every version (the intra-version denominator).
    total_bytes: int

    @property
    def cross_version_ratio(self) -> float:
        """Inter-version duplicate fraction over versions 1.. ."""
        if self.successor_bytes == 0:
            return 0.0
        return self.cross_version_bytes / self.successor_bytes

    @property
    def intra_version_ratio(self) -> float:
        """Intra-version duplicate fraction over the whole stream."""
        if self.total_bytes == 0:
            return 0.0
        return self.intra_version_bytes / self.total_bytes


def _version_blocks(version: DatasetVersion, block_bytes: int):
    """Yield (digest, size) of each fixed block, files in stream order."""
    for item in version.files:
        data = item.data
        for start in range(0, len(data), block_bytes):
            block = data[start : start + block_bytes]
            yield hashlib.blake2b(block, digest_size=16).digest(), len(block)


def measure_duplication(
    versions: list[DatasetVersion], block_bytes: int = 4096
) -> DuplicationBreakdown:
    """Measure intra- and cross-version duplication from content alone.

    Blocks are cut at fixed ``block_bytes`` boundaries per file, so the
    measurement is exact for generators that mutate block-aligned
    content and a close lower bound otherwise (an unaligned edit breaks
    the blocks it straddles).  This is the auditor the unit tests run
    against hand-computed tiny datasets.
    """
    cross = intra = successor = total = 0
    previous: set[bytes] = set()
    for index, version in enumerate(versions):
        seen: set[bytes] = set()
        for digest, size in _version_blocks(version, block_bytes):
            total += size
            if index > 0:
                successor += size
            if digest in seen:
                intra += size
            elif index > 0 and digest in previous:
                cross += size
            seen.add(digest)
        previous = seen
    return DuplicationBreakdown(
        cross_version_bytes=cross,
        intra_version_bytes=intra,
        successor_bytes=successor,
        total_bytes=total,
    )


def random_block(rng: np.random.Generator, size: int) -> bytes:
    """Uniformly random bytes — incompressible, dedupe-hostile content."""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def overwrite_ranges(
    rng: np.random.Generator,
    data: bytearray,
    target_bytes: int,
    run_bytes: int,
) -> int:
    """Overwrite ~``target_bytes`` in clustered runs; returns bytes changed.

    Database-style mutation: changes arrive as a few contiguous runs
    (updated page ranges), not as uniformly scattered single bytes.
    """
    if not data or target_bytes <= 0:
        return 0
    changed = 0
    while changed < target_bytes:
        run = min(run_bytes, target_bytes - changed, len(data))
        start = int(rng.integers(0, max(1, len(data) - run)))
        data[start : start + run] = random_block(rng, run)
        changed += run
    return changed


class WorkloadGenerator(ABC):
    """Base class of every seeded multi-version workload generator.

    Subclasses mutate their private state in :meth:`next_version` and
    render it in :meth:`current_version`.  The base tracks the version
    counter, the logical byte total, the observed split duplication
    accounting, and — crucially for the analytical dedup oracle — the
    generator's *innovation*: every fresh uniformly random byte drawn
    through :meth:`_fresh` is incompressible new content, so the sum is
    a Niesen-style ceiling on how much unique data the version stream
    can possibly contain.
    """

    name: str = "abstract"

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)
        self._version = 0
        self._total_bytes = 0
        #: Uniformly random bytes drawn so far (the innovation process).
        self.fresh_random_bytes = 0
        #: Per-version observed inter-version duplicate fractions.
        self._observed_cross: list[float] = []
        #: Per-version observed intra-version duplicate fractions.
        self._observed_intra: list[float] = []

    # --- innovation-counted randomness --------------------------------------
    def _fresh(self, size: int) -> bytes:
        """Fresh random content, counted toward the innovation total."""
        self.fresh_random_bytes += size
        return random_block(self._rng, size)

    # --- version stream ------------------------------------------------------
    @abstractmethod
    def current_version(self) -> DatasetVersion:
        """The current state of every file as one backup version."""

    @abstractmethod
    def next_version(self) -> DatasetVersion:
        """Mutate the population and return the new backup version."""

    @property
    def version_count(self) -> int:
        """Configured number of versions (from ``self.config``)."""
        return int(self.config.version_count)  # type: ignore[attr-defined]

    def versions(self) -> list[DatasetVersion]:
        """All configured versions, version 0 first."""
        output = [self.current_version()]
        self._total_bytes = output[0].total_bytes
        for _ in range(self.version_count - 1):
            output.append(self.next_version())
        return output

    # --- reporting ------------------------------------------------------------
    def _observed_cross_ratio(self, default: float) -> float:
        if not self._observed_cross:
            return default
        return float(np.mean(self._observed_cross))

    def _observed_intra_ratio(self, default: float = 0.0) -> float:
        if not self._observed_intra:
            return default
        return float(np.mean(self._observed_intra))

    @abstractmethod
    def summary(self) -> DatasetSummary:
        """Table I-style characteristics of the data generated so far."""
