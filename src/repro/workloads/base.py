"""Shared dataset structures and mutation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BackupFile:
    """One file of one backup version."""

    path: str
    data: bytes

    @property
    def size(self) -> int:
        """File length in bytes."""
        return len(self.data)


@dataclass
class DatasetVersion:
    """One full-volume backup version: every file at a point in time."""

    version: int
    files: list[BackupFile] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Logical size of this version."""
        return sum(item.size for item in self.files)


@dataclass
class DatasetSummary:
    """The Table I characteristics of a generated dataset."""

    name: str
    total_bytes: int
    version_count: int
    file_count: int
    average_duplication_ratio: float
    self_reference: float

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs formatted like the paper's Table I."""
        return [
            ("Dataset name", self.name),
            ("Total size (MB)", f"{self.total_bytes / (1 << 20):.2f}"),
            ("# of versions", str(self.version_count)),
            ("# of files", str(self.file_count)),
            ("Average duplication ratio", f"{self.average_duplication_ratio:.2f}"),
            ("Self-reference", f"{self.self_reference:.1%}"),
        ]


def random_block(rng: np.random.Generator, size: int) -> bytes:
    """Uniformly random bytes — incompressible, dedupe-hostile content."""
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def overwrite_ranges(
    rng: np.random.Generator,
    data: bytearray,
    target_bytes: int,
    run_bytes: int,
) -> int:
    """Overwrite ~``target_bytes`` in clustered runs; returns bytes changed.

    Database-style mutation: changes arrive as a few contiguous runs
    (updated page ranges), not as uniformly scattered single bytes.
    """
    if not data or target_bytes <= 0:
        return 0
    changed = 0
    while changed < target_bytes:
        run = min(run_bytes, target_bytes - changed, len(data))
        start = int(rng.integers(0, max(1, len(data) - run)))
        data[start : start + run] = random_block(rng, run)
        changed += run
    return changed
