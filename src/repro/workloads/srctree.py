"""The Src-Tree workload: source-tree evolution across versions.

Many small files in a directory hierarchy, evolving the way a developed
codebase does:

* **Edits** — a fraction of files get small clustered in-place edits per
  version (most of each edited file survives unchanged);
* **Renames** — files move to new paths with identical content, which
  defeats any dedup keyed on the file name (the similar-file index's
  first lookup) and rewards content-addressed paths;
* **Branch copies** — occasionally a whole directory is copied to a new
  ``branches/...`` prefix, planting massive cross-file duplication in
  one version (intra-version self-reference at file granularity);
* **Create/delete churn** — new files appear, old ones vanish.

File sizes are small (a few KB), so this workload stresses per-file
overheads and many-files metadata paths rather than raw throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    BackupFile,
    DatasetSummary,
    DatasetVersion,
    WorkloadGenerator,
)


@dataclass(frozen=True)
class SrcTreeConfig:
    """Scale and shape parameters of one Src-Tree instance."""

    file_count: int = 96
    #: Files per directory in the initial tree.
    files_per_dir: int = 8
    version_count: int = 8
    #: Lognormal size distribution parameters (of ln(bytes)).
    size_log_mean: float = 8.3   # median ~4 KB
    size_log_sigma: float = 0.8
    min_file_bytes: int = 512
    max_file_bytes: int = 64 * 1024
    #: Fraction of files edited per version.
    edit_fraction: float = 0.20
    #: Bytes of one clustered edit run.
    edit_run_bytes: int = 512
    #: Edit runs per edited file.
    edit_runs: int = 2
    #: Fraction of files renamed (content unchanged) per version.
    rename_fraction: float = 0.05
    #: Probability that a version copies one directory to a new branch.
    branch_copy_probability: float = 0.25
    #: Fraction of files created / deleted per version.
    churn_fraction: float = 0.03
    seed: int = 1973

    def __post_init__(self) -> None:
        if self.file_count < 4 or self.version_count < 1:
            raise ValueError("need at least four files and one version")
        if self.files_per_dir < 1:
            raise ValueError("need at least one file per directory")
        if not 0 < self.min_file_bytes <= self.max_file_bytes:
            raise ValueError("file size bounds must satisfy 0 < min <= max")
        if not 0 <= self.edit_fraction <= 1:
            raise ValueError("edit_fraction must be in [0, 1]")
        if not 0 <= self.rename_fraction <= 1:
            raise ValueError("rename_fraction must be in [0, 1]")
        if not 0 <= self.branch_copy_probability <= 1:
            raise ValueError("branch_copy_probability must be in [0, 1]")


class SrcTreeGenerator(WorkloadGenerator):
    """Deterministic generator of Src-Tree backup versions."""

    name = "Src-Tree"

    def __init__(self, config: SrcTreeConfig | None = None) -> None:
        self.config = config or SrcTreeConfig()
        super().__init__(self.config.seed)
        self._files: dict[str, bytes] = {}
        self._next_file_id = 0
        self._next_branch_id = 0
        for _ in range(self.config.file_count):
            self._create_file()

    # --- file management -----------------------------------------------------
    def _draw_size(self) -> int:
        config = self.config
        size = int(self._rng.lognormal(config.size_log_mean, config.size_log_sigma))
        return max(config.min_file_bytes, min(config.max_file_bytes, size))

    def _create_file(self, prefix: str = "src") -> str:
        config = self.config
        directory = self._next_file_id // config.files_per_dir
        path = (
            f"srctree/{prefix}/dir_{directory:03d}/"
            f"file_{self._next_file_id:05d}.c"
        )
        self._next_file_id += 1
        self._files[path] = self._fresh(self._draw_size())
        return path

    # --- version stream ------------------------------------------------------
    def current_version(self) -> DatasetVersion:
        """The current tree as one backup version."""
        return DatasetVersion(
            version=self._version,
            files=[
                BackupFile(path, data)
                for path, data in sorted(self._files.items())
            ],
        )

    def next_version(self) -> DatasetVersion:
        """Edit, rename, branch-copy and churn the tree."""
        config = self.config
        rng = self._rng
        fresh_bytes = 0
        intra_bytes = 0

        # Edits: clustered runs of fresh bytes inside a few files.
        paths = sorted(self._files)
        edited = (
            max(1, int(len(paths) * config.edit_fraction))
            if config.edit_fraction > 0
            else 0
        )
        for _ in range(edited):
            path = paths[int(rng.integers(0, len(paths)))]
            data = bytearray(self._files[path])
            for _ in range(config.edit_runs):
                run = min(config.edit_run_bytes, len(data))
                if run == 0:
                    continue
                start = int(rng.integers(0, max(1, len(data) - run)))
                data[start : start + run] = self._fresh(run)
                fresh_bytes += run
            self._files[path] = bytes(data)

        # Renames: identical content under a new path.
        paths = sorted(self._files)
        renamed = int(len(paths) * config.rename_fraction)
        for _ in range(renamed):
            victim = paths[int(rng.integers(0, len(paths)))]
            if victim not in self._files:
                continue
            data = self._files.pop(victim)
            directory = self._next_file_id // config.files_per_dir
            target = (
                f"srctree/src/dir_{directory:03d}/"
                f"file_{self._next_file_id:05d}.c"
            )
            self._next_file_id += 1
            self._files[target] = data

        # Branch copy: one directory duplicated wholesale into a branch.
        if rng.random() < config.branch_copy_probability:
            directories = sorted(
                {path.rsplit("/", 1)[0] for path in self._files}
            )
            source = directories[int(rng.integers(0, len(directories)))]
            branch = f"srctree/branches/b{self._next_branch_id:03d}"
            self._next_branch_id += 1
            for path in sorted(self._files):
                if path.rsplit("/", 1)[0] == source:
                    leaf = path.rsplit("/", 1)[1]
                    self._files[f"{branch}/{leaf}"] = self._files[path]
                    intra_bytes += len(self._files[path])

        # Churn: delete a few files, create a few fresh ones.
        churn = int(len(self._files) * config.churn_fraction)
        paths = sorted(self._files)
        for _ in range(churn):
            victim = paths[int(rng.integers(0, len(paths)))]
            if victim in self._files and len(self._files) > 4:
                del self._files[victim]
        for _ in range(churn):
            created = self._create_file()
            fresh_bytes += len(self._files[created])

        self._version += 1
        snapshot = self.current_version()
        self._total_bytes += snapshot.total_bytes
        if snapshot.total_bytes:
            fresh = min(snapshot.total_bytes, fresh_bytes)
            self._observed_cross.append(1.0 - fresh / snapshot.total_bytes)
            self._observed_intra.append(intra_bytes / snapshot.total_bytes)
        return snapshot

    # --- reporting ------------------------------------------------------------
    def summary(self) -> DatasetSummary:
        """Table I-style characteristics of the data generated so far."""
        average = self._observed_cross_ratio(1.0 - self.config.edit_fraction / 4)
        return DatasetSummary(
            name=self.name,
            total_bytes=self._total_bytes,
            version_count=self._version + 1,
            file_count=len(self._files),
            average_duplication_ratio=average,
            self_reference=self._observed_intra_ratio(),
            cross_version_duplication=average,
            intra_version_duplication=self._observed_intra_ratio(),
        )
