"""Replayable workload traces: a versioned JSONL interchange format.

A trace captures a multi-version backup workload — every file of every
version — in a self-describing line-oriented format, so that externally
collected traces (or recorded generator runs) can drive backup and
restore through the CLI (``repro trace record | replay``) without the
producer and the consumer sharing any code.

Schema ``slimstore-trace/1`` (one JSON object per line):

* ``{"record": "header", "schema": "slimstore-trace/1", "name": ...,
  "meta": {...}}`` — first line, exactly once.  ``meta`` is free-form
  provenance (generator name, seed, config) and is preserved verbatim.
* ``{"record": "version", "version": N, "files": M, "total_bytes": B}``
  — opens version ``N``; versions must be contiguous from 0.
* ``{"record": "file", "version": N, "path": P, "data": "<base64>",
  "sha256": "<hex>"}`` — one file of the open version.  ``sha256`` is
  over the raw payload; the reader verifies it, so a corrupted trace
  fails loudly instead of silently replaying garbage.
* ``{"record": "end", "versions": K}`` — last line; ``K`` must match
  the number of version records seen.

Round-trip fidelity is a test invariant: ``read_trace(write_trace(w))``
reproduces the exact version stream, and replaying either side into a
repository yields byte-identical buckets.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import TraceError
from repro.workloads.base import BackupFile, DatasetVersion

#: The schema identifier this module reads and writes.
TRACE_SCHEMA = "slimstore-trace/1"


@dataclass
class WorkloadTrace:
    """A parsed trace: provenance plus the full version stream."""

    name: str
    meta: dict = field(default_factory=dict)
    versions: list[DatasetVersion] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Logical bytes across every version."""
        return sum(version.total_bytes for version in self.versions)

    def checksums(self) -> dict[tuple[str, int], str]:
        """(path, version) → sha256 hex of every file in the trace."""
        return {
            (item.path, version.version): hashlib.sha256(item.data).hexdigest()
            for version in self.versions
            for item in version.files
        }


def write_trace(
    path: str | Path,
    versions: Iterable[DatasetVersion],
    name: str = "",
    meta: dict | None = None,
) -> int:
    """Serialise a version stream to ``path``; returns versions written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as sink:
        header = {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "name": name,
            "meta": meta or {},
        }
        sink.write(json.dumps(header, sort_keys=True) + "\n")
        for version in versions:
            marker = {
                "record": "version",
                "version": version.version,
                "files": len(version.files),
                "total_bytes": version.total_bytes,
            }
            sink.write(json.dumps(marker, sort_keys=True) + "\n")
            for item in version.files:
                record = {
                    "record": "file",
                    "version": version.version,
                    "path": item.path,
                    "data": base64.b64encode(item.data).decode("ascii"),
                    "sha256": hashlib.sha256(item.data).hexdigest(),
                }
                sink.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        sink.write(
            json.dumps({"record": "end", "versions": count}, sort_keys=True) + "\n"
        )
    return count


def read_trace(path: str | Path) -> WorkloadTrace:
    """Parse and verify a trace file.

    Raises :class:`~repro.errors.TraceError` on schema mismatch,
    non-contiguous versions, checksum failures, truncation, or file
    records outside their version marker.
    """
    source = Path(path)
    if not source.is_file():
        raise TraceError(f"trace file not found: {source}")
    trace: WorkloadTrace | None = None
    current: DatasetVersion | None = None
    expected_files = 0
    ended = False
    with source.open("r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            if ended:
                raise TraceError(f"line {line_number}: records after end marker")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {line_number}: not JSON: {exc}") from exc
            kind = record.get("record")
            if trace is None:
                if kind != "header":
                    raise TraceError(f"line {line_number}: expected header record")
                if record.get("schema") != TRACE_SCHEMA:
                    raise TraceError(
                        f"unsupported trace schema {record.get('schema')!r} "
                        f"(this reader speaks {TRACE_SCHEMA!r})"
                    )
                trace = WorkloadTrace(
                    name=str(record.get("name", "")),
                    meta=dict(record.get("meta") or {}),
                )
            elif kind == "version":
                _close_version(trace, current, expected_files)
                number = int(record["version"])
                current = DatasetVersion(version=number)
                expected_files = int(record.get("files", -1))
                if number != len(trace.versions):
                    raise TraceError(
                        f"line {line_number}: version {number} out of order "
                        f"(expected {len(trace.versions)})"
                    )
            elif kind == "file":
                if current is None:
                    raise TraceError(
                        f"line {line_number}: file record outside a version"
                    )
                if int(record["version"]) != current.version:
                    raise TraceError(
                        f"line {line_number}: file tagged v{record['version']} "
                        f"inside version {current.version}"
                    )
                try:
                    data = base64.b64decode(record["data"], validate=True)
                except (ValueError, KeyError) as exc:
                    raise TraceError(
                        f"line {line_number}: bad payload encoding"
                    ) from exc
                digest = hashlib.sha256(data).hexdigest()
                if digest != record.get("sha256"):
                    raise TraceError(
                        f"line {line_number}: checksum mismatch for "
                        f"{record.get('path')!r}"
                    )
                current.files.append(BackupFile(str(record["path"]), data))
            elif kind == "end":
                _close_version(trace, current, expected_files)
                current = None
                if int(record.get("versions", -1)) != len(trace.versions):
                    raise TraceError(
                        f"line {line_number}: end marker counts "
                        f"{record.get('versions')} versions, "
                        f"trace holds {len(trace.versions)}"
                    )
                ended = True
            else:
                raise TraceError(
                    f"line {line_number}: unknown record kind {kind!r}"
                )
    if trace is None:
        raise TraceError(f"empty trace file: {source}")
    if not ended:
        raise TraceError(f"truncated trace (no end marker): {source}")
    return trace


def _close_version(
    trace: WorkloadTrace, current: DatasetVersion | None, expected_files: int
) -> None:
    """Append the open version, checking its declared file count."""
    if current is None:
        return
    if expected_files >= 0 and len(current.files) != expected_files:
        raise TraceError(
            f"version {current.version} declares {expected_files} files, "
            f"holds {len(current.files)}"
        )
    trace.versions.append(current)


def replay_into(store, trace: WorkloadTrace) -> dict[tuple[str, int], int]:
    """Drive a parsed trace through a SlimStore as backups.

    Files are backed up in version order, sorted by path within each
    version — the same order the generator runners use — so a recorded
    run and a replayed run produce byte-identical repositories.  Returns
    (trace path, trace version) → assigned store version, which is what
    a verifying restore sweep needs: a path absent from early versions
    gets store versions offset from its trace versions.
    """
    assigned: dict[tuple[str, int], int] = {}
    for version in trace.versions:
        for item in sorted(version.files, key=lambda f: f.path):
            report = store.backup(item.path, item.data)
            assigned[(item.path, version.version)] = report.version
    return assigned
