"""The Mail-Log workload: append-heavy mailboxes and service logs.

A handful of mailbox/log files that *grow*: every version appends a batch
of fresh records to each file, and only rarely does a compaction pass
rewrite a file in place (dropping a prefix of old records — log rotation,
mailbox expunge).  This is the friendliest possible shape for inline
deduplication with history-aware skip chunking — the shared prefix is the
whole previous version — and therefore the shape where out-of-line
(reverse) deduplication has nothing left to reclaim and runs at pure
cost.  The hybrid inline/out-of-line ablation uses it as the "reverse
dedup loses" pole.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    BackupFile,
    DatasetSummary,
    DatasetVersion,
    WorkloadGenerator,
)


@dataclass(frozen=True)
class MailLogConfig:
    """Scale and shape parameters of one Mail-Log instance."""

    mailbox_count: int = 6
    #: Records in each mailbox at version 0.
    initial_records: int = 48
    #: Bytes per record (one message / log line batch).
    record_bytes: int = 2048
    version_count: int = 8
    #: Mean records appended to each mailbox per version.
    appends_per_version: int = 24
    #: Probability a given mailbox is compacted in a given version.
    compaction_probability: float = 0.08
    #: Fraction of a mailbox's oldest records dropped by a compaction.
    compaction_drop_fraction: float = 0.5
    #: Hard cap on any mailbox's size (0 disables the cap).
    max_mailbox_bytes: int = 0
    seed: int = 1991

    def __post_init__(self) -> None:
        if self.mailbox_count < 1 or self.version_count < 1:
            raise ValueError("need at least one mailbox and one version")
        if self.record_bytes < 1 or self.initial_records < 1:
            raise ValueError("records must be non-empty")
        if self.appends_per_version < 0:
            raise ValueError("appends_per_version cannot be negative")
        if not 0 <= self.compaction_probability <= 1:
            raise ValueError("compaction_probability must be in [0, 1]")
        if not 0 < self.compaction_drop_fraction <= 1:
            raise ValueError("compaction_drop_fraction must be in (0, 1]")
        if self.max_mailbox_bytes < 0:
            raise ValueError("max_mailbox_bytes cannot be negative")


class MailLogGenerator(WorkloadGenerator):
    """Deterministic generator of Mail-Log backup versions."""

    name = "Mail-Log"

    def __init__(self, config: MailLogConfig | None = None) -> None:
        self.config = config or MailLogConfig()
        super().__init__(self.config.seed)
        config = self.config
        self._boxes: list[list[bytes]] = [
            [self._fresh(config.record_bytes) for _ in range(config.initial_records)]
            for _ in range(config.mailbox_count)
        ]
        #: Compactions applied so far (for the summary / tests).
        self.compactions = 0

    # --- version stream ------------------------------------------------------
    def current_version(self) -> DatasetVersion:
        """The current state of every mailbox as one backup version."""
        return DatasetVersion(
            version=self._version,
            files=[
                BackupFile(f"maillog/box_{index:03d}.mbox", b"".join(box))
                for index, box in enumerate(self._boxes)
            ],
        )

    def next_version(self) -> DatasetVersion:
        """Append fresh records (and rarely compact) every mailbox."""
        config = self.config
        rng = self._rng
        fresh_bytes = 0
        for box in self._boxes:
            # Appends: a Poisson-ish batch of brand new records.
            low = max(1, config.appends_per_version // 2)
            high = max(low + 1, config.appends_per_version * 3 // 2 + 1)
            appended = int(rng.integers(low, high))
            for _ in range(appended):
                box.append(self._fresh(config.record_bytes))
            fresh_bytes += appended * config.record_bytes
            # Rare compaction: drop the oldest records, keep the rest
            # verbatim (still duplicate content, just shifted).
            if rng.random() < config.compaction_probability and len(box) > 2:
                drop = max(1, int(len(box) * config.compaction_drop_fraction))
                del box[:drop]
                self.compactions += 1
            if config.max_mailbox_bytes:
                cap_records = max(1, config.max_mailbox_bytes // config.record_bytes)
                if len(box) > cap_records:
                    del box[: len(box) - cap_records]
        self._version += 1
        snapshot = self.current_version()
        self._total_bytes += snapshot.total_bytes
        if snapshot.total_bytes:
            fresh = min(snapshot.total_bytes, fresh_bytes)
            self._observed_cross.append(1.0 - fresh / snapshot.total_bytes)
            # Every record is unique content: no intra-version duplicates.
            self._observed_intra.append(0.0)
        return snapshot

    # --- reporting ------------------------------------------------------------
    def summary(self) -> DatasetSummary:
        """Table I-style characteristics of the data generated so far."""
        config = self.config
        steady = config.initial_records + config.appends_per_version
        default = 1.0 - config.appends_per_version / max(1, steady)
        average = self._observed_cross_ratio(default)
        return DatasetSummary(
            name=self.name,
            total_bytes=self._total_bytes,
            version_count=self._version + 1,
            file_count=config.mailbox_count,
            average_duplication_ratio=average,
            self_reference=0.0,
            cross_version_duplication=average,
            intra_version_duplication=self._observed_intra_ratio(),
        )
