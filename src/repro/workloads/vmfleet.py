"""The VM-Fleet workload: a fleet of virtual-machine disk images.

A few large block-structured images, all cloned from one golden base
image, churned with *block-aligned* writes — the access pattern of a
hypervisor writing guest filesystems.  Three properties distinguish it
from the paper's two datasets:

* **Fleet-wide cross-file duplication.** Every image starts as a clone
  of the golden image, and a configurable fraction of churn writes pull
  blocks from a fleet-shared pool (package updates, common OS state
  landing in many guests).  Per-file similarity dedup sees only one base
  file at a time, so these scattered cross-image duplicates are exactly
  the population out-of-line (reverse) deduplication exists to reclaim.
* **Sparsity.** A fraction of each image is zero blocks (unallocated
  guest space), the degenerate best case for any dedup.
* **Block alignment.** All churn is aligned to ``block_bytes``, so
  fixed-block accounting (:func:`~repro.workloads.base.measure_duplication`)
  is exact for this generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import (
    BackupFile,
    DatasetSummary,
    DatasetVersion,
    WorkloadGenerator,
    measure_duplication,
)


@dataclass(frozen=True)
class VMFleetConfig:
    """Scale and shape parameters of one VM-Fleet instance."""

    image_count: int = 4
    image_bytes: int = 1 * 1024 * 1024
    block_bytes: int = 4096
    version_count: int = 8
    #: Fraction of each image's blocks rewritten per version.
    churn_fraction: float = 0.06
    #: Of the churned blocks, the fraction drawn from the fleet-shared
    #: block pool (cross-image duplicates) rather than drawn fresh.
    pool_fraction: float = 0.5
    #: Distinct blocks in the fleet-shared pool.
    pool_blocks: int = 64
    #: Fraction of each image that is zero blocks at creation
    #: (unallocated guest space).
    zero_fraction: float = 0.25
    #: Per-image fraction of blocks diverged from the golden image at
    #: clone time (guest-specific state).
    divergence_fraction: float = 0.10
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.image_count < 1 or self.version_count < 1:
            raise ValueError("need at least one image and one version")
        if self.image_bytes < 4 * self.block_bytes:
            raise ValueError("images must hold at least four blocks")
        if self.image_bytes % self.block_bytes:
            raise ValueError("image_bytes must be a multiple of block_bytes")
        if not 0 <= self.churn_fraction <= 1:
            raise ValueError("churn_fraction must be in [0, 1]")
        if not 0 <= self.pool_fraction <= 1:
            raise ValueError("pool_fraction must be in [0, 1]")
        if not 0 <= self.zero_fraction < 1:
            raise ValueError("zero_fraction must be in [0, 1)")
        if self.pool_blocks < 1:
            raise ValueError("need at least one pool block")


class VMFleetGenerator(WorkloadGenerator):
    """Deterministic generator of VM-Fleet backup versions."""

    name = "VM-Fleet"

    def __init__(self, config: VMFleetConfig | None = None) -> None:
        self.config = config or VMFleetConfig()
        super().__init__(self.config.seed)
        config = self.config
        self._zero_block = bytes(config.block_bytes)
        block_count = config.image_bytes // config.block_bytes
        # The golden base image: zero runs plus random allocated blocks.
        golden: list[bytes] = []
        for _ in range(block_count):
            if self._rng.random() < config.zero_fraction:
                golden.append(self._zero_block)
            else:
                golden.append(self._fresh(config.block_bytes))
        # The fleet-shared block pool (fresh content shared across images).
        self._pool = [
            self._fresh(config.block_bytes) for _ in range(config.pool_blocks)
        ]
        # Clone each image from the golden base, then diverge a fraction.
        self._images: list[list[bytes]] = []
        for _ in range(config.image_count):
            image = list(golden)
            diverged = (
                max(1, int(block_count * config.divergence_fraction))
                if config.divergence_fraction > 0
                else 0
            )
            for _ in range(diverged):
                where = int(self._rng.integers(0, block_count))
                image[where] = self._fresh(config.block_bytes)
            self._images.append(image)
        # Every mutation here is block-aligned, so the fixed-block content
        # auditor is *exact* for this generator — the observed ratios are
        # measured, not modeled (clones of the golden image are genuine
        # intra-version duplicates and must show up as such).
        self._previous = self.current_version()
        self._observed_intra.append(
            measure_duplication([self._previous], config.block_bytes)
            .intra_version_ratio
        )

    # --- version stream ------------------------------------------------------
    def current_version(self) -> DatasetVersion:
        """The current state of every image as one backup version."""
        return DatasetVersion(
            version=self._version,
            files=[
                BackupFile(f"vmfleet/image_{index:03d}.img", b"".join(image))
                for index, image in enumerate(self._images)
            ],
        )

    def next_version(self) -> DatasetVersion:
        """Churn every image block-aligned and return the new version."""
        config = self.config
        rng = self._rng
        for image in self._images:
            block_count = len(image)
            churned = (
                max(1, int(block_count * config.churn_fraction))
                if config.churn_fraction > 0
                else 0
            )
            for _ in range(churned):
                where = int(rng.integers(0, block_count))
                if rng.random() < config.pool_fraction:
                    # A pool block: duplicate content fleet-wide, invisible
                    # to per-file similarity dedup when the block's other
                    # copies live in a different image.
                    pick = int(rng.integers(0, len(self._pool)))
                    image[where] = self._pool[pick]
                else:
                    image[where] = self._fresh(config.block_bytes)
        self._version += 1
        snapshot = self.current_version()
        self._total_bytes += snapshot.total_bytes
        measured = measure_duplication(
            [self._previous, snapshot], config.block_bytes
        )
        self._observed_cross.append(measured.cross_version_ratio)
        self._observed_intra.append(
            measure_duplication([snapshot], config.block_bytes)
            .intra_version_ratio
        )
        self._previous = snapshot
        return snapshot

    # --- reporting ------------------------------------------------------------
    def summary(self) -> DatasetSummary:
        """Table I-style characteristics of the data generated so far."""
        config = self.config
        default = 1.0 - config.churn_fraction * (1.0 - config.pool_fraction)
        average = self._observed_cross_ratio(default)
        return DatasetSummary(
            name=self.name,
            total_bytes=self._total_bytes,
            version_count=self._version + 1,
            file_count=config.image_count,
            average_duplication_ratio=average,
            self_reference=self._observed_intra_ratio(),
            cross_version_duplication=average,
            intra_version_duplication=self._observed_intra_ratio(),
        )
