"""Synthetic backup workloads and the replayable trace format.

The two paper datasets (Table I):

* **S-DB** — "a set of database files, and each table is simulated by the
  insert, update, and delete operations.  By adjusting parameters, we can
  control the percentage of the modified data, thereby varying the
  duplication ratio of each table file between versions from 0.65 to 0.95."
* **R-Data** — "a real backup dataset of an enterprise", of which only the
  summary statistics are published (13 versions, 7440 files, dup ratio
  0.92, 0.1% self-reference); we generate a workload matched to them.

Three diversity workloads beyond the paper (see ``docs/WORKLOADS.md``):

* **VM-Fleet** — few large sparse images, block-aligned churn, and
  fleet-wide cross-file duplication (the out-of-line dedup showcase);
* **Src-Tree** — many small files with edits, renames and branch copies;
* **Mail-Log** — append-heavy mailboxes/logs with rare compactions (the
  inline-dedup showcase).

All generators are fully seeded and scale-parameterised: experiments run
at laptop scale (MBs) while preserving the ratios the paper reports.
:mod:`repro.workloads.trace` records any version stream to a replayable
JSONL trace and back (``repro trace record | replay``).
"""

from repro.workloads.base import (
    BackupFile,
    DatasetSummary,
    DatasetVersion,
    DuplicationBreakdown,
    WorkloadGenerator,
    measure_duplication,
)
from repro.workloads.maillog import MailLogConfig, MailLogGenerator
from repro.workloads.rdata import RDataConfig, RDataGenerator
from repro.workloads.sdb import SDBConfig, SDBGenerator
from repro.workloads.srctree import SrcTreeConfig, SrcTreeGenerator
from repro.workloads.trace import (
    TRACE_SCHEMA,
    WorkloadTrace,
    read_trace,
    replay_into,
    write_trace,
)
from repro.workloads.vmfleet import VMFleetConfig, VMFleetGenerator

#: Canonical CLI/test names of every generator.
GENERATOR_NAMES = ("sdb", "rdata", "vmfleet", "srctree", "maillog")


def make_generator(
    name: str, seed: int | None = None, version_count: int | None = None, **overrides
) -> WorkloadGenerator:
    """Build a generator by its canonical name at small (CLI/test) scale.

    The per-generator base shapes are deliberately tiny — a few MB of
    logical data — so traces recorded from the CLI and the conformance
    matrix in CI stay fast; pass ``**overrides`` (config field names) to
    rescale.
    """
    bases: dict[str, tuple[type, type, dict]] = {
        "sdb": (
            SDBConfig,
            SDBGenerator,
            dict(table_count=2, initial_table_bytes=256 * 1024, version_count=6),
        ),
        "rdata": (
            RDataConfig,
            RDataGenerator,
            dict(file_count=16, version_count=6, max_file_bytes=128 * 1024),
        ),
        "vmfleet": (
            VMFleetConfig,
            VMFleetGenerator,
            dict(image_count=3, image_bytes=256 * 1024, version_count=6),
        ),
        "srctree": (
            SrcTreeConfig,
            SrcTreeGenerator,
            dict(file_count=48, version_count=6),
        ),
        "maillog": (
            MailLogConfig,
            MailLogGenerator,
            dict(mailbox_count=3, initial_records=24, version_count=6),
        ),
    }
    if name not in bases:
        raise ValueError(
            f"unknown generator {name!r} (choose from {sorted(bases)})"
        )
    config_cls, generator_cls, shape = bases[name]
    if seed is not None:
        shape["seed"] = seed
    if version_count is not None:
        shape["version_count"] = version_count
    shape.update(overrides)
    return generator_cls(config_cls(**shape))


__all__ = [
    "BackupFile",
    "DatasetVersion",
    "DatasetSummary",
    "DuplicationBreakdown",
    "WorkloadGenerator",
    "measure_duplication",
    "SDBConfig",
    "SDBGenerator",
    "RDataConfig",
    "RDataGenerator",
    "VMFleetConfig",
    "VMFleetGenerator",
    "SrcTreeConfig",
    "SrcTreeGenerator",
    "MailLogConfig",
    "MailLogGenerator",
    "GENERATOR_NAMES",
    "make_generator",
    "TRACE_SCHEMA",
    "WorkloadTrace",
    "read_trace",
    "write_trace",
    "replay_into",
]
