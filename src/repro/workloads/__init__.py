"""Synthetic backup workloads matched to the paper's datasets (Table I).

* **S-DB** — "a set of database files, and each table is simulated by the
  insert, update, and delete operations.  By adjusting parameters, we can
  control the percentage of the modified data, thereby varying the
  duplication ratio of each table file between versions from 0.65 to 0.95."
* **R-Data** — "a real backup dataset of an enterprise", of which only the
  summary statistics are published (13 versions, 7440 files, dup ratio
  0.92, 0.1% self-reference); we generate a workload matched to them.

Both generators are fully seeded and scale-parameterised: experiments run
at laptop scale (MBs) while preserving the ratios the paper reports.
"""

from repro.workloads.base import BackupFile, DatasetSummary, DatasetVersion
from repro.workloads.sdb import SDBConfig, SDBGenerator
from repro.workloads.rdata import RDataConfig, RDataGenerator

__all__ = [
    "BackupFile",
    "DatasetVersion",
    "DatasetSummary",
    "SDBConfig",
    "SDBGenerator",
    "RDataConfig",
    "RDataGenerator",
]
