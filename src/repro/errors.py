"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests can assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ObjectNotFoundError(ReproError, KeyError):
    """An OSS object (or a range of it) does not exist."""

    def __init__(self, bucket: str, key: str) -> None:
        super().__init__(f"object not found: oss://{bucket}/{key}")
        self.bucket = bucket
        self.key = key


class BucketNotFoundError(ReproError, KeyError):
    """The named OSS bucket was never created."""

    def __init__(self, bucket: str) -> None:
        super().__init__(f"bucket not found: {bucket}")
        self.bucket = bucket


class ChunkingError(ReproError):
    """A chunker was misconfigured or fed inconsistent state."""


class RecipeError(ReproError):
    """A recipe or recipe index is malformed or references missing data."""


class ContainerError(ReproError):
    """A container or its metadata is malformed."""


class RestoreError(ReproError):
    """A restore job could not reassemble the requested backup."""


class IntegrityError(RestoreError):
    """Restored bytes failed fingerprint verification."""


class KVStoreError(ReproError):
    """The LSM key-value store hit an inconsistent state."""


class VersionNotFoundError(ReproError, KeyError):
    """The requested backup version does not exist for this file."""

    def __init__(self, path: str, version: int | None = None) -> None:
        what = f"{path}@v{version}" if version is not None else path
        super().__init__(f"backup version not found: {what}")
        self.path = path
        self.version = version
