"""Exception hierarchy shared by every repro subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests can assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ObjectNotFoundError(ReproError, KeyError):
    """An OSS object (or a range of it) does not exist."""

    def __init__(self, bucket: str, key: str) -> None:
        super().__init__(f"object not found: oss://{bucket}/{key}")
        self.bucket = bucket
        self.key = key


class BucketNotFoundError(ReproError, KeyError):
    """The named OSS bucket was never created."""

    def __init__(self, bucket: str) -> None:
        super().__init__(f"bucket not found: {bucket}")
        self.bucket = bucket


class TransientOSSError(ReproError):
    """A single OSS request failed transiently (throttle, timeout, reset).

    Retrying the same request may succeed; the fault-injection layer
    raises this, the retry layer absorbs it.
    """

    def __init__(self, op: str, bucket: str, key: str, reason: str = "transient") -> None:
        super().__init__(f"transient OSS failure ({reason}): {op} oss://{bucket}/{key}")
        self.op = op
        self.bucket = bucket
        self.key = key
        self.reason = reason


class SimulatedCrashError(ReproError):
    """The node died at an OSS write (process-death fault injection).

    Deliberately *not* a :class:`TransientOSSError` subclass: a crash is
    not retryable — the retry layer and degraded-mode handlers must let
    it propagate so the job aborts exactly where the node would have
    died.  Recovery happens on the next attach, never in-line.
    """

    def __init__(self, op: str, bucket: str, key: str, write_index: int) -> None:
        super().__init__(
            f"simulated node crash at write #{write_index}: {op} oss://{bucket}/{key}"
        )
        self.op = op
        self.bucket = bucket
        self.key = key
        self.write_index = write_index


class RetryExhaustedError(ReproError):
    """Retries of a transiently failing OSS request ran out.

    Raised by the retry layer after its attempt cap or backoff budget is
    spent; ``last_error`` is the final :class:`TransientOSSError`.
    """

    def __init__(self, op: str, attempts: int, last_error: TransientOSSError) -> None:
        super().__init__(
            f"retries exhausted after {attempts} attempts: {last_error}"
        )
        self.op = op
        self.attempts = attempts
        self.last_error = last_error


class ChunkingError(ReproError):
    """A chunker was misconfigured or fed inconsistent state."""


class RecipeError(ReproError):
    """A recipe or recipe index is malformed or references missing data."""


class ContainerError(ReproError):
    """A container or its metadata is malformed."""


class RestoreError(ReproError):
    """A restore job could not reassemble the requested backup."""


class IntegrityError(RestoreError):
    """Restored bytes failed fingerprint verification."""


class BrowseError(ReproError):
    """A browse-session operation failed (bad handle, bad range, ...)."""


class CacheFullError(BrowseError):
    """Both block-cache tiers are full of un-uploaded dirty blocks.

    Eviction never drops dirty data, so once every resident block is
    dirty the only way forward is a flush; callers should flush and
    retry rather than lose acknowledged writes.
    """


class KVStoreError(ReproError):
    """The LSM key-value store hit an inconsistent state."""


class TraceError(ReproError):
    """A workload trace file is malformed or fails verification."""


class VersionNotFoundError(ReproError, KeyError):
    """The requested backup version does not exist for this file."""

    def __init__(self, path: str, version: int | None = None) -> None:
        what = f"{path}@v{version}" if version is not None else path
        super().__init__(f"backup version not found: {what}")
        self.path = path
        self.version = version
