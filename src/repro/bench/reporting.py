"""Plain-text rendering of experiment results.

The benchmarks print tables and series shaped like the paper's, so the
regenerated results can be compared against the published ones at a
glance (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """An aligned monospace table with a title rule."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(value.ljust(widths[i]) for i, value in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.1f}",
) -> str:
    """A figure rendered as one row per x value, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x_value in enumerate(x_values):
        row: list[object] = [x_value]
        for values in series.values():
            row.append(
                value_format.format(values[index]) if index < len(values) else "-"
            )
        rows.append(row)
    return format_table(title, headers, rows)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
