"""Dataset runners: push a workload through a system, collect statistics.

Every backup system in this repository (SLIMSTORE, SiLO, Sparse Indexing,
HAR, restic) reports per-job results with ``logical_bytes``,
``stored_chunk_bytes``, a ``breakdown`` and a dedup ratio; the runner
aggregates them per dataset version, which is the granularity the paper's
figures use.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.system import SlimStore
from repro.sim.metrics import Counters, TimeBreakdown
from repro.workloads.base import DatasetVersion


@dataclass
class VersionStats:
    """Aggregated backup statistics for one dataset version."""

    version: int
    logical_bytes: int = 0
    stored_chunk_bytes: int = 0
    elapsed_seconds: float = 0.0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    counters: Counters = field(default_factory=Counters)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated in this version."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def throughput_mb_s(self) -> float:
        """Aggregate dedup throughput of the version's jobs in MB/s."""
        if self.elapsed_seconds == 0:
            return 0.0
        return self.logical_bytes / self.elapsed_seconds / (1 << 20)

    def absorb(self, result) -> None:
        """Fold one per-file job result into this version's aggregate.

        Accepts any result object exposing ``logical_bytes``,
        ``stored_chunk_bytes`` and ``breakdown`` (all systems here do).
        """
        self.logical_bytes += result.logical_bytes
        self.stored_chunk_bytes += result.stored_chunk_bytes
        self.elapsed_seconds += result.breakdown.elapsed_pipelined()
        self.breakdown = self.breakdown.merged_with(result.breakdown)
        if hasattr(result, "counters"):
            self.counters = self.counters.merged_with(result.counters)


@dataclass
class BackupSeries:
    """Per-version statistics for one system over one dataset."""

    system_name: str
    versions: list[VersionStats] = field(default_factory=list)

    def throughputs(self) -> list[float]:
        """Per-version throughput series (MB/s)."""
        return [stats.throughput_mb_s for stats in self.versions]

    def dedup_ratios(self) -> list[float]:
        """Per-version deduplication ratio series."""
        return [stats.dedup_ratio for stats in self.versions]

    def total_logical_bytes(self) -> int:
        """Logical bytes processed across all versions."""
        return sum(stats.logical_bytes for stats in self.versions)

    def mean_throughput(self, skip_first: bool = True) -> float:
        """Average throughput (version 0 excluded by default: it has no
        history to deduplicate against)."""
        values = self.throughputs()[1 if skip_first else 0 :]
        if not values:
            return 0.0
        return sum(values) / len(values)


def run_backup_series(
    system_name: str,
    backup: Callable[[str, bytes], object],
    dataset_versions: Iterable[DatasetVersion],
) -> BackupSeries:
    """Back up every version of a dataset through ``backup(path, data)``."""
    series = BackupSeries(system_name)
    for dataset_version in dataset_versions:
        stats = VersionStats(dataset_version.version)
        for item in dataset_version.files:
            stats.absorb(backup(item.path, item.data))
        series.versions.append(stats)
    return series


def run_slimstore_series(
    store: SlimStore,
    dataset_versions: Iterable[DatasetVersion],
    run_gnode: bool = True,
) -> BackupSeries:
    """Back up a dataset through a SlimStore deployment."""
    return run_backup_series(
        "SLIMSTORE",
        lambda path, data: store.backup(path, data, run_gnode=run_gnode).result,
        dataset_versions,
    )
