"""Cluster-scaling arithmetic for Fig 10 and Table II.

The paper's scalability results follow from three structural facts, all of
which the cost model parameterises:

* a SLIMSTORE job is independent of every other job (stateless L-nodes,
  no shared index), so jobs scale linearly until node job slots or the
  node NIC saturate, and additional L-nodes extend the line;
* a restic job must hold the repository lock for its index work, so the
  aggregate caps at ``job_bytes / serial_seconds`` no matter how many jobs
  run (Amdahl over the locked section);
* restore jobs scale the same way, with the per-node limit set by NIC
  bandwidth ("each L-node can execute up to eight restore jobs").
"""

from __future__ import annotations

from repro.sim.cost_model import CostModel
from repro.sim.parallel import batched_round_trips

_MB = float(1 << 20)


def sharded_index_drain_seconds(
    lookups_per_job: int,
    jobs: int,
    shard_count: int = 1,
    batch_size: int = 1,
    slots_per_shard: int = 1,
    cost_model: CostModel | None = None,
) -> float:
    """Closed-form drain time of the cluster's shared-index phase.

    ``jobs`` concurrent ingest jobs each push ``lookups_per_job``
    fingerprints through the sharded global index.  Lookups spread
    uniformly over the shards; each shard serves its request queue with
    ``slots_per_shard`` servers and every request costs one Rocks-OSS
    round trip plus the per-key query CPU.  Shards drain independently,
    so the slowest shard sets the pace.  Cross-validated against the
    event-driven :class:`repro.core.cluster.ClusterSimulator`.
    """
    if jobs < 1 or lookups_per_job < 0:
        raise ValueError(f"invalid jobs={jobs} lookups={lookups_per_job}")
    if shard_count < 1 or batch_size < 1 or slots_per_shard < 1:
        raise ValueError("shard_count, batch_size, slots_per_shard must be >= 1")
    model = cost_model or CostModel()
    base, extra = divmod(lookups_per_job, shard_count)
    worst = 0.0
    for shard in range(shard_count):
        keys = base + (1 if shard < extra else 0)
        if not keys:
            continue
        requests = batched_round_trips(keys, batch_size)
        busy = jobs * (
            requests * model.oss_request_latency + keys * model.cpu_index_query
        )
        worst = max(worst, busy / slots_per_shard)
    return worst


def slimstore_backup_scaling(
    job_logical_bytes: float,
    job_elapsed_seconds: float,
    job_uploaded_bytes: float,
    jobs: int,
    lnode_count: int,
    cost_model: CostModel | None = None,
) -> float:
    """Aggregate backup throughput (MB/s) for ``jobs`` concurrent jobs.

    Jobs spread over L-nodes; each node runs at most
    ``node_backup_slots`` jobs in parallel (excess queues in waves) and its
    uplink bounds the combined container upload streams.
    """
    if jobs < 1 or job_elapsed_seconds <= 0:
        return 0.0
    model = cost_model or CostModel()
    nodes_used = min(lnode_count, max(1, -(-jobs // model.node_backup_slots)))
    jobs_per_node = -(-jobs // nodes_used)
    waves = -(-jobs_per_node // model.node_backup_slots)
    elapsed = job_elapsed_seconds * waves

    # NIC ceiling: concurrent jobs of one node share its uplink.
    concurrent = min(jobs_per_node, model.node_backup_slots)
    upload_rate_needed = concurrent * job_uploaded_bytes / job_elapsed_seconds
    if upload_rate_needed > model.node_nic_bandwidth:
        elapsed *= upload_rate_needed / model.node_nic_bandwidth

    return jobs * job_logical_bytes / elapsed / _MB


def slimstore_restore_scaling(
    job_logical_bytes: float,
    job_elapsed_seconds: float,
    job_downloaded_bytes: float,
    jobs: int,
    lnode_count: int,
    cost_model: CostModel | None = None,
) -> float:
    """Aggregate restore throughput (MB/s) for ``jobs`` concurrent jobs."""
    if jobs < 1 or job_elapsed_seconds <= 0:
        return 0.0
    model = cost_model or CostModel()
    nodes_used = min(lnode_count, max(1, -(-jobs // model.node_restore_slots)))
    jobs_per_node = -(-jobs // nodes_used)
    waves = -(-jobs_per_node // model.node_restore_slots)
    elapsed = job_elapsed_seconds * waves

    concurrent = min(jobs_per_node, model.node_restore_slots)
    download_rate_needed = concurrent * job_downloaded_bytes / job_elapsed_seconds
    if download_rate_needed > model.node_nic_bandwidth:
        elapsed *= download_rate_needed / model.node_nic_bandwidth

    return jobs * job_logical_bytes / elapsed / _MB


def restic_aggregate_throughput(
    job_logical_bytes: float,
    job_elapsed_seconds: float,
    job_serial_seconds: float,
    jobs: int,
) -> float:
    """Aggregate restic throughput (MB/s) for ``jobs`` concurrent jobs.

    Every job's locked index section serialises behind every other job's,
    so the system-wide duration is ``max(parallel part, jobs x serial)`` —
    throughput flat-lines at ``job_bytes / serial_seconds``.
    """
    if jobs < 1 or job_elapsed_seconds <= 0:
        return 0.0
    serial_total = jobs * job_serial_seconds
    elapsed = max(job_elapsed_seconds, serial_total)
    return jobs * job_logical_bytes / elapsed / _MB
