"""Experiment harness regenerating the paper's tables and figures.

Each benchmark under ``benchmarks/`` drives these helpers: dataset runners
that push a workload through a system and collect per-version statistics,
cluster-scaling arithmetic for Fig 10 / Table II, and plain-text renderers
that print the same rows and series the paper reports.
"""

from repro.bench.harness import BackupSeries, VersionStats, run_slimstore_series
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling import (
    restic_aggregate_throughput,
    slimstore_backup_scaling,
    slimstore_restore_scaling,
)

__all__ = [
    "VersionStats",
    "BackupSeries",
    "run_slimstore_series",
    "format_table",
    "format_series",
    "slimstore_backup_scaling",
    "slimstore_restore_scaling",
    "restic_aggregate_throughput",
]
