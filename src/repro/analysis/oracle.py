"""Analytical deduplication oracle: how much dedup is *achievable*.

The conformance suite grades the running system against two analytical
bounds computed directly from the workload, independent of the dedup
engine:

* **Chunk-multiset bound.**  Cut every file of every version with the
  *configured* chunker and count distinct fingerprints: the payload a
  perfect chunk-level deduplicator must still store is exactly the
  distinct-chunk bytes, so ``1 - distinct / logical`` is the best ratio
  any system using that chunking can reach.  SLIMSTORE's measured ratio
  must land within a declared gap *below* this bound — the gap is the
  price of inline approximations (similarity grouping, skip chunking,
  superchunk copies) that the out-of-line reverse pass does not fully
  claw back.
* **Entropy (innovation) bound.**  In the style of Niesen's
  information-theoretic analysis of deduplication, the generators count
  every *fresh uniformly random byte they draw* (``fresh_random_bytes``,
  the innovation of the mutation process).  Incompressible innovation
  must be stored at least once by any lossless system, so
  ``1 - fresh / logical`` is a ceiling on the achievable ratio for the
  whole source, independent even of chunking.  It is reported alongside
  the chunk bound; it can sit slightly *below* the chunk bound when the
  generator overwrites freshly drawn bytes within a single version (the
  innovation was drawn but never snapshotted).

Both bounds are exact computations, not estimates — the only Monte Carlo
element is the workload itself, which is seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.chunking.base import make_chunker
from repro.core.config import SlimStoreConfig
from repro.fingerprint.hashing import fingerprint
from repro.workloads.base import DatasetVersion


@dataclass(frozen=True)
class OracleBound:
    """Analytical bounds for one workload at one chunking configuration."""

    logical_bytes: int
    #: Bytes of the distinct-chunk multiset at the configured chunking.
    distinct_chunk_bytes: int
    distinct_chunks: int
    total_chunks: int
    #: Innovation of the generating process (fresh random bytes drawn),
    #: or ``None`` when the workload's innovation is unknown (e.g. an
    #: externally recorded trace).
    fresh_random_bytes: int | None = None

    @property
    def chunk_bound_ratio(self) -> float:
        """Best dedup ratio achievable at this chunking (exact)."""
        if not self.logical_bytes:
            return 0.0
        return 1.0 - self.distinct_chunk_bytes / self.logical_bytes

    @property
    def entropy_bound_ratio(self) -> float | None:
        """Information-theoretic ceiling from the innovation process."""
        if self.fresh_random_bytes is None or not self.logical_bytes:
            return None
        return 1.0 - self.fresh_random_bytes / self.logical_bytes


def chunk_duplicate_bound(
    versions: Iterable[DatasetVersion],
    config: SlimStoreConfig,
    fresh_random_bytes: int | None = None,
) -> OracleBound:
    """Exact chunk-multiset bound for a version stream.

    Chunks every file with ``config``'s chunker at ``config``'s
    parameters — the same cut discipline the L-node applies — and
    fingerprints each chunk.  Distinct fingerprints are the irreducible
    payload.
    """
    chunker = make_chunker(config.chunker, config.chunker_params())
    seen: set[bytes] = set()
    logical = 0
    distinct_bytes = 0
    total_chunks = 0
    for version in versions:
        for item in version.files:
            logical += len(item.data)
            for chunk in chunker.chunk(item.data):
                total_chunks += 1
                fp = fingerprint(chunk.data)
                if fp not in seen:
                    seen.add(fp)
                    distinct_bytes += chunk.size
    return OracleBound(
        logical_bytes=logical,
        distinct_chunk_bytes=distinct_bytes,
        distinct_chunks=len(seen),
        total_chunks=total_chunks,
        fresh_random_bytes=fresh_random_bytes,
    )


def measured_dedup_ratio(store, logical_bytes: int) -> float:
    """The system's achieved ratio, after maintenance settles.

    Counts *live* payload bytes — chunks the reverse pass marked deleted
    no longer count even before their container is rewritten, because
    sparse compaction is free to reclaim them at any time.  Enumerates
    the containers actually on OSS rather than the catalog's references:
    old recipes may still point at containers reverse dedup emptied and
    GC deleted (restore redirects those chunks through the global
    index), and those phantom ids hold zero bytes.
    """
    containers = store.storage.containers
    live = sum(
        containers.read_meta(cid).live_bytes()
        for cid in containers.container_ids()
    )
    if not logical_bytes:
        return 0.0
    return 1.0 - live / logical_bytes


@dataclass(frozen=True)
class ConformanceReport:
    """One workload's measured ratio next to its analytical bounds."""

    workload: str
    seed: int
    bound: OracleBound
    measured_ratio: float

    @property
    def gap(self) -> float:
        """Achievable-minus-achieved: bound ratio minus measured ratio."""
        return self.bound.chunk_bound_ratio - self.measured_ratio

    def check(self, max_gap: float, overshoot: float = 0.01) -> None:
        """Assert the measured ratio conforms to the oracle.

        ``max_gap`` is the declared allowance below the chunk bound;
        ``overshoot`` tolerates the measured ratio landing marginally
        *above* the bound (skip chunking and chunk merging cut slightly
        different boundaries than the oracle's plain CDC pass, so the
        system's distinct-chunk multiset is not byte-identical to the
        oracle's).
        """
        bound = self.bound.chunk_bound_ratio
        if self.measured_ratio > bound + overshoot:
            raise AssertionError(
                f"{self.workload}/seed={self.seed}: measured ratio "
                f"{self.measured_ratio:.4f} exceeds the chunk-multiset "
                f"bound {bound:.4f} by more than {overshoot:.2%} — the "
                f"accounting is broken, not the dedup"
            )
        if self.gap > max_gap:
            raise AssertionError(
                f"{self.workload}/seed={self.seed}: measured ratio "
                f"{self.measured_ratio:.4f} trails the chunk-multiset "
                f"bound {bound:.4f} by {self.gap:.4f} "
                f"(declared gap {max_gap:.4f})"
            )


def conformance(
    workload: str,
    seed: int,
    versions: list[DatasetVersion],
    store,
    config: SlimStoreConfig,
    fresh_random_bytes: int | None = None,
) -> ConformanceReport:
    """Bound + measured ratio for a version stream already backed up."""
    bound = chunk_duplicate_bound(versions, config, fresh_random_bytes)
    measured = measured_dedup_ratio(store, bound.logical_bytes)
    return ConformanceReport(
        workload=workload, seed=seed, bound=bound, measured_ratio=measured
    )
