"""Offline analysis: analytical bounds the running system is graded against."""

from repro.analysis.oracle import (
    ConformanceReport,
    OracleBound,
    chunk_duplicate_bound,
    conformance,
    measured_dedup_ratio,
)

__all__ = [
    "OracleBound",
    "ConformanceReport",
    "chunk_duplicate_bound",
    "measured_dedup_ratio",
    "conformance",
]
