"""Closed-form parallelism arithmetic.

The scalability experiments (Table II, Fig 10) hinge on three facts the
paper states explicitly: pipeline stages overlap, OSS read channels scale
linearly until another resource saturates, and jobs on one node share its
cores and NIC.  These helpers express exactly that arithmetic so the bench
code stays declarative.
"""

from __future__ import annotations

from collections.abc import Iterable


def pipelined_time(stage_seconds: Iterable[float]) -> float:
    """Duration of fully-overlapped pipeline stages: the slowest wins."""
    times = list(stage_seconds)
    if not times:
        return 0.0
    if any(t < 0 for t in times):
        raise ValueError("stage durations must be non-negative")
    return max(times)

def serialized_time(stage_seconds: Iterable[float]) -> float:
    """Duration when stages run strictly one after another."""
    times = list(stage_seconds)
    if any(t < 0 for t in times):
        raise ValueError("stage durations must be non-negative")
    return sum(times)


def parallel_channel_time(
    nbytes: float, channel_bandwidth: float, channels: int, cap: float = float("inf")
) -> float:
    """Seconds to move ``nbytes`` over ``channels`` parallel streams.

    Aggregate bandwidth scales linearly with the channel count until it
    hits ``cap`` (e.g. the node NIC).  This is the paper's observation that
    "OSS can support multi-channel parallel read that achieves scalable
    performance improvements".
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    if channel_bandwidth <= 0:
        raise ValueError("channel bandwidth must be positive")
    bandwidth = min(channel_bandwidth * channels, cap)
    return nbytes / bandwidth


def prefetched_restore_time(
    cpu_seconds: float, download_seconds: float, threads: int
) -> float:
    """Closed-form restore duration under LAW prefetching (Table II).

    With ``threads`` parallel OSS channels the download fully overlaps the
    restore CPU, so the slower side wins; with 0 threads every read blocks
    the pipeline and the stages serialise.  The event-driven pipeline in
    :func:`repro.sim.events.simulate_restore_pipeline` replaces this
    formula for reported numbers; this stays as the cross-check the two
    models are validated against (startup and tail effects make the event
    schedule approach this bound from above as the read count grows).
    """
    if cpu_seconds < 0 or download_seconds < 0:
        raise ValueError("durations must be non-negative")
    if threads < 0:
        raise ValueError(f"threads cannot be negative: {threads}")
    if threads == 0:
        return cpu_seconds + download_seconds
    return max(cpu_seconds, download_seconds / threads)


def pipelined_ingest_time(
    chunk_seconds: Iterable[float],
    lookup_seconds: Iterable[float],
    flush_seconds: Iterable[float] = (),
    setup_seconds: float = 0.0,
    finish_seconds: float = 0.0,
    channels: int = 1,
) -> float:
    """Lower bound of the segment-parallel ingest pipeline.

    With enough chunk look-ahead and flush buffers the job is limited by
    its spine — the first segment's chunking plus every segment's lookup,
    run strictly in order — or by draining the container uploads over
    ``channels`` OSS streams, whichever is slower.  The event-driven
    schedule (:class:`repro.sim.events.BackupPipelineProcess`) approaches
    this bound from above; bounded buffers, chunk stalls and channel
    contention only add time, never remove it.
    """
    chunk = list(chunk_seconds)
    lookup = list(lookup_seconds)
    flush = list(flush_seconds)
    if any(t < 0 for t in chunk + lookup + flush) or setup_seconds < 0 or finish_seconds < 0:
        raise ValueError("stage durations must be non-negative")
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    spine = (chunk[0] if chunk else 0.0) + sum(lookup)
    upload = sum(flush) / channels
    return setup_seconds + max(spine, upload) + finish_seconds


def batched_round_trips(keys: int, batch_size: int) -> int:
    """Index round trips needed to answer ``keys`` lookups in batches.

    Batch size 1 degenerates to one Rocks-OSS round trip per key, the
    access pattern the sharded-index ablation measures against.
    """
    if keys < 0 or batch_size < 1:
        raise ValueError(f"invalid keys={keys} batch_size={batch_size}")
    return -(-keys // batch_size)


def sharded_drain_time(
    per_shard_requests: Iterable[int], request_seconds: float
) -> float:
    """Seconds to drain per-shard request queues with one server per shard.

    Shards are independent stores, so their queues drain concurrently and
    the slowest shard sets the pace — the parallel-batch drain of the
    G-node's reverse-dedup pass.
    """
    requests = list(per_shard_requests)
    if any(r < 0 for r in requests):
        raise ValueError("per-shard request counts must be non-negative")
    if request_seconds < 0:
        raise ValueError("request duration must be non-negative")
    if not requests:
        return 0.0
    return max(requests) * request_seconds


def contended_time(per_job_seconds: float, jobs: int, slots: int) -> float:
    """Duration of ``jobs`` equal tasks on ``slots`` parallel executors.

    Jobs queue in waves when they outnumber slots; this models both cores
    on one node and L-nodes in the cluster.
    """
    if jobs < 0 or slots < 1:
        raise ValueError(f"invalid jobs={jobs} slots={slots}")
    if jobs == 0:
        return 0.0
    waves = -(-jobs // slots)  # ceiling division
    return per_job_seconds * waves
