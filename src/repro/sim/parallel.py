"""Closed-form parallelism arithmetic.

The scalability experiments (Table II, Fig 10) hinge on three facts the
paper states explicitly: pipeline stages overlap, OSS read channels scale
linearly until another resource saturates, and jobs on one node share its
cores and NIC.  These helpers express exactly that arithmetic so the bench
code stays declarative.
"""

from __future__ import annotations

from collections.abc import Iterable


def pipelined_time(stage_seconds: Iterable[float]) -> float:
    """Duration of fully-overlapped pipeline stages: the slowest wins."""
    times = list(stage_seconds)
    if not times:
        return 0.0
    if any(t < 0 for t in times):
        raise ValueError("stage durations must be non-negative")
    return max(times)

def serialized_time(stage_seconds: Iterable[float]) -> float:
    """Duration when stages run strictly one after another."""
    times = list(stage_seconds)
    if any(t < 0 for t in times):
        raise ValueError("stage durations must be non-negative")
    return sum(times)


def parallel_channel_time(
    nbytes: float, channel_bandwidth: float, channels: int, cap: float = float("inf")
) -> float:
    """Seconds to move ``nbytes`` over ``channels`` parallel streams.

    Aggregate bandwidth scales linearly with the channel count until it
    hits ``cap`` (e.g. the node NIC).  This is the paper's observation that
    "OSS can support multi-channel parallel read that achieves scalable
    performance improvements".
    """
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    if channel_bandwidth <= 0:
        raise ValueError("channel bandwidth must be positive")
    bandwidth = min(channel_bandwidth * channels, cap)
    return nbytes / bandwidth


def contended_time(per_job_seconds: float, jobs: int, slots: int) -> float:
    """Duration of ``jobs`` equal tasks on ``slots`` parallel executors.

    Jobs queue in waves when they outnumber slots; this models both cores
    on one node and L-nodes in the cluster.
    """
    if jobs < 0 or slots < 1:
        raise ValueError(f"invalid jobs={jobs} slots={slots}")
    if jobs == 0:
        return 0.0
    waves = -(-jobs // slots)  # ceiling division
    return per_job_seconds * waves
