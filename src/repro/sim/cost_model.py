"""Calibrated CPU and network cost model.

Every constant below is the virtual-time price of one primitive operation.
The defaults are calibrated so that the *magnitudes* reported by the paper
come out of the model:

* Rabin-based CDC dominates CPU (~60% of dedup CPU time, Fig 2) and plain
  Rabin deduplication lands near 55-60 MB/s;
* FastCDC chunking is several times cheaper (~40% CPU share, Fig 2);
* single-channel OSS reads deliver ~36 MB/s and parallel channels scale
  linearly until the restore pipeline becomes CPU-bound near 208 MB/s
  (Table II);
* an OSS round trip costs tens of milliseconds, which is why per-chunk
  index lookups on OSS (the restic model) serialise so badly (Fig 10).

The shapes of all experiments (who wins, where crossovers fall) come from
the real algorithms running over real bytes; the cost model only converts
observed work (bytes scanned, requests issued) into virtual seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

#: One nanosecond expressed in seconds; CPU costs below are ns/byte.
_NS = 1e-9
#: One mebibyte in bytes.
MIB = float(1 << 20)


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost of CPU and network primitives.

    All ``*_per_byte`` figures are seconds per byte, all ``*_latency``
    figures are seconds per request.
    """

    # --- CPU: chunking ---------------------------------------------------
    #: Rabin rolling hash, byte-by-byte sliding window (~83 MB/s raw scan).
    cpu_rabin_per_byte: float = 12.0 * _NS
    #: Gear rolling hash (DDelta) — cheap shift/add per byte.
    cpu_gear_per_byte: float = 3.8 * _NS
    #: FastCDC with gear hash, normalized chunking and cut-point skipping.
    cpu_fastcdc_per_byte: float = 3.3 * _NS
    #: Fixed-size chunking: pointer arithmetic only.
    cpu_fixed_per_byte: float = 0.05 * _NS
    #: History-aware skip chunking: a size lookup plus one boundary probe,
    #: amortised over the bytes skipped.
    cpu_skip_per_byte: float = 0.12 * _NS

    # --- CPU: fingerprinting & lookup ------------------------------------
    #: SHA-1 over chunk payloads (~285 MB/s on one 2.5 GHz core).
    cpu_sha1_per_byte: float = 3.5 * _NS
    #: Per-chunk-record handling: record construction, segment
    #: bookkeeping, dedup-cache advance.  Charged for every emitted record
    #: on every path; merging wins throughput by emitting fewer records.
    cpu_record_handling: float = 8.0e-6
    #: Per-chunk lookup and bookkeeping (dedup-cache probe, recipe-record
    #: handling, allocation).  This is the per-chunk overhead that makes
    #: throughput grow with chunk size in Fig 5(a) and gives chunk merging
    #: its ~20% win in Fig 6 (8 us/chunk = 2 ns/byte at 4 KB chunks).
    cpu_index_query: float = 8.0e-6
    #: Fingerprint equality check used by the skip-chunking fast path.
    cpu_fp_compare: float = 0.05e-6
    #: Everything else per byte (segmenting, memcpy into containers, ...).
    cpu_other_per_byte: float = 1.0 * _NS

    # --- CPU: restore -----------------------------------------------------
    #: Splicing restored chunks into the output stream (memcpy + cache
    #: bookkeeping).  1/4.8ns ~= 208 MB/s, the paper's prefetch ceiling.
    cpu_restore_per_byte: float = 4.8 * _NS

    # --- Network: OSS -----------------------------------------------------
    #: Round-trip latency of one OSS request.  Compute nodes and OSS sit in
    #: the same cloud region (the paper's ECS + OSS deployment), so this is
    #: an intra-datacenter round trip — and it is scaled down together with
    #: the object sizes of this reproduction (containers are ~8x smaller
    #: than production), keeping the latency:bandwidth balance of each
    #: request representative.
    oss_request_latency: float = 0.5e-3
    #: Single-channel OSS read bandwidth (delivers the ~36 MB/s effective
    #: single-channel restore rate of Table II once request latency and
    #: residual read amplification are paid).
    oss_read_bandwidth: float = 40.0 * MIB
    #: Single-channel OSS write bandwidth.
    oss_write_bandwidth: float = 40.0 * MIB
    #: Aggregate NIC bandwidth of one compute node (both directions).
    node_nic_bandwidth: float = 625.0 * MIB

    # --- Compute nodes ------------------------------------------------------
    #: Cores per L-node / G-node (paper: 16-core ECS instances).
    node_cores: int = 16
    #: Concurrent backup jobs one L-node sustains (the paper allocates a
    #: second L-node "when the number of concurrent backup jobs exceeds"
    #: roughly this many; cores minus prefetch/IO helper threads).
    node_backup_slots: int = 12
    #: Concurrent restore jobs one L-node sustains ("due to network
    #: bandwidth limitations, each L-node can execute up to eight restore
    #: jobs at the same time").
    node_restore_slots: int = 8
    #: OSS read channels one node can drive concurrently before its NIC
    #: saturates (625 MiB/s NIC / 40 MiB/s per channel ~= 16): the shared
    #: pool that concurrent restore jobs' prefetchers contend for.
    node_oss_channels: int = 16

    # --- Derived helpers ----------------------------------------------------
    def chunking_cost(self, algorithm: str, nbytes: int) -> float:
        """CPU seconds to scan ``nbytes`` with the named CDC algorithm."""
        per_byte = {
            "rabin": self.cpu_rabin_per_byte,
            "gear": self.cpu_gear_per_byte,
            "fastcdc": self.cpu_fastcdc_per_byte,
            "fixed": self.cpu_fixed_per_byte,
            "skip": self.cpu_skip_per_byte,
        }.get(algorithm)
        if per_byte is None:
            raise ValueError(f"unknown chunking algorithm: {algorithm!r}")
        return per_byte * nbytes

    def fingerprint_cost(self, nbytes: int) -> float:
        """CPU seconds to fingerprint ``nbytes`` of chunk payload."""
        return self.cpu_sha1_per_byte * nbytes

    def oss_read_time(self, nbytes: int, channels: int = 1) -> float:
        """Seconds to read ``nbytes`` from OSS over ``channels`` streams."""
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        bandwidth = min(
            self.oss_read_bandwidth * channels, self.node_nic_bandwidth
        )
        return self.oss_request_latency + nbytes / bandwidth

    def oss_write_time(self, nbytes: int, channels: int = 1) -> float:
        """Seconds to write ``nbytes`` to OSS over ``channels`` streams."""
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        bandwidth = min(
            self.oss_write_bandwidth * channels, self.node_nic_bandwidth
        )
        return self.oss_request_latency + nbytes / bandwidth
