"""A minimal discrete-event simulation kernel.

The scalability experiments mostly use closed-form arithmetic
(:mod:`repro.bench.scaling`); this kernel exists to *cross-validate* that
arithmetic with an explicit event-driven schedule — jobs arriving at a
cluster, queueing for node slots, sharing NIC bandwidth — and to support
scenarios the closed forms cannot express (heterogeneous job sizes,
staggered arrivals).

The kernel is deliberately tiny: a time-ordered event queue and a
``SlotResource`` with FIFO queueing.  Processes are plain callbacks.

On top of the kernel sits the restore prefetch pipeline (Section V-B):
``prefetch_threads`` OSS channels issue the planned container reads ahead
of the restore consumer, which blocks only when the read holding its next
chunk has not completed.  :func:`simulate_restore_pipeline` runs one job on
private channels; :class:`RestorePipelineProcess` is the reusable process
so many jobs can contend for one shared :class:`ChannelPool` (the
multi-job restore half of Fig 10).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventLoop:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: {delay}")
        heapq.heappush(
            self._queue, _Event(self.now + delay, next(self._sequence), action)
        )

    def run(self, until: float | None = None) -> float:
        """Drain the queue; returns the completion time.

        With ``until``, stop before executing any event scheduled after
        that time (the event stays queued and ``now`` advances to
        ``until``), so a caller can interleave inspection or external
        actions with the schedule — the control-plane horizon pattern.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = max(self.now, until)
                return self.now
            event = heapq.heappop(self._queue)
            self.now = event.time
            event.action()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending(self) -> int:
        """Events still queued."""
        return len(self._queue)


class SlotResource:
    """A counted resource (e.g. job slots on one node) with FIFO queueing."""

    def __init__(self, loop: EventLoop, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        self._loop = loop
        self._free = slots
        self._waiting: list[Callable[[], None]] = []
        self.capacity = slots

    def acquire(self, on_granted: Callable[[], None]) -> None:
        """Request one slot; ``on_granted`` fires when it is available."""
        if self._free > 0:
            self._free -= 1
            self._loop.schedule(0.0, on_granted)
        else:
            self._waiting.append(on_granted)

    def release(self) -> None:
        """Return one slot, handing it to the next waiter if any."""
        if self._waiting:
            self._loop.schedule(0.0, self._waiting.pop(0))
        else:
            self._free += 1
            if self._free > self.capacity:
                raise RuntimeError("released more slots than acquired")

    @property
    def busy(self) -> int:
        """Slots currently held."""
        return self.capacity - self._free

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)


class ChannelPool:
    """A pool of identified OSS channels with per-channel busy accounting.

    A thin layer over :class:`SlotResource` that hands out a concrete
    channel id with each grant, so callers can charge per-channel busy
    seconds (the Table II per-thread utilisation view).
    """

    def __init__(self, loop: EventLoop, channels: int) -> None:
        self._loop = loop
        self._slots = SlotResource(loop, channels)
        self._free_ids = list(range(channels - 1, -1, -1))
        self.busy_seconds = [0.0] * channels

    @property
    def capacity(self) -> int:
        """Number of channels in the pool."""
        return self._slots.capacity

    def acquire(self, on_granted: Callable[[int], None]) -> None:
        """Request a channel; ``on_granted(channel_id)`` fires when free."""
        self._slots.acquire(lambda: on_granted(self._free_ids.pop()))

    def release(self, channel_id: int) -> None:
        """Return a channel to the pool."""
        self._free_ids.append(channel_id)
        self._slots.release()

    def occupy(self, channel_id: int, seconds: float) -> None:
        """Charge ``seconds`` of busy time to one channel."""
        self.busy_seconds[channel_id] += seconds


@dataclass
class PipelineStats:
    """Outcome of one simulated restore pipeline."""

    elapsed_seconds: float = 0.0
    #: Times the consumer blocked on an incomplete prefetch read.
    stall_count: int = 0
    #: Total virtual seconds the consumer spent blocked.
    stall_seconds: float = 0.0
    #: Busy seconds per prefetch channel (empty with 0 threads).
    channel_busy_seconds: list[float] = field(default_factory=list)
    #: Seconds of demand reads the consumer issued itself (plan misses).
    demand_seconds: float = 0.0


class RestorePipelineProcess:
    """One restore job's prefetch pipeline as an event-driven process.

    The prefetcher walks the planner's read schedule in order, keeping at
    most ``max_parallel`` reads in flight on the (possibly shared)
    :class:`ChannelPool`.  The consumer walks the chunk records: record
    ``i`` needs read ``record_reads[i]`` completed (−1 for cache hits),
    then spends ``record_cpu[i]`` CPU seconds splicing.  Demand reads
    (``demand_seconds[i]``: plan misses resolved synchronously, e.g. a
    redirect the planner could not see) block the consumer for their full
    duration — they are never prefetched.
    """

    def __init__(
        self,
        loop: EventLoop,
        channels: ChannelPool,
        read_seconds: Sequence[float],
        record_reads: Sequence[int],
        record_cpu: Sequence[float],
        demand_seconds: Sequence[float] | None = None,
        max_parallel: int | None = None,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        if len(record_reads) != len(record_cpu):
            raise ValueError("record_reads and record_cpu must align")
        if any(d < 0 for d in read_seconds):
            raise ValueError("read durations must be non-negative")
        for read in record_reads:
            if read >= len(read_seconds):
                raise ValueError(f"record references unknown read {read}")
        self._loop = loop
        self._channels = channels
        self._reads = list(read_seconds)
        self._record_reads = list(record_reads)
        self._record_cpu = list(record_cpu)
        self._demand = list(demand_seconds) if demand_seconds else None
        self._limit = max_parallel if max_parallel is not None else channels.capacity
        if self._limit < 1:
            raise ValueError(f"max_parallel must be >= 1, got {self._limit}")
        self._on_done = on_done
        self._completed = [False] * len(self._reads)
        self._waiters: list[Callable[[], None] | None] = [None] * len(self._reads)
        self._next_read = 0
        self._in_flight = 0
        self._started_at = 0.0
        self.stats = PipelineStats()

    def start(self) -> None:
        """Begin prefetching and consuming at the current loop time."""
        self._started_at = self._loop.now
        self._issue_more()
        self._consume(0)

    # --- prefetcher ------------------------------------------------------
    def _issue_more(self) -> None:
        while self._in_flight < self._limit and self._next_read < len(self._reads):
            position = self._next_read
            self._next_read += 1
            self._in_flight += 1
            self._channels.acquire(
                lambda channel_id, position=position: self._run_read(
                    position, channel_id
                )
            )

    def _run_read(self, position: int, channel_id: int) -> None:
        duration = self._reads[position]
        self._channels.occupy(channel_id, duration)
        self._loop.schedule(duration, lambda: self._finish_read(position, channel_id))

    def _finish_read(self, position: int, channel_id: int) -> None:
        self._completed[position] = True
        self._channels.release(channel_id)
        self._in_flight -= 1
        self._issue_more()
        waiter, self._waiters[position] = self._waiters[position], None
        if waiter is not None:
            waiter()

    # --- consumer --------------------------------------------------------
    def _consume(self, index: int) -> None:
        while index < len(self._record_cpu):
            read = self._record_reads[index]
            if read >= 0 and not self._completed[read]:
                self.stats.stall_count += 1
                stalled_at = self._loop.now

                def resume(index=index, stalled_at=stalled_at) -> None:
                    self.stats.stall_seconds += self._loop.now - stalled_at
                    self._consume(index)

                self._waiters[read] = resume
                return
            delay = self._record_cpu[index]
            if self._demand is not None:
                demand = self._demand[index]
                self.stats.demand_seconds += demand
                delay += demand
            if delay > 0:
                self._loop.schedule(delay, lambda index=index: self._consume(index + 1))
                return
            index += 1
        self.stats.elapsed_seconds = self._loop.now - self._started_at
        if self._on_done is not None:
            self._on_done()


@dataclass
class IngestPipelineStats:
    """Outcome of one simulated backup ingest pipeline."""

    elapsed_seconds: float = 0.0
    #: Times the lookup spine waited for a segment still being chunked.
    chunk_stall_count: int = 0
    #: Total virtual seconds the spine spent waiting on the chunk stage.
    chunk_stall_seconds: float = 0.0
    #: Times the spine blocked handing a full container to the uploader.
    flush_stall_count: int = 0
    #: Total virtual seconds the spine spent blocked on flush buffers.
    flush_stall_seconds: float = 0.0
    #: Seconds a segment's lookup waited on its batched index round trips
    #: beyond its own CPU (the un-hidden index latency).
    rpc_wait_seconds: float = 0.0
    #: Busy seconds per OSS channel (private-pool runs only).
    channel_busy_seconds: list[float] = field(default_factory=list)


class BackupPipelineProcess:
    """One backup job's segment pipeline as an event-driven process.

    Three stages over recipe-aligned segments (Section IV structure):

    * **chunk** — CDC boundary scan + fingerprinting of segment ``i``;
      content-only work, so up to ``1 + ingest_segments`` segments may be
      in flight ahead of classification.
    * **lookup** — the spine: classification, cache probes, recipe
      prefetches and the segment's batched index round trips
      (``lookup_rpcs[i]``, issued concurrently on the shared
      :class:`ChannelPool` and awaited before the segment completes).
      Strictly sequential in segment order, because skip chunking and
      SuperChunking replay the previous version's history in order.
    * **flush** — container uploads handed off after the segment that
      filled them.  With ``flush_buffers == 0`` the spine blocks for the
      whole upload; with ``b >= 1`` up to ``b`` uploads ride in flight
      and the spine only blocks when every buffer is busy.

    ``setup_seconds`` (base detection + recipe-index fetch) is a serial
    prefix; ``finish_seconds`` (recipe/index/similarity persistence) a
    serial tail after the last lookup and flush.
    """

    def __init__(
        self,
        loop: EventLoop,
        channels: ChannelPool,
        chunk_seconds: Sequence[float],
        lookup_seconds: Sequence[float],
        lookup_rpcs: Sequence[Sequence[float]] | None = None,
        flush_after: Sequence[int] = (),
        flush_seconds: Sequence[float] = (),
        setup_seconds: float = 0.0,
        finish_seconds: float = 0.0,
        ingest_segments: int = 0,
        flush_buffers: int = 0,
        on_done: Callable[[], None] | None = None,
    ) -> None:
        if len(chunk_seconds) != len(lookup_seconds):
            raise ValueError("chunk_seconds and lookup_seconds must align")
        if len(flush_after) != len(flush_seconds):
            raise ValueError("flush_after and flush_seconds must align")
        if ingest_segments < 0 or flush_buffers < 0:
            raise ValueError("ingest_segments/flush_buffers cannot be negative")
        durations = list(chunk_seconds) + list(lookup_seconds) + list(flush_seconds)
        durations += [setup_seconds, finish_seconds]
        if any(d < 0 for d in durations):
            raise ValueError("stage durations must be non-negative")
        self._loop = loop
        self._channels = channels
        self._chunk = list(chunk_seconds)
        self._lookup = list(lookup_seconds)
        count = len(self._chunk)
        self._rpcs = (
            [list(r) for r in lookup_rpcs] if lookup_rpcs is not None else [[] for _ in range(count)]
        )
        if len(self._rpcs) != count:
            raise ValueError("lookup_rpcs must have one entry per segment")
        self._flush_seconds = list(flush_seconds)
        #: flush index queues, keyed by the segment whose lookup completion
        #: hands them off (clamped: a flush recorded at/after the last
        #: segment fires after the final lookup).
        self._flushes_by_segment: dict[int, list[int]] = {}
        for j, seg in enumerate(flush_after):
            key = min(int(seg), count - 1) if count else -1
            self._flushes_by_segment.setdefault(key, []).append(j)
        self._setup = setup_seconds
        self._finish = finish_seconds
        self._ahead = ingest_segments
        self._buffers = SlotResource(loop, flush_buffers) if flush_buffers > 0 else None
        self._on_done = on_done

        self._chunks_done = [False] * count
        self._next_chunk = 0
        self._lookups_done = 0
        self._spine_busy = False
        self._chunk_wait_from: float | None = None
        self._pending_flushes: list[int] = []
        self._active_flushes = 0
        self._finishing = False
        self._started_at = 0.0
        self.stats = IngestPipelineStats()

    def start(self) -> None:
        """Begin the pipeline at the current loop time."""
        self._started_at = self._loop.now
        self._loop.schedule(self._setup, self._begin)

    def _begin(self) -> None:
        # Flushes with no owning segment (empty stream) fire immediately.
        self._pending_flushes.extend(self._flushes_by_segment.pop(-1, []))
        self._pump()

    # --- chunk stage -----------------------------------------------------
    def _pump(self) -> None:
        window = self._lookups_done + self._ahead
        while self._next_chunk < len(self._chunk) and self._next_chunk <= window:
            position = self._next_chunk
            self._next_chunk += 1
            self._loop.schedule(
                self._chunk[position], lambda position=position: self._chunk_done(position)
            )
        self._advance_spine()

    def _chunk_done(self, position: int) -> None:
        self._chunks_done[position] = True
        self._pump()

    # --- lookup spine ----------------------------------------------------
    def _advance_spine(self) -> None:
        if self._spine_busy:
            return
        if self._pending_flushes:
            self._hand_off_flush()
            return
        index = self._lookups_done
        if index < len(self._lookup):
            if self._chunks_done[index]:
                self._start_lookup(index)
            elif self._chunk_wait_from is None:
                self.stats.chunk_stall_count += 1
                self._chunk_wait_from = self._loop.now
        else:
            self._maybe_finish()

    def _start_lookup(self, index: int) -> None:
        if self._chunk_wait_from is not None:
            self.stats.chunk_stall_seconds += self._loop.now - self._chunk_wait_from
            self._chunk_wait_from = None
        self._spine_busy = True
        state = {"rpcs": len(self._rpcs[index]), "cpu_done_at": None}

        def part_done() -> None:
            if state["rpcs"] == 0 and state["cpu_done_at"] is not None:
                cpu_done_at = state["cpu_done_at"]
                self.stats.rpc_wait_seconds += self._loop.now - cpu_done_at
                self._complete_lookup(index)

        def cpu_done() -> None:
            state["cpu_done_at"] = self._loop.now
            part_done()

        for duration in self._rpcs[index]:

            def issue(duration=duration) -> None:
                def granted(channel_id: int) -> None:
                    self._channels.occupy(channel_id, duration)

                    def rpc_done() -> None:
                        self._channels.release(channel_id)
                        state["rpcs"] -= 1
                        part_done()

                    self._loop.schedule(duration, rpc_done)

                self._channels.acquire(granted)

            issue()
        self._loop.schedule(self._lookup[index], cpu_done)

    def _complete_lookup(self, index: int) -> None:
        self._spine_busy = False
        self._lookups_done += 1
        self._pending_flushes.extend(self._flushes_by_segment.pop(index, []))
        self._pump()

    # --- flush stage -----------------------------------------------------
    def _hand_off_flush(self) -> None:
        flush = self._pending_flushes.pop(0)
        self._spine_busy = True
        blocked_at = self._loop.now
        duration = self._flush_seconds[flush]

        def upload(release_buffer: bool) -> None:
            self._active_flushes += 1

            def granted(channel_id: int) -> None:
                self._channels.occupy(channel_id, duration)

                def upload_done() -> None:
                    self._channels.release(channel_id)
                    if release_buffer:
                        self._buffers.release()
                    else:
                        # Synchronous flush: the spine was blocked for the
                        # whole upload.
                        self.stats.flush_stall_count += 1
                        self.stats.flush_stall_seconds += self._loop.now - blocked_at
                        self._spine_busy = False
                    self._active_flushes -= 1
                    self._pump()

                self._loop.schedule(duration, upload_done)

            self._channels.acquire(granted)

        if self._buffers is None:
            upload(release_buffer=False)
            return

        def buffer_granted() -> None:
            waited = self._loop.now - blocked_at
            if waited > 0:
                self.stats.flush_stall_count += 1
                self.stats.flush_stall_seconds += waited
            self._spine_busy = False
            upload(release_buffer=True)
            self._pump()

        self._buffers.acquire(buffer_granted)

    # --- completion ------------------------------------------------------
    def _maybe_finish(self) -> None:
        if self._finishing or self._spine_busy:
            return
        if self._lookups_done < len(self._lookup):
            return
        if self._pending_flushes or self._active_flushes:
            return
        self._finishing = True
        self._loop.schedule(self._finish, self._complete)

    def _complete(self) -> None:
        self.stats.elapsed_seconds = self._loop.now - self._started_at
        if self._on_done is not None:
            self._on_done()


def simulate_backup_pipeline(
    chunk_seconds: Sequence[float],
    lookup_seconds: Sequence[float],
    lookup_rpcs: Sequence[Sequence[float]] | None = None,
    flush_after: Sequence[int] = (),
    flush_seconds: Sequence[float] = (),
    setup_seconds: float = 0.0,
    finish_seconds: float = 0.0,
    ingest_segments: int = 0,
    flush_buffers: int = 0,
    channels: int | None = None,
) -> IngestPipelineStats:
    """Run one backup job's ingest pipeline on private OSS channels.

    ``channels`` defaults to one channel per in-flight flush buffer plus
    one for index round trips — a single job should not assume a whole
    node's channel pool.  Many jobs sharing a node instead go through
    :meth:`repro.core.cluster.ClusterSimulator.run_backup_pipelines`.
    """
    if channels is None:
        channels = max(2, flush_buffers + 1)
    loop = EventLoop()
    pool = ChannelPool(loop, channels)
    process = BackupPipelineProcess(
        loop,
        pool,
        chunk_seconds,
        lookup_seconds,
        lookup_rpcs=lookup_rpcs,
        flush_after=flush_after,
        flush_seconds=flush_seconds,
        setup_seconds=setup_seconds,
        finish_seconds=finish_seconds,
        ingest_segments=ingest_segments,
        flush_buffers=flush_buffers,
    )
    process.start()
    loop.run()
    stats = process.stats
    stats.channel_busy_seconds = list(pool.busy_seconds)
    return stats


def simulate_restore_pipeline(
    read_seconds: Sequence[float],
    record_reads: Sequence[int],
    record_cpu: Sequence[float],
    threads: int,
    demand_seconds: Sequence[float] | None = None,
    setup_seconds: float = 0.0,
) -> PipelineStats:
    """Run one restore job's pipeline on private prefetch channels.

    With ``threads == 0`` there are no prefetch channels: every read is a
    consumer stall and the job serialises (the ``cpu + download`` closed
    form).  With ``threads >= 1`` the event schedule replaces the
    ``max(cpu, download/threads)`` closed form, which stays available in
    :func:`repro.sim.parallel.prefetched_restore_time` as a cross-check.
    ``setup_seconds`` is the serial prefix (recipe fetch + planning) paid
    before the pipeline starts.
    """
    if threads < 0:
        raise ValueError(f"threads cannot be negative: {threads}")
    if setup_seconds < 0:
        raise ValueError(f"setup cannot be negative: {setup_seconds}")
    if threads == 0:
        stats = PipelineStats()
        stats.stall_count = len(read_seconds)
        stats.stall_seconds = float(sum(read_seconds))
        stats.demand_seconds = float(sum(demand_seconds)) if demand_seconds else 0.0
        stats.elapsed_seconds = (
            setup_seconds
            + stats.stall_seconds
            + float(sum(record_cpu))
            + stats.demand_seconds
        )
        return stats
    loop = EventLoop()
    pool = ChannelPool(loop, threads)
    process = RestorePipelineProcess(
        loop,
        pool,
        read_seconds,
        record_reads,
        record_cpu,
        demand_seconds=demand_seconds,
        max_parallel=threads,
    )
    process.start()
    loop.run()
    stats = process.stats
    stats.elapsed_seconds += setup_seconds
    stats.channel_busy_seconds = list(pool.busy_seconds)
    return stats


@dataclass
class UploadStats:
    """Outcome of one batch of overlapped staging uploads."""

    elapsed_seconds: float = 0.0
    #: Busy seconds per upload channel.
    channel_busy_seconds: list[float] = field(default_factory=list)

    @property
    def serial_seconds(self) -> float:
        """Duration the same uploads would take on a single channel."""
        return sum(self.channel_busy_seconds)


def simulate_upload_channels(
    upload_seconds: Sequence[float], channels: int
) -> UploadStats:
    """Overlap independent uploads over ``channels`` background channels.

    The browse cache's write-back flush stages each dirty block as one
    OSS put; the endpoint charges those puts serially, so this schedule
    converts the measured per-block durations into the wall time a pool
    of concurrent upload channels would take (greedy FIFO assignment,
    the same discipline as the ingest flush stage).
    """
    if channels < 1:
        raise ValueError(f"need at least one upload channel, got {channels}")
    stats = UploadStats()
    if not upload_seconds:
        stats.channel_busy_seconds = [0.0] * channels
        return stats
    loop = EventLoop()
    pool = ChannelPool(loop, channels)
    for duration in upload_seconds:
        if duration < 0:
            raise ValueError(f"upload duration cannot be negative: {duration}")

        def start(channel_id: int, duration: float = duration) -> None:
            pool.occupy(channel_id, duration)
            loop.schedule(duration, lambda cid=channel_id: pool.release(cid))

        pool.acquire(start)
    stats.elapsed_seconds = loop.run()
    stats.channel_busy_seconds = list(pool.busy_seconds)
    return stats
