"""A minimal discrete-event simulation kernel.

The scalability experiments mostly use closed-form arithmetic
(:mod:`repro.bench.scaling`); this kernel exists to *cross-validate* that
arithmetic with an explicit event-driven schedule — jobs arriving at a
cluster, queueing for node slots, sharing NIC bandwidth — and to support
scenarios the closed forms cannot express (heterogeneous job sizes,
staggered arrivals).

The kernel is deliberately tiny: a time-ordered event queue and a
``SlotResource`` with FIFO queueing.  Processes are plain callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)


class EventLoop:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: {delay}")
        heapq.heappush(
            self._queue, _Event(self.now + delay, next(self._sequence), action)
        )

    def run(self) -> float:
        """Drain the queue; returns the completion time."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self.now = event.time
            event.action()
        return self.now


class SlotResource:
    """A counted resource (e.g. job slots on one node) with FIFO queueing."""

    def __init__(self, loop: EventLoop, slots: int) -> None:
        if slots < 1:
            raise ValueError(f"need at least one slot, got {slots}")
        self._loop = loop
        self._free = slots
        self._waiting: list[Callable[[], None]] = []
        self.capacity = slots

    def acquire(self, on_granted: Callable[[], None]) -> None:
        """Request one slot; ``on_granted`` fires when it is available."""
        if self._free > 0:
            self._free -= 1
            self._loop.schedule(0.0, on_granted)
        else:
            self._waiting.append(on_granted)

    def release(self) -> None:
        """Return one slot, handing it to the next waiter if any."""
        if self._waiting:
            self._loop.schedule(0.0, self._waiting.pop(0))
        else:
            self._free += 1
            if self._free > self.capacity:
                raise RuntimeError("released more slots than acquired")

    @property
    def busy(self) -> int:
        """Slots currently held."""
        return self.capacity - self._free

    @property
    def queued(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiting)
