"""A monotonic virtual clock.

The clock only moves when a component explicitly charges time to it, which
keeps simulated results independent of host speed and fully deterministic.
"""

from __future__ import annotations


class SimClock:
    """Monotonic virtual time in seconds.

    >>> clock = SimClock()
    >>> clock.advance(1.5)
    >>> clock.now
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start in the past: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward; negative durations are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Jump forward to ``timestamp``; jumping backwards is rejected."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
