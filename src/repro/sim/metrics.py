"""Accounting primitives: time breakdowns and operation counters.

The paper's Fig 2 and Fig 5(d) report *where* CPU time goes during
deduplication (chunking / fingerprinting / index querying / other) next to
network time.  :class:`TimeBreakdown` accumulates exactly those categories;
:class:`Counters` tracks the discrete events (chunks, duplicates, container
reads, OSS requests) that the space and read-amplification experiments need.
:class:`FaultStats` and :class:`RetryStats` account for the fault-injection
and retry layers, so benchmarks can report availability next to throughput.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

#: CPU time categories used by the paper's breakdown figures.
CPU_CATEGORIES = ("chunking", "fingerprinting", "index_query", "other")
#: Network time categories.
NETWORK_CATEGORIES = ("upload", "download")


@dataclass
class TimeBreakdown:
    """Virtual seconds charged per category for one job or job stream."""

    chunking: float = 0.0
    fingerprinting: float = 0.0
    index_query: float = 0.0
    other: float = 0.0
    upload: float = 0.0
    download: float = 0.0

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` to ``category``; unknown categories are errors."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if category not in CPU_CATEGORIES + NETWORK_CATEGORIES:
            raise ValueError(f"unknown time category: {category!r}")
        setattr(self, category, getattr(self, category) + seconds)

    def cpu_seconds(self) -> float:
        """Total CPU time across all CPU categories."""
        return sum(getattr(self, name) for name in CPU_CATEGORIES)

    def network_seconds(self) -> float:
        """Total network time across both directions."""
        return sum(getattr(self, name) for name in NETWORK_CATEGORIES)

    def elapsed_pipelined(self) -> float:
        """Job duration when CPU and network stages fully overlap.

        Deduplication pipelines chunking/fingerprinting against container
        uploads and recipe prefetches; the link is full duplex, so the
        slowest of CPU, upload and download determines throughput (this is
        the structure behind the paper's Fig 2 bottleneck flip).
        """
        return max(self.cpu_seconds(), self.upload, self.download)

    def elapsed_serialized(self) -> float:
        """Job duration when every stage waits for the previous one."""
        return self.cpu_seconds() + self.network_seconds()

    def bottleneck(self) -> str:
        """``"cpu"`` or ``"network"``, whichever dominates the pipeline."""
        return "cpu" if self.cpu_seconds() >= max(self.upload, self.download) else "network"

    def cpu_shares(self) -> dict[str, float]:
        """Fraction of CPU time per category (all zero if no CPU time)."""
        total = self.cpu_seconds()
        if total == 0:
            return {name: 0.0 for name in CPU_CATEGORIES}
        return {name: getattr(self, name) / total for name in CPU_CATEGORIES}

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Return a new breakdown that is the sum of ``self`` and ``other``."""
        merged = TimeBreakdown()
        for name in CPU_CATEGORIES + NETWORK_CATEGORIES:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged


@dataclass
class FaultStats:
    """Faults injected by one :class:`~repro.oss.faults.FaultPolicy`."""

    faults_injected: int = 0
    transient_errors: int = 0
    torn_writes: int = 0
    corrupt_reads: int = 0
    latency_spikes: int = 0
    killed_requests: int = 0
    crash_faults: int = 0
    latency_injected_seconds: float = 0.0

    def snapshot(self) -> "FaultStats":
        """An independent copy, for before/after diffing in experiments."""
        return FaultStats(**vars(self))

    def diff(self, earlier: "FaultStats") -> "FaultStats":
        """Faults injected since ``earlier`` was snapshotted."""
        return FaultStats(
            **{name: getattr(self, name) - getattr(earlier, name) for name in vars(self)}
        )


@dataclass
class RetryStats:
    """Work done by one retry layer on behalf of its callers."""

    operations: int = 0
    retries: int = 0
    recovered_operations: int = 0
    exhausted_operations: int = 0
    #: Operations failed early because the shared retry budget was dry
    #: (counted inside ``exhausted_operations`` as well).
    budget_denied: int = 0
    backoff_seconds: float = 0.0

    def snapshot(self) -> "RetryStats":
        """An independent copy, for before/after diffing in experiments."""
        return RetryStats(**vars(self))

    def diff(self, earlier: "RetryStats") -> "RetryStats":
        """Retry work accrued since ``earlier`` was snapshotted."""
        return RetryStats(
            **{name: getattr(self, name) - getattr(earlier, name) for name in vars(self)}
        )


@dataclass
class BlockCacheStats:
    """Behaviour of one L-node browse block cache.

    The browse bench reports hit ratios next to latencies, so the cache
    counts every event class that explains a latency sample: hits (and
    which tier served them), misses that went to OSS, readahead blocks
    pulled in alongside a miss, evictions/demotions under pressure, and
    the dirty-block write-back traffic.
    """

    #: Block lookups served from the memory tier.
    memory_hits: int = 0
    #: Block lookups served from the disk tier (promoted back to memory).
    disk_hits: int = 0
    #: Block lookups that had to be fetched from OSS.
    misses: int = 0
    #: Blocks inserted by readahead rather than a direct request.
    readahead_blocks: int = 0
    #: Clean blocks demoted memory → disk under memory pressure.
    demotions: int = 0
    #: Clean blocks dropped entirely (evicted from the disk tier, or from
    #: memory when the disk tier is full).  Dirty blocks never count here:
    #: eviction refuses to drop un-uploaded data.
    evictions: int = 0
    #: Dirty blocks uploaded by a write-back flush.
    dirty_writebacks: int = 0
    #: Bytes those write-backs staged to OSS.
    writeback_bytes: int = 0

    @property
    def hits(self) -> int:
        """Lookups served without touching OSS (either tier)."""
        return self.memory_hits + self.disk_hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def snapshot(self) -> "BlockCacheStats":
        """An independent copy, for before/after diffing in experiments."""
        return BlockCacheStats(**vars(self))

    def diff(self, earlier: "BlockCacheStats") -> "BlockCacheStats":
        """Cache activity since ``earlier`` was snapshotted."""
        return BlockCacheStats(
            **{name: getattr(self, name) - getattr(earlier, name) for name in vars(self)}
        )

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot (counters plus the derived hit ratio)."""
        out: dict[str, float] = dict(vars(self))
        out["hit_ratio"] = self.hit_ratio
        return out


@dataclass
class LatencyStats:
    """Latency samples with percentile and SLO-attainment views.

    The service control plane records one sample per completed job
    (arrival to completion, queueing included) and reports p50/p99 next
    to the fraction of jobs that met their SLO threshold — the
    service-level mirror of the per-job throughput numbers.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative samples are errors)."""
        if seconds < 0:
            raise ValueError(f"latency cannot be negative: {seconds}")
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile ``q`` in [0, 100]; 0.0 with no samples."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of [0, 100]: {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median latency."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th-percentile latency."""
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        """Mean latency (0.0 with no samples)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def attainment(self, threshold_seconds: float) -> float:
        """Fraction of samples at or under ``threshold_seconds``.

        1.0 with no samples: an SLO over zero jobs is vacuously met.
        """
        if not self.samples:
            return 1.0
        met = sum(1 for s in self.samples if s <= threshold_seconds)
        return met / len(self.samples)

    def merged_with(self, other: "LatencyStats") -> "LatencyStats":
        """A new LatencyStats holding both sample sets."""
        return LatencyStats(samples=self.samples + other.samples)


@dataclass
class Counters:
    """Discrete event counters for one job or subsystem."""

    counts: Counter = field(default_factory=Counter)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (negative rejected)."""
        if amount < 0:
            raise ValueError(f"cannot count negative events: {amount}")
        self.counts[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counts[name]

    def merged_with(self, other: "Counters") -> "Counters":
        """Return a new Counters holding the element-wise sum."""
        merged = Counters()
        merged.counts = self.counts + other.counts
        return merged

    def as_dict(self) -> dict[str, int]:
        """A plain-dict snapshot, convenient for reporting."""
        return dict(self.counts)
