"""Virtual-time simulation substrate.

The paper measures throughput on a seven-node Alibaba ECS cluster backed by
OSS.  We do not have that hardware, so every performance experiment in this
reproduction runs on a *virtual clock*: algorithms process real bytes, but
time is charged through a calibrated :class:`~repro.sim.cost_model.CostModel`
instead of being measured on the wall.  This keeps results deterministic and
makes the bottleneck structure (CPU vs network, Fig 2 of the paper) explicit
rather than an artefact of Python interpreter speed.
"""

from repro.sim.clock import SimClock
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown
from repro.sim.parallel import (
    parallel_channel_time,
    pipelined_time,
    serialized_time,
)

__all__ = [
    "SimClock",
    "CostModel",
    "Counters",
    "TimeBreakdown",
    "parallel_channel_time",
    "pipelined_time",
    "serialized_time",
]
