"""Fingerprinting, sampling and similarity detection."""

from repro.fingerprint.hashing import FP_SIZE, fingerprint
from repro.fingerprint.sampling import is_sampled, sample_fingerprints
from repro.fingerprint.similarity import jaccard_resemblance, representative_fingerprints

__all__ = [
    "FP_SIZE",
    "fingerprint",
    "is_sampled",
    "sample_fingerprints",
    "jaccard_resemblance",
    "representative_fingerprints",
]
