"""Similarity detection per Broder's theorem.

"According to Broder's theorem, the similarity of the full set is highly
dependent on the similarity of two randomly sampled subsets.  A file can be
considered as a set of fingerprints, so if two files share some
representative fingerprints, they are considered similar" (Section III-B).
The representative fingerprints here are the k minimum fingerprints
(min-hash), the classic unbiased resemblance sketch.
"""

from __future__ import annotations

from collections.abc import Iterable


def representative_fingerprints(fps: Iterable[bytes], count: int = 8) -> list[bytes]:
    """The ``count`` smallest distinct fingerprints — a min-hash sketch."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return sorted(set(fps))[:count]


def jaccard_resemblance(left: Iterable[bytes], right: Iterable[bytes]) -> float:
    """Jaccard resemblance |L ∩ R| / |L ∪ R| of two fingerprint sets."""
    left_set, right_set = set(left), set(right)
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def sketch_overlap(left: Iterable[bytes], right: Iterable[bytes]) -> int:
    """Number of shared representative fingerprints (the similarity vote)."""
    return len(set(left) & set(right))
