"""Chunk fingerprints.

The paper fingerprints chunks with a cryptographically secure hash (SHA-1
or SHA-256) and treats equal fingerprints as equal content.  We default to
SHA-1, whose 20-byte digests also match the paper's recipe layout; BLAKE2b
(truncated to the same 20 bytes, so every on-disk layout is unchanged) is
available as a repository-pinned alternative via
``SlimStoreConfig.fingerprint_algo``.

Both algorithms release the GIL inside hashlib for buffers past ~2 KiB,
which is what lets the parallel execution engine fingerprint chunk batches
on a thread pool (see :mod:`repro.exec`).
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Size in bytes of a fingerprint digest (identical for every algorithm,
#: so recipes, container metas and index entries never change layout).
FP_SIZE = 20

#: Supported fingerprint algorithms, in preference order.
FINGERPRINT_ALGORITHMS = ("sha1", "blake2b")

#: A fingerprint function: chunk payload -> FP_SIZE-byte digest.
Fingerprinter = Callable[[bytes | memoryview], bytes]


def fingerprint(data: bytes | memoryview) -> bytes:
    """SHA-1 digest of ``data`` — the identity of a chunk."""
    return hashlib.sha1(data).digest()


def fingerprint_hex(data: bytes | memoryview) -> str:
    """Hex form of :func:`fingerprint`, for logs and object keys."""
    return hashlib.sha1(data).hexdigest()


def _blake2b_fingerprint(data: bytes | memoryview) -> bytes:
    """BLAKE2b digest truncated to the recipe layout's 20 bytes."""
    return hashlib.blake2b(data, digest_size=FP_SIZE).digest()


def make_fingerprinter(algo: str = "sha1") -> Fingerprinter:
    """The fingerprint function for ``algo`` ("sha1" or "blake2b").

    Every returned function emits :data:`FP_SIZE`-byte digests, so the
    choice never leaks into storage formats — but digests from different
    algorithms never collide meaningfully, which is why the CLI pins the
    algorithm per repository and refuses mismatched attaches.
    """
    if algo == "sha1":
        return fingerprint
    if algo == "blake2b":
        return _blake2b_fingerprint
    raise ValueError(
        f"unknown fingerprint algorithm: {algo!r} "
        f"(choose from {list(FINGERPRINT_ALGORITHMS)})"
    )
