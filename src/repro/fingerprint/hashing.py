"""Chunk fingerprints.

The paper fingerprints chunks with a cryptographically secure hash (SHA-1
or SHA-256) and treats equal fingerprints as equal content.  We default to
SHA-1, whose 20-byte digests also match the paper's recipe layout.
"""

from __future__ import annotations

import hashlib

#: Size in bytes of a fingerprint digest.
FP_SIZE = 20


def fingerprint(data: bytes | memoryview) -> bytes:
    """SHA-1 digest of ``data`` — the identity of a chunk."""
    return hashlib.sha1(data).digest()


def fingerprint_hex(data: bytes | memoryview) -> str:
    """Hex form of :func:`fingerprint`, for logs and object keys."""
    return hashlib.sha1(data).hexdigest()
