"""mod-R fingerprint sampling.

The paper uses "the straightforward random sampling method adopted in many
deduplication works, which selects the fingerprints that mod R = 0 in a
segment, where R is an adjustable parameter to control the sampling ratio"
(Section IV-A).  Because fingerprints are uniform hashes, taking the first
eight bytes modulo R yields an unbiased 1/R sample that is identical across
backups — the property that makes similar-segment matching work.
"""

from __future__ import annotations

from collections.abc import Iterable


def is_sampled(fp: bytes, ratio: int) -> bool:
    """True if ``fp`` falls into the 1-in-``ratio`` deterministic sample."""
    if ratio < 1:
        raise ValueError(f"sampling ratio must be >= 1, got {ratio}")
    if ratio == 1:
        return True
    return int.from_bytes(fp[:8], "big") % ratio == 0


def sample_fingerprints(fps: Iterable[bytes], ratio: int) -> list[bytes]:
    """The sampled subset of ``fps``, preserving order."""
    return [fp for fp in fps if is_sampled(fp, ratio)]
