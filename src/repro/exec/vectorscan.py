"""Log-doubling vectorised CDC boundary scans.

The serial chunkers evaluate every window with a per-byte python loop over
numpy columns: WINDOW (32 or 48) shifted adds per buffer.  That is O(W·n)
work with W python-level iterations.  This module computes the same rolling
hashes with O(log W) whole-buffer numpy passes via *log doubling*:

  - build windowed hashes for power-of-two spans by combining a span with
    the adjacent span of equal width (``W_2k[j] = combine(W_k[j], W_k[j+k],
    k)``), doubling ``k`` each pass;
  - fold the binary decomposition of WINDOW (e.g. 48 = 32 + 16) the same
    way, widest span first.

For gear the combine is shift-and-add in uint32 (a 32-bit hash wraps the
same way the serial uint64-masked loop does); for rabin it is
multiply-and-add in uint64, where the uint64 wraparound *is* the mod-2^64
ring of the serial polynomial.  Both produce bit-identical hashes to the
serial loops, verified by tests/exec/test_vectorscan.py.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chunking import fastcdc, gear, rabin
from repro.chunking.base import Chunker

_GEAR_TABLE32 = gear.GEAR_TABLE.astype(np.uint32)

#: rabin PRIME^span mod 2^64 for every power-of-two span + the fold spans.
_RABIN_POWERS: dict[int, np.uint64] = {}


def _rabin_power(span: int) -> np.uint64:
    power = _RABIN_POWERS.get(span)
    if power is None:
        power = np.uint64(pow(int(rabin.PRIME), span, 1 << 64))
        _RABIN_POWERS[span] = power
    return power


def _windowed(
    values: np.ndarray,
    window: int,
    combine: Callable[[np.ndarray, np.ndarray, int], np.ndarray],
) -> np.ndarray:
    """Hashes of every ``window``-wide span of ``values`` via log doubling.

    ``combine(left, right, span)`` must merge a span's hash with the hash
    of the ``span``-wide run immediately to its right.  Returns one hash
    per window position: entry ``j`` covers ``values[j : j + window]``.
    """
    n = len(values)
    if n < window:
        return values[:0]
    pot = {1: values}
    k = 1
    acc = values
    while k * 2 <= window:
        m = n - 2 * k + 1
        acc = combine(acc[:m], acc[k : k + m], k)
        k *= 2
        pot[k] = acc
    spans = sorted((b for b in pot if window & b), reverse=True)
    result = pot[spans[0]]
    covered = spans[0]
    for b in spans[1:]:
        m = n - covered - b + 1
        result = combine(result[:m], pot[b][covered : covered + m], b)
        covered += b
    return result


def _gear_combine(left: np.ndarray, right: np.ndarray, span: int) -> np.ndarray:
    return (left << np.uint32(span)) + right


def _rabin_combine(left: np.ndarray, right: np.ndarray, span: int) -> np.ndarray:
    return left * _rabin_power(span) + right


def gear_hashes(data: bytes | memoryview) -> np.ndarray:
    """uint32 gear hash per window position; equals the serial scan mod 2^32."""
    values = _GEAR_TABLE32[np.frombuffer(data, dtype=np.uint8)]
    with np.errstate(over="ignore"):
        return _windowed(values, gear.WINDOW, _gear_combine)


def rabin_hashes(data: bytes | memoryview) -> np.ndarray:
    """uint64 rabin polynomial hash per window position, bit-exact vs serial."""
    values = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
    with np.errstate(over="ignore"):
        return _windowed(values, rabin.WINDOW, _rabin_combine)


def scan_window(chunker: Chunker) -> int | None:
    """The chunker's window width, or None if it has no vectorised scan."""
    if chunker.name in ("gear", "fastcdc"):
        return gear.WINDOW
    if chunker.name == "rabin":
        return rabin.WINDOW
    return None


def slab_scan(
    chunker: Chunker, buf: bytes | memoryview
) -> tuple[np.ndarray, np.ndarray | None]:
    """Cut positions within a slab, *without* the rabin length quirk.

    Evaluates every full window the slab holds; callers slabbing a larger
    buffer apply length rules (and offset mapping) at the full-buffer
    level.  Positions are slab-local stream offsets (window end), int64
    ascending.
    """
    name = chunker.name
    if name == "gear":
        hashes = gear_hashes(buf)
        mask = np.uint32(chunker.cut_mask)
        hits = np.nonzero((hashes & mask) == 0)[0]
        return hits.astype(np.int64) + gear.WINDOW, None
    if name == "fastcdc":
        hashes = gear_hashes(buf)
        permissive_mask = np.uint32(chunker.permissive_mask)
        strict_mask = np.uint32(chunker.strict_mask)
        permissive = np.nonzero((hashes & permissive_mask) == 0)[0]
        strict = np.nonzero((hashes & strict_mask) == 0)[0]
        return (
            permissive.astype(np.int64) + fastcdc.WINDOW,
            strict.astype(np.int64) + fastcdc.WINDOW,
        )
    if name == "rabin":
        hashes = rabin_hashes(buf)
        mask = chunker.cut_mask
        hits = np.nonzero((hashes & mask) == mask)[0]
        return hits.astype(np.int64) + rabin.WINDOW, None
    raise ValueError(f"no vectorised scan for chunker {name!r}")


def scan_positions(
    chunker: Chunker, data: bytes | memoryview
) -> tuple[np.ndarray, np.ndarray | None] | None:
    """(permissive, strict) cut positions for ``data``, or None if the
    chunker has no vectorised scan (fixed, unknown).

    Positions are stream offsets (window end), int64 ascending — exactly
    what the serial ``boundaries`` feeds to ``BoundarySet``.  The rabin
    length quirk is preserved: the serial scan returns no positions for
    ``len(data) <= WINDOW`` even though a 48-byte buffer holds one window.
    """
    if scan_window(chunker) is None:
        return None
    if chunker.name == "rabin" and len(data) <= rabin.WINDOW:
        return np.empty(0, dtype=np.int64), None
    return slab_scan(chunker, data)
