"""Wall-clock parallel execution engine.

Everything else in the reproduction runs single-threaded under virtual
time; this package adds *measured* speed: a log-doubling vectorised CDC
boundary scan (:mod:`repro.exec.vectorscan`), a :class:`ParallelExecutor`
fanning chunk+fingerprint work across a thread or process pool
(:mod:`repro.exec.engine`), and a bounded IO thread pool for concurrent
OSS ranged reads and container flushes (:mod:`repro.exec.iopool`).

All of it is behind ``SlimStoreConfig.workers`` — ``workers=0`` keeps
today's serial path, and every parallel mode is bucket-for-bucket
byte-identical to serial (see docs/PARALLELISM.md).
"""

from repro.exec.engine import ParallelExecutor
from repro.exec.iopool import IOPool
from repro.exec.vectorscan import scan_positions

__all__ = ["IOPool", "ParallelExecutor", "scan_positions"]
