"""Bounded thread pool for OSS IO.

Filesystem-backend reads and container PUTs are byte-shuffling syscalls
that release the GIL, so a small thread pool overlaps them for real
wall-clock wins.  The pool is lazy (no threads until first submit) and
bounded — submissions past the bound queue rather than spawning.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable


class IOPool:
    """A lazily-started, bounded worker pool for storage IO."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"IOPool needs at least one worker: {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-io"
                )
            return self._pool

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self._ensure().submit(fn, *args, **kwargs)

    def map(self, fn: Callable[..., Any], iterable) -> list[Any]:
        """Apply ``fn`` across ``iterable`` concurrently, preserving order."""
        futures = [self.submit(fn, item) for item in iterable]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "IOPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
