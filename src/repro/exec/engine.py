"""ParallelExecutor: chunk + fingerprint a backup stream with real workers.

The executor owns two pools:

  - a *compute* pool (threads by default, fork processes on request) that
    runs the vectorised boundary scan over buffer slabs and fingerprints
    chunk batches — numpy and hashlib both release the GIL, so threads
    already scale, and processes cover pure-python paths;
  - an *IO* pool (:class:`repro.exec.iopool.IOPool`) that the OSS layer
    and the container flusher borrow for concurrent ranged reads and
    background PUTs.

Everything here is deterministic: slabs partition the window-index range,
positions map back by adding the slab origin, and the concatenation of
ascending slab outputs is exactly the serial scan's output.  Fingerprints
are pure functions of chunk payloads.  Parallel runs are therefore
byte-identical to serial — the property the differential parity suite
enforces.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import lru_cache

import numpy as np

from repro.chunking.base import BoundarySet, Chunker, ChunkerParams, make_chunker
from repro.exec import vectorscan
from repro.exec.iopool import IOPool
from repro.fingerprint.hashing import make_fingerprinter

#: Minimum slab width (in window positions) worth shipping to a worker.
_MIN_SLAB = 1 << 20
#: Target payload bytes per fingerprint batch task.
_FP_BATCH_BYTES = 1 << 20
#: Maximum chunk count per fingerprint batch task.
_FP_BATCH_CHUNKS = 256

EXEC_MODES = ("thread", "process")


@lru_cache(maxsize=8)
def _cached_chunker(name: str, min_size: int, avg_size: int, max_size: int) -> Chunker:
    """Rebuild a chunker in a worker process (or reuse one in-process)."""
    return make_chunker(name, ChunkerParams(min_size, avg_size, max_size))


def _scan_task(
    name: str, params: tuple[int, int, int], buf: bytes | memoryview
) -> tuple[np.ndarray, np.ndarray | None]:
    return vectorscan.slab_scan(_cached_chunker(name, *params), buf)


def _fp_task(
    algo: str, buf: bytes | memoryview, ranges: list[tuple[int, int]], base: int
) -> list[bytes]:
    fingerprinter = make_fingerprinter(algo)
    view = memoryview(buf)
    return [fingerprinter(view[start - base : end - base]) for start, end in ranges]


class ParallelExecutor:
    """Fans CDC scanning and fingerprinting across a worker pool.

    ``workers=0`` means inactive: callers must keep their serial path.
    ``mode`` picks the compute pool flavour — "thread" (default; numpy and
    hashlib release the GIL) or "process" (fork workers for pure-python
    stages).  The IO pool is always threads: it exists to overlap
    GIL-releasing syscalls, and OSS handles don't cross processes.
    """

    def __init__(
        self, workers: int = 0, mode: str = "thread", slab_bytes: int = 4 << 20
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0: {workers}")
        if mode not in EXEC_MODES:
            raise ValueError(f"exec mode must be one of {EXEC_MODES}: {mode!r}")
        self.workers = workers
        self.mode = mode
        self.slab_bytes = max(slab_bytes, _MIN_SLAB)
        self._compute: Executor | None = None
        self._io_pool: IOPool | None = None

    @property
    def active(self) -> bool:
        return self.workers > 0

    @property
    def io_pool(self) -> IOPool | None:
        if not self.active:
            return None
        if self._io_pool is None:
            self._io_pool = IOPool(self.workers)
        return self._io_pool

    def _pool(self) -> Executor:
        if self._compute is None:
            if self.mode == "process":
                self._compute = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                )
            else:
                self._compute = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
        return self._compute

    def _ship(self, data: bytes | memoryview, start: int, stop: int):
        """A buffer slice a worker can consume (bytes copy for processes)."""
        view = memoryview(data)[start:stop]
        return bytes(view) if self.mode == "process" else view

    # ------------------------------------------------------------------
    # boundary scan

    def scan_boundaries(self, chunker: Chunker, data: bytes) -> BoundarySet:
        """The chunker's BoundarySet for ``data``, scanned slab-parallel.

        Identical to ``chunker.boundaries(data)`` for every chunker and
        buffer length, including the rabin short-buffer quirk.
        """
        window = vectorscan.scan_window(chunker)
        if not self.active or window is None:
            return chunker.boundaries(data)
        n = len(data)
        if n < window or (chunker.name == "rabin" and n <= window):
            return BoundarySet(n, chunker.params, np.empty(0, dtype=np.int64))
        window_count = n - window + 1
        slab = max(self.slab_bytes, -(-window_count // self.workers))
        if window_count <= slab:
            permissive, strict = vectorscan.slab_scan(chunker, data)
            return BoundarySet(n, chunker.params, permissive, strict)
        params = (
            chunker.params.min_size,
            chunker.params.avg_size,
            chunker.params.max_size,
        )
        futures = []
        origins = []
        for a in range(0, window_count, slab):
            b = min(a + slab, window_count)
            buf = self._ship(data, a, b + window - 1)
            futures.append(self._pool().submit(_scan_task, chunker.name, params, buf))
            origins.append(a)
        permissive_parts = []
        strict_parts = []
        has_strict = False
        for origin, future in zip(origins, futures):
            permissive, strict = future.result()
            permissive_parts.append(permissive + origin)
            if strict is not None:
                has_strict = True
                strict_parts.append(strict + origin)
        permissive = np.concatenate(permissive_parts)
        strict = np.concatenate(strict_parts) if has_strict else None
        return BoundarySet(n, chunker.params, permissive, strict)

    # ------------------------------------------------------------------
    # chunk + fingerprint

    def chunk_and_fingerprint(
        self, chunker: Chunker, data: bytes, algo: str = "sha1"
    ) -> tuple[BoundarySet, dict[tuple[int, int], bytes]]:
        """Boundary scan plus a fingerprint memo for the plain CDC walk.

        The memo maps ``(start, end)`` chunk spans — the spans the serial
        ``next_cut`` walk visits — to their digests, computed on the pool.
        Classification consults the memo and falls back to inline hashing
        for spans it invents itself (skip-chunking, superchunks), so the
        result is byte-identical either way.
        """
        boundary_set = self.scan_boundaries(chunker, data)
        if not self.active:
            return boundary_set, {}
        ranges: list[tuple[int, int]] = []
        start = 0
        length = len(data)
        while start < length:
            end = boundary_set.next_cut(start)
            ranges.append((start, end))
            start = end
        futures = []
        batches: list[list[tuple[int, int]]] = []
        batch: list[tuple[int, int]] = []
        batch_bytes = 0
        for span in ranges:
            batch.append(span)
            batch_bytes += span[1] - span[0]
            if batch_bytes >= _FP_BATCH_BYTES or len(batch) >= _FP_BATCH_CHUNKS:
                batches.append(batch)
                batch, batch_bytes = [], 0
        if batch:
            batches.append(batch)
        for spans in batches:
            base, stop = spans[0][0], spans[-1][1]
            buf = self._ship(data, base, stop)
            futures.append(self._pool().submit(_fp_task, algo, buf, spans, base))
        memo: dict[tuple[int, int], bytes] = {}
        for spans, future in zip(batches, futures):
            for span, digest in zip(spans, future.result()):
                memo[span] = digest
        return boundary_set, memo

    def close(self) -> None:
        if self._compute is not None:
            self._compute.shutdown(wait=True)
            self._compute = None
        if self._io_pool is not None:
            self._io_pool.close()
            self._io_pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
