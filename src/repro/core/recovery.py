"""Attach-time crash recovery: roll forward or discard interrupted jobs.

A SLIMSTORE node can die at any OSS write — mid-backup, mid-compaction,
mid-reap.  Because every multi-write job journals its intent first (see
:mod:`repro.core.journal`) and publishes through a single atomic commit
write, the repository is always in one of two states per job: *committed*
(the commit object landed; any missing follow-up writes are replayable)
or *invisible* (the commit never landed; the job's writes are garbage).
:class:`RecoveryManager` classifies every surviving intent into one of
those two buckets and then makes the storage physically match the
logical state: it re-runs idempotent maintenance, deletes orphaned
containers above the journaled watermarks, collects torn
``.data``/``.meta`` pairs, finishes interrupted tombstone reaps,
reconciles global-index entries left pointing at dead containers, and
finally truncates the journal.

``repro fsck`` uses :meth:`RecoveryManager.inspect` for a read-only
report of the same evidence, and ``--repair`` runs :meth:`run`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.browse import STAGE_PREFIX, stage_key_seq
from repro.core.gnode import CompactionReport
from repro.core.journal import Intent
from repro.core.snapshot import Snapshot
from repro.errors import VersionNotFoundError

if TYPE_CHECKING:
    from repro.core.system import SlimStore


@dataclass
class RecoveryReport:
    """What one attach-time recovery pass found and fixed."""

    #: (seq, kind) of every intent that was open when recovery started.
    open_intents: list[tuple[int, str]] = field(default_factory=list)
    #: Intents whose commit point had landed; side effects were replayed.
    rolled_forward: list[tuple[int, str]] = field(default_factory=list)
    #: Intents whose commit never landed; side effects were removed.
    discarded: list[tuple[int, str]] = field(default_factory=list)
    #: Orphaned containers (at/above a crashed job's watermark,
    #: unreferenced by any committed version) physically deleted.
    orphans_collected: list[int] = field(default_factory=list)
    orphan_bytes: int = 0
    #: Torn-pair remnants deleted (the surviving half was unreferenced).
    torn_collected: list[int] = field(default_factory=list)
    #: Torn pairs still referenced by a committed version: data loss the
    #: journal cannot explain — reported, never deleted.
    torn_damaged: list[int] = field(default_factory=list)
    #: Interrupted two-phase reaps completed.
    reaps_finished: list[int] = field(default_factory=list)
    #: Global-index entries re-pointed or removed.
    index_entries_fixed: int = 0
    #: Durability-tier objects (replicas/parity/manifests) nothing
    #: referenced after intents resolved — swept so no replica bytes leak.
    replica_orphans_collected: list[str] = field(default_factory=list)
    #: Write-back staging objects (``browsecache/``) removed — both the
    #: staging of resolved ``cache_flush`` intents and stale debris no
    #: surviving intent explains.
    cache_staging_reaped: list[str] = field(default_factory=list)
    #: Journal entries dropped by the final truncate.
    journal_truncated: int = 0
    #: Per interrupted backup intent: ``(path, version, outcome)`` where
    #: outcome is ``"committed"`` (the catalog put landed before the
    #: crash, ``version`` is the committed version) or ``"discarded"``
    #: (``version`` is the in-flight version whose debris was removed).
    #: Lease takeover uses this to decide whether a dead node's job must
    #: re-run or merely be marked complete.
    backup_resolutions: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when recovery had nothing to do (modulo damage reports)."""
        return not (
            self.open_intents
            or self.orphans_collected
            or self.torn_collected
            or self.torn_damaged
            or self.reaps_finished
            or self.index_entries_fixed
            or self.replica_orphans_collected
            or self.cache_staging_reaped
        )


@dataclass
class FsckReport:
    """Read-only repository health check (``repro fsck``)."""

    open_intents: list[Intent] = field(default_factory=list)
    #: cid → surviving half ("data"/"meta") of quarantined torn pairs.
    torn_pairs: dict[int, str] = field(default_factory=dict)
    #: Tombstoned containers whose reap was interrupted mid-delete.
    partial_reaps: list[int] = field(default_factory=list)
    #: Containers inside their deletion grace window (informational).
    tombstoned: list[int] = field(default_factory=list)
    #: Live containers at/above an open intent's watermark that no
    #: committed version references (would be GC'd by ``--repair``).
    orphan_candidates: list[int] = field(default_factory=list)
    #: Global-index entries pointing at dead containers.  Informational:
    #: normal version collection leaves these behind on purpose (the
    #: index has no per-container fingerprint list) and ``deep_clean``
    #: prunes them, so they do not make the repository unclean.
    dangling_index_entries: int = 0
    #: Live containers the durability tier has no record for.
    #: Informational: the next backup's retier pass tiers them.
    durability_untiered: list[int] = field(default_factory=list)
    #: (cid, recorded class, policy class) where the recorded durability
    #: class lags the live refcount.  Informational: retier fixes it.
    durability_class_mismatches: list[tuple[int, str, str]] = field(
        default_factory=list
    )
    #: Replica copies or parity shards whose payload hash disagrees with
    #: the committed record — real divergence; ``--repair`` re-tiers.
    durability_divergent: list[tuple[int | None, str]] = field(default_factory=list)
    #: Write-back staging objects (``browsecache/``) no open
    #: ``cache_flush`` intent accounts for: dirty-cache debris from a
    #: crashed browse session; ``--repair`` reaps them.
    cache_debris: list[str] = field(default_factory=list)
    #: Open ``cache_flush`` intents (a browse session died mid-flush);
    #: counted inside ``open_intents`` as well, broken out so ``fsck``
    #: can say what kind of job was interrupted.
    stale_cache_intents: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the repository needs no repair."""
        return not (
            self.open_intents
            or self.torn_pairs
            or self.partial_reaps
            or self.orphan_candidates
            or self.durability_divergent
            or self.cache_debris
        )


class RecoveryManager:
    """Runs the per-intent-kind recovery state machine over one store."""

    def __init__(self, store: "SlimStore") -> None:
        self.store = store
        self.storage = store.storage
        self.containers = store.storage.containers
        self.journal = store.storage.journal
        self._catalog_dirty = False
        self._meta_cache: dict[int, object] = {}

    # --- read-only inspection (fsck) ---------------------------------------
    def inspect(self) -> FsckReport:
        """Report the repository's crash-consistency evidence, fix nothing."""
        intents = self.journal.open_intents()
        report = FsckReport(
            open_intents=intents,
            torn_pairs=dict(self.containers.torn_pairs),
            partial_reaps=sorted(self.containers.partial_reaps),
            tombstoned=self.containers.tombstoned_ids(),
            orphan_candidates=self._orphan_candidates(intents),
        )
        index = self.storage.global_index
        for _fp, cid in index.iter_items():
            if not self.containers.exists(cid) and not self.containers.is_tombstoned(cid):
                report.dangling_index_entries += 1
        durability = self.storage.durability
        if durability is not None:
            audit = durability.audit(self.store.catalog.refcounts())
            report.durability_untiered = audit.untiered
            report.durability_class_mismatches = audit.class_mismatches
            report.durability_divergent = audit.divergent_copies
        report.stale_cache_intents = [
            intent.seq for intent in intents if intent.kind == "cache_flush"
        ]
        open_flushes = set(report.stale_cache_intents)
        for key in sorted(
            self.storage.oss.peek_keys(self.containers._bucket, STAGE_PREFIX)
        ):
            seq = stage_key_seq(key)
            if seq is None or seq not in open_flushes:
                report.cache_debris.append(key)
        return report

    # --- repair ------------------------------------------------------------
    def run(self, intents: list[Intent] | None = None) -> RecoveryReport:
        """Resolve every open intent, GC the debris, truncate the journal."""
        if intents is None:
            intents = self.journal.open_intents()
        report = RecoveryReport(
            open_intents=[(intent.seq, intent.kind) for intent in intents]
        )
        handlers = {
            "rewrite": self._handle_rewrite,
            "reverse_dedup": self._handle_reverse_dedup,
            "compaction": self._handle_compaction,
            "backup": self._handle_backup,
            "snapshot": self._handle_snapshot,
            "delete_version": self._handle_delete_version,
            "delete_snapshot": self._handle_delete_snapshot,
            "durability": self._handle_durability,
            "cache_flush": self._handle_cache_flush,
        }
        # Rewrite intents repair a possibly-torn container *in place*
        # (new data object, old metadata) and every other handler —
        # re-running reverse dedup, walking a compaction back — reads
        # containers assuming data and metadata agree.  So rewrites are
        # resolved first regardless of sequence order.  ``cache_flush``
        # intents resolve *last*: a flush runs a nested ``backup`` job,
        # and its roll-forward/discard decision must observe the final
        # catalog state after that nested intent (and everything else)
        # has been resolved.  The remaining intents replay in the order
        # the crashed process opened them.
        for intent in sorted(
            intents, key=lambda i: (i.kind != "rewrite", i.kind == "cache_flush", i.seq)
        ):
            handler = handlers.get(intent.kind)
            if handler is None:
                # Unknown (future) intent kind: leave visible state alone,
                # count it as discarded so the truncate is explained.
                report.discarded.append((intent.seq, intent.kind))
                continue
            handler(intent, report)
        self._collect_orphans(intents, report)
        self._collect_torn(report)
        for cid in sorted(self.containers.partial_reaps):
            self.containers.finish_reap(cid)
            report.reaps_finished.append(cid)
        self._reconcile_index(report)
        if self.storage.durability is not None:
            # After every intent resolved and the watermark GC ran, any
            # durability object no committed record names is debris left
            # by the crash — sweeping it here is the "no orphaned replica
            # bytes" half of the durability tier's crash contract.
            report.replica_orphans_collected = self.storage.durability.collect_orphans()
        # Any write-back staging object still present is debris: every
        # resolved ``cache_flush`` intent reaps its own prefix, so what
        # survives belongs to no intent at all (e.g. a journal entry lost
        # some other way).  Staged blocks are never referenced by visible
        # state, so — like never-visible orphan containers — they take
        # the direct purge path rather than a tombstone grace.
        for key in sorted(
            self.storage.oss.peek_keys(self.containers._bucket, STAGE_PREFIX)
        ):
            self.storage.oss.delete_object(self.containers._bucket, key)
            report.cache_staging_reaped.append(key)
        report.journal_truncated = self.journal.truncate()
        if self._catalog_dirty:
            self.store._persist_catalog()
        return report

    # --- per-kind handlers ---------------------------------------------------
    def _handle_rewrite(self, intent: Intent, report: RecoveryReport) -> None:
        """In-place rewrite: the journaled SHA decides forward/backward."""
        payload = intent.payload
        cid = int(payload["container_id"])
        done = self.containers.complete_rewrite(
            cid,
            bytes.fromhex(payload["meta"]),
            str(payload["data_sha"]),
        )
        if done:
            durability = self.storage.durability
            if durability is not None and self.containers.exists(cid):
                # The rewrite hook runs inside the rewrite's intent
                # window, so a crash there may leave replicas/parity
                # carrying the pre-rewrite payload; re-running it is
                # idempotent once they already match.
                durability.on_payload_changed(cid, self.containers.read_data(cid))
            report.rolled_forward.append((intent.seq, intent.kind))
        else:
            report.discarded.append((intent.seq, intent.kind))

    def _handle_durability(self, intent: Intent, report: RecoveryReport) -> None:
        """Tier change: committed iff the record/stripe manifest landed."""
        durability = self.storage.durability
        if durability is None:
            # Policy disabled since the crash: the planned replica/parity
            # writes are debris no read path will ever consult.
            for key in intent.payload.get("planned", []):
                self.storage.oss.delete_object(self.containers._bucket, str(key))
            report.discarded.append((intent.seq, intent.kind))
            return
        outcome = durability.resolve_intent(intent.payload)
        if outcome == "rolled_forward":
            report.rolled_forward.append((intent.seq, intent.kind))
        else:
            report.discarded.append((intent.seq, intent.kind))

    def _handle_reverse_dedup(self, intent: Intent, report: RecoveryReport) -> None:
        """Reverse dedup is idempotent: simply re-run the whole pass.

        The pass re-points the index at the new copy before the old
        copy's deletion mark becomes durable, so every crash state is
        restorable and a re-run converges on the completed outcome.
        """
        cids = [
            int(cid)
            for cid in intent.payload.get("container_ids", [])
            if self.containers.exists(int(cid))
        ]
        if cids:
            self.store.gnode.reverse_dedup(cids)
        report.rolled_forward.append((intent.seq, intent.kind))

    def _handle_compaction(self, intent: Intent, report: RecoveryReport) -> None:
        """Compaction: committed iff the recipe references a new container."""
        payload = intent.payload
        moves_raw = payload.get("moves") or {}
        if not moves_raw:
            # Crash during phase 1: nothing shared was touched (old
            # containers intact, index untouched, recipe untouched).  The
            # half-built new containers fall to the watermark orphan GC.
            report.discarded.append((intent.seq, intent.kind))
            return
        path = str(payload["path"])
        version = int(payload["version"])
        sparse = [int(cid) for cid in payload.get("sparse", [])]
        new_cids = [int(cid) for cid in payload.get("new_cids", [])]
        moves = {bytes.fromhex(fp): int(cid) for fp, cid in moves_raw.items()}
        try:
            recipe = self.storage.recipes.get_recipe(path, version)
            refs = recipe.referenced_containers()
        except VersionNotFoundError:
            refs = set()
        if refs & set(new_cids):
            self._roll_compaction_forward(path, version, sparse, moves, refs)
            report.rolled_forward.append((intent.seq, intent.kind))
        else:
            report.index_entries_fixed += self._walk_index_back(sparse, moves)
            for cid in new_cids:
                if self.containers.exists(cid):
                    report.orphan_bytes += self.containers.container_size(cid)
                    self.containers.purge(cid)
                    report.orphans_collected.append(cid)
            report.discarded.append((intent.seq, intent.kind))

    def _roll_compaction_forward(
        self,
        path: str,
        version: int,
        sparse: list[int],
        moves: dict[bytes, int],
        refs: set[int],
    ) -> None:
        """Replay the post-commit cleanup from the journaled moves.

        The journal records *which* fingerprints moved but not which
        sparse container each came from, so the replay offers every moved
        fingerprint to every sparse container's metadata —
        ``mark_deleted`` is a no-op where the fingerprint is absent, and
        deleting a stray duplicate copy is safe because the global index
        already points at the durable new home.
        """
        planned = {cid: list(moves) for cid in sparse}
        self.store.gnode._compaction_cleanup(sparse, planned, {}, CompactionReport())
        self.store.catalog.update_references(path, version, refs)
        self.store.catalog.add_garbage(path, version, sparse)
        self._catalog_dirty = True

    def _walk_index_back(self, sparse: list[int], moves: dict[bytes, int]) -> int:
        """Re-point index entries from dead new containers to old copies.

        For a discarded compaction the old copies are still live (cleanup
        never ran), so each moved fingerprint walks back to the sparse
        container that still holds it; a copy that some earlier pass had
        marked deleted is revived in place (the bytes never left the
        payload).  A fingerprint with no surviving copy loses its entry.
        """
        index = self.storage.global_index
        fixed = 0
        for fp, new_cid in sorted(moves.items()):
            if index.lookup(fp) != new_cid:
                continue
            home = None
            for cid in sparse:
                if not self.containers.exists(cid):
                    continue
                meta = self._meta(cid)
                entry = meta.find(fp)
                if entry is not None and not entry.deleted:
                    home = cid
                    break
            if home is None:
                for cid in sparse:
                    if not self.containers.exists(cid):
                        continue
                    meta = self._meta(cid)
                    if meta.revive(fp):
                        self.containers.update_meta(meta)
                        home = cid
                        break
            if home is not None:
                index.assign(fp, home)
            else:
                index.remove(fp)
            fixed += 1
        return fixed

    def _handle_backup(self, intent: Intent, report: RecoveryReport) -> None:
        """Backup: committed iff the catalog (the commit object) lists it."""
        path = str(intent.payload["path"])
        committed = self.store.catalog.versions(path)
        next_version = (committed[-1] + 1) if committed else 0
        candidates = {next_version}
        latest = self.storage.similar_index.latest_version(path)
        if latest is not None and latest >= next_version:
            candidates.add(latest)
        removed = False
        for version in sorted(candidates):
            if version in committed:
                continue
            if self.storage.recipes.delete_recipe(path, version):
                removed = True
        latest = self.storage.similar_index.latest_version(path)
        if latest is not None and latest >= next_version:
            previous = committed[-1] if committed else None
            self.storage.similar_index.rollback_registration(path, latest, previous)
            removed = True
        if removed:
            report.discarded.append((intent.seq, intent.kind))
            report.backup_resolutions.append((path, next_version, "discarded"))
        else:
            # The catalog put landed and only the intent close is
            # missing: the version is fully committed.
            report.rolled_forward.append((intent.seq, intent.kind))
            report.backup_resolutions.append(
                (path, committed[-1] if committed else -1, "committed")
            )
        # Orphaned containers fall to the watermark GC.

    def _handle_cache_flush(self, intent: Intent, report: RecoveryReport) -> None:
        """Write-back flush: committed iff its version landed; else the
        staged blocks decide.

        Runs after every other intent — in particular after the flush's
        own nested ``backup`` intent discarded any half-written version —
        so the catalog check observes the final state:

        * the expected version is committed → only the staging cleanup
          was lost; reap it and roll forward;
        * ``staged=True`` and the staged blocks reassemble to the
          journaled SHA-256 → the session had acknowledged the flush's
          durability point; re-run the ingest from the staged bytes
          (roll the upload forward), then reap the staging;
        * anything else → the flush never reached its durability point;
          discard (reap whatever staging landed).  Either way the
          intent's staging prefix ends empty.
        """
        payload = intent.payload
        path = str(payload["path"])
        expected = int(payload["version"])
        bucket = self.containers._bucket
        prefix = f"{STAGE_PREFIX}{intent.seq:012d}/"
        keys = sorted(self.storage.oss.peek_keys(bucket, prefix))
        outcome = "discarded"
        if expected in self.store.catalog.versions(path):
            outcome = "rolled_forward"
        elif payload.get("staged"):
            data = self._rebuild_staged_file(payload, keys)
            if data is not None:
                self.store.backup(path, data)
                outcome = "rolled_forward"
        for key in keys:
            self.storage.oss.delete_object(bucket, key)
            report.cache_staging_reaped.append(key)
        if outcome == "rolled_forward":
            report.rolled_forward.append((intent.seq, intent.kind))
        else:
            report.discarded.append((intent.seq, intent.kind))

    def _rebuild_staged_file(self, payload: dict, keys: list[str]) -> bytes | None:
        """Reassemble a flushed file from its staged blocks, or None.

        Base content (when the base version still exists) is overlaid
        with every staged dirty block; the journaled SHA-256 is the
        arbiter — a torn staging upload or a vanished base version fails
        the check and the flush is discarded instead of publishing a
        corrupted version.
        """
        indices = {int(i) for i in payload.get("blocks", [])}
        block_bytes = int(payload["block_bytes"])
        size = int(payload["size"])
        staged: dict[int, bytes] = {}
        for key in keys:
            try:
                index = int(key.rsplit("/", 1)[1])
            except ValueError:
                continue
            staged[index] = self.storage.oss.get_object(self.containers._bucket, key)
        if indices != set(staged):
            return None
        data = bytearray(size)
        base_version = payload.get("base_version")
        path = str(payload["path"])
        if base_version is not None and int(base_version) in self.store.catalog.versions(
            path
        ):
            base = self.store.restore(path, int(base_version)).data
            cut = min(len(base), size)
            data[:cut] = base[:cut]
        for index, blob in sorted(staged.items()):
            lo = index * block_bytes
            if lo >= size:
                return None
            cut = min(size - lo, len(blob))
            data[lo : lo + cut] = blob[:cut]
        if hashlib.sha256(data).hexdigest() != str(payload.get("sha")):
            return None
        return bytes(data)

    def _handle_snapshot(self, intent: Intent, report: RecoveryReport) -> None:
        """Snapshot run: publish a partial manifest of committed members.

        Every member recorded in the intent committed individually before
        the journal update that recorded it, so the partial manifest is
        consistent; the member in flight at the crash is handled by its
        own ``backup`` intent.
        """
        snapshot_id = str(intent.payload["snapshot_id"])
        if snapshot_id in self.store.snapshots.list_ids():
            report.rolled_forward.append((intent.seq, intent.kind))
            return
        members = {
            str(path): int(version)
            for path, version in intent.payload.get("members", {}).items()
            if int(version) in self.store.catalog.versions(str(path))
        }
        if members:
            self.store.snapshots.put(Snapshot(snapshot_id, members))
            report.rolled_forward.append((intent.seq, intent.kind))
        else:
            report.discarded.append((intent.seq, intent.kind))

    def _handle_delete_version(self, intent: Intent, report: RecoveryReport) -> None:
        """Version delete: committed iff the catalog no longer lists it."""
        payload = intent.payload
        path = str(payload["path"])
        version = int(payload["version"])
        if version in self.store.catalog.versions(path):
            # The catalog republish (commit) never landed; the loaded
            # catalog still carries the version fully intact.
            report.discarded.append((intent.seq, intent.kind))
            return
        for cid in payload.get("collectable", []):
            cid = int(cid)
            if self.containers.exists(cid):
                self.containers.delete(cid)
        self.storage.recipes.delete_recipe(path, version)
        if payload.get("forget_similar"):
            if self.storage.similar_index.latest_version(path) == version:
                self.storage.similar_index.forget_version(path, version)
        report.rolled_forward.append((intent.seq, intent.kind))

    def _handle_delete_snapshot(self, intent: Intent, report: RecoveryReport) -> None:
        """Snapshot delete: committed iff the manifest is already gone."""
        snapshot_id = str(intent.payload["snapshot_id"])
        if snapshot_id in self.store.snapshots.list_ids():
            for path, version in intent.payload.get("members", []):
                live = self.store.catalog.versions(str(path))
                if live and live[0] == int(version):
                    self.store.delete_version(str(path), int(version))
            self.store.snapshots.delete(snapshot_id)
        report.rolled_forward.append((intent.seq, intent.kind))

    # --- debris collection -----------------------------------------------------
    def _orphan_candidates(self, intents: list[Intent]) -> list[int]:
        """Live containers above a crashed job's watermark, unreferenced."""
        watermarks = [
            int(intent.payload["watermark"])
            for intent in intents
            if intent.kind in ("backup", "compaction")
            and "watermark" in intent.payload
        ]
        if not watermarks:
            return []
        floor = min(watermarks)
        referenced = self.store.catalog.live_container_ids()
        return [
            cid
            for cid in self.containers.container_ids()
            if cid >= floor and cid not in referenced
        ]

    def _collect_orphans(self, intents: list[Intent], report: RecoveryReport) -> None:
        for cid in self._orphan_candidates(intents):
            report.orphan_bytes += self.containers.container_size(cid)
            self.containers.purge(cid)
            report.orphans_collected.append(cid)

    def _collect_torn(self, report: RecoveryReport) -> None:
        """Collect torn-pair remnants; report (never delete) damage.

        A ``.data``-only pair is an interrupted container write — the
        meta never landed, so no committed recipe can name it — unless
        the catalog references it, which means the meta object was lost
        some other way: that is damage, not debris.  A ``.meta``-only
        pair is an interrupted hard delete (data goes first); it is
        debris unless it still carries live entries *and* a committed
        version references it.
        """
        referenced = self.store.catalog.live_container_ids()
        for cid, half in sorted(self.containers.torn_pairs.items()):
            if cid in referenced:
                if half == "meta":
                    meta = self.containers.read_meta(cid)
                    if not meta.live_lookup_entries():
                        self.containers.purge(cid)
                        report.torn_collected.append(cid)
                        continue
                report.torn_damaged.append(cid)
                continue
            self.containers.purge(cid)
            report.torn_collected.append(cid)

    def _reconcile_index(self, report: RecoveryReport) -> None:
        """Drop index entries left pointing at containers recovery removed."""
        index = self.storage.global_index
        for fp, cid in list(index.iter_items()):
            if self.containers.exists(cid) or self.containers.is_tombstoned(cid):
                continue
            index.remove(fp)
            report.index_entries_fixed += 1

    def _meta(self, cid: int):
        meta = self._meta_cache.get(cid)
        if meta is None:
            meta = self.containers.read_meta(cid)
            self._meta_cache[cid] = meta
        return meta
