"""The overload-robust multi-tenant control plane.

:class:`~repro.core.tenancy.BackupService` gives each tenant an isolated
SLIMSTORE deployment; this module grows it into the *service* the paper
describes — many tenants submitting jobs against a shared elastic L-node
fleet — and makes that service degrade gracefully instead of collapsing
under load or losing work to node death:

* **Admission control with explicit backpressure** — per-tenant and
  global queue bounds; a job the service cannot queue is rejected with a
  concrete ``retry_after``, never silently parked on an unbounded queue.
* **Weighted fair-share scheduling** — start-time fair queueing over
  per-tenant FIFO queues: each job gets a virtual finish tag
  ``start + cost / weight`` and free L-node slots always go to the
  smallest tag, so one tenant's burst cannot starve the others.
* **Circuit breaker + load shedding** — consecutive infrastructure
  failures (retry-exhausted OSS operations, degraded backups) open the
  breaker; while open, new work is shed at admission with the cooldown
  as its retry-after, and one half-open probe decides whether to close.
* **Queue-depth-driven autoscaling** — deep queues grow the fleet (after
  a warm-up delay), idle fleets shrink it, bounded by min/max nodes and
  a cooldown so the fleet does not flap.
* **Lease-based job recovery** — every dispatched job holds a lease;
  node death leaves the lease to expire, after which the takeover path
  re-attaches the tenant (running the
  :class:`~repro.core.recovery.RecoveryManager` over the dead node's
  intents) and either marks the job complete (its commit landed before
  the crash) or re-queues it at the front of its tenant's queue.  The
  idempotency check is the backup's ``expected_version``: a version
  number fixed at dispatch, checked against the recovered catalog.
* **Maintenance windows without starving ingest** — foreground backups
  run with ``run_gnode=False``; the G-node's out-of-line passes
  (reverse deduplication over the containers foreground jobs produced)
  run as background jobs dispatched only when no foreground work is
  queued anywhere.
* **Per-tenant SLO metrics** — p50/p99 backup and restore latency
  (arrival to completion, queueing included) and SLO attainment, via
  :class:`~repro.sim.metrics.LatencyStats`.

Timebase: the control plane runs on a
:class:`~repro.sim.events.EventLoop` whose clock is the *service*
timeline (arrivals, queueing, leases).  Dispatched engine work executes
synchronously inside the dispatch event and reports its virtual duration,
which the control plane then occupies on the service timeline — the same
measured-trace-replay idea as :mod:`repro.core.cluster`, with the real
engine in the loop instead of a recorded trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.tenancy import BackupService
from repro.errors import (
    ReproError,
    RetryExhaustedError,
    SimulatedCrashError,
)
from repro.sim.events import EventLoop
from repro.sim.metrics import LatencyStats

#: Job kinds the control plane schedules.
JOB_KINDS = ("backup", "restore", "maintenance")


@dataclass(frozen=True)
class ServicePolicy:
    """Every control-plane knob in one place."""

    #: Max jobs queued per tenant (admitted, not yet dispatched).
    tenant_queue_limit: int = 4
    #: Max jobs queued across all tenants.
    global_queue_limit: int = 16
    #: Base of the retry-after estimate handed to rejected jobs.
    retry_after_base_seconds: float = 1.0
    #: Lease duration granted to a dispatched job; a dead node's job is
    #: recovered this long after its last grant.
    lease_seconds: float = 30.0
    #: Consecutive infrastructure failures that open the breaker.
    breaker_failure_threshold: int = 3
    #: How long the breaker sheds load before a half-open probe.
    breaker_cooldown_seconds: float = 60.0
    #: Scale up when queued jobs exceed this many per fleet slot.
    autoscale_high_depth: float = 2.0
    #: Scale down when queued jobs drop below this many per fleet slot.
    autoscale_low_depth: float = 0.25
    #: Minimum seconds between scaling decisions.
    autoscale_cooldown_seconds: float = 30.0
    #: Fleet size bounds.
    min_nodes: int = 1
    max_nodes: int = 8
    #: Concurrent jobs per L-node.
    slots_per_node: int = 2
    #: Warm-up delay before a scaled-up node serves jobs.
    scale_up_delay_seconds: float = 5.0
    #: Per-tenant SLO thresholds (arrival → completion).
    slo_backup_seconds: float = 60.0
    slo_restore_seconds: float = 30.0
    #: A tenant idle this long with pending G-node work gets a
    #: maintenance job enqueued.
    maintenance_idle_seconds: float = 10.0
    #: Re-dispatch delay after a non-crash job failure.
    failure_backoff_seconds: float = 1.0
    #: Attempts per job before it is failed permanently (crash takeovers
    #: do not count: an admitted job survives any number of node deaths).
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.tenant_queue_limit < 1 or self.global_queue_limit < 1:
            raise ValueError("queue limits must be >= 1")
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes: "
                f"{self.min_nodes}, {self.max_nodes}"
            )
        if self.slots_per_node < 1:
            raise ValueError(f"slots_per_node must be >= 1: {self.slots_per_node}")
        if self.lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive: {self.lease_seconds}")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.autoscale_low_depth > self.autoscale_high_depth:
            raise ValueError("autoscale_low_depth must be <= autoscale_high_depth")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")


@dataclass
class JobRequest:
    """One tenant job submitted to the control plane."""

    tenant: str
    kind: str
    path: str = ""
    data: bytes = b""
    #: Restore target version (None: latest).
    version: int | None = None
    #: Scheduling cost (defaults to the payload size; min 1 so empty
    #: jobs still advance virtual time).
    cost: float = 0.0

    # --- runtime state, owned by the control plane -----------------------
    job_id: int = -1
    arrival: float = 0.0
    status: str = "created"  # created/rejected/queued/running/lost/completed/failed
    attempts: int = 0
    node_id: int | None = None
    started_at: float | None = None
    completed_at: float | None = None
    #: Version a dispatched backup will commit as — the lease-takeover
    #: idempotency check.
    expected_version: int | None = None
    #: Fair-queueing virtual tags.
    start_tag: float = 0.0
    finish_tag: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind: {self.kind!r}")
        if self.cost <= 0:
            self.cost = float(max(1, len(self.data)))

    @property
    def latency(self) -> float | None:
        """Arrival → completion, None while incomplete."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival


@dataclass(frozen=True)
class Rejection:
    """Explicit backpressure: why a job was not admitted, and when to retry."""

    job_id: int
    tenant: str
    kind: str
    time: float
    reason: str
    retry_after: float

    def __post_init__(self) -> None:
        if self.retry_after <= 0:
            raise ValueError(
                f"a rejection must carry a positive retry_after: {self.retry_after}"
            )


class CircuitBreaker:
    """Closed → open on consecutive failures → half-open probe → closed.

    Failures are *infrastructure* signals (retry-exhausted OSS calls,
    degraded backups), not tenant errors; a spike opens the breaker and
    admission sheds every new job with the remaining cooldown as its
    retry-after, giving the storage backend room to recover instead of
    feeding the outage.
    """

    def __init__(self, threshold: int, cooldown_seconds: float) -> None:
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self.state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: (time, new state) transition log.
        self.transitions: list[tuple[float, str]] = []

    def _transition(self, now: float, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions.append((now, state))

    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        if self.state in ("half-open", "open"):
            self._transition(now, "closed")

    def record_failure(self, now: float) -> None:
        self._consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed"
            and self._consecutive_failures >= self.threshold
        ):
            self._opened_at = now
            self._transition(now, "open")

    def allows(self, now: float) -> bool:
        """Whether new work may be admitted at ``now``.

        An open breaker past its cooldown turns half-open: work flows
        again, and the next recorded outcome decides between closing
        and re-opening.
        """
        if self.state == "open":
            if now - self._opened_at >= self.cooldown_seconds:
                self._transition(now, "half-open")
                return True
            return False
        return True

    def retry_after(self, now: float) -> float:
        """Seconds until the breaker's next half-open probe."""
        return max(
            1e-3, self._opened_at + self.cooldown_seconds - now
        )


class FairShareScheduler:
    """Weighted start-time fair queueing over per-tenant FIFO queues.

    Each enqueued job gets a virtual start tag
    ``max(V, finish_of_previous_job_of_tenant)`` and finish tag
    ``start + cost / weight``; dispatch always picks the queue head with
    the smallest finish tag and advances ``V`` to its start tag.  Ties
    break on tenant name, so the schedule is fully deterministic.
    """

    def __init__(self) -> None:
        self._queues: dict[str, deque[JobRequest]] = {}
        self._virtual = 0.0
        self._last_finish: dict[str, float] = {}

    def enqueue(self, job: JobRequest, weight: float) -> None:
        job.start_tag = max(self._virtual, self._last_finish.get(job.tenant, 0.0))
        job.finish_tag = job.start_tag + job.cost / weight
        self._last_finish[job.tenant] = job.finish_tag
        self._queues.setdefault(job.tenant, deque()).append(job)

    def requeue_front(self, job: JobRequest) -> None:
        """Put a recovered job back at the head of its queue, tags kept."""
        self._queues.setdefault(job.tenant, deque()).appendleft(job)

    def depth(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def total_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def pick(self, skip: set[str] | None = None) -> JobRequest | None:
        """Pop and return the next job by fair share, None when empty.

        Tenants in ``skip`` are passed over (the control plane suspends
        a tenant between a node death and its lease takeover, while the
        on-OSS truth is still being recovered).
        """
        best_tenant: str | None = None
        best_tag: float = 0.0
        for tenant in sorted(self._queues):
            if skip and tenant in skip:
                continue
            queue = self._queues[tenant]
            if not queue:
                continue
            tag = queue[0].finish_tag
            if best_tenant is None or tag < best_tag:
                best_tenant, best_tag = tenant, tag
        if best_tenant is None:
            return None
        job = self._queues[best_tenant].popleft()
        self._virtual = max(self._virtual, job.start_tag)
        return job


@dataclass
class Lease:
    """Ownership of one dispatched job by one node, until it expires."""

    job: JobRequest
    node_id: int
    expires_at: float


@dataclass
class ServiceNode:
    """One L-node of the fleet (slots tracked directly; the scheduler
    owns all queueing, so no :class:`SlotResource` indirection)."""

    node_id: int
    slots: int
    alive: bool = True
    running: list[JobRequest] = field(default_factory=list)

    @property
    def free_slots(self) -> int:
        return (self.slots - len(self.running)) if self.alive else 0


@dataclass
class ServiceReport:
    """Everything one control-plane run observed."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejections: list[Rejection] = field(default_factory=list)
    #: Lease takeovers: (time, job_id, "resumed" | "already-committed").
    takeovers: list[tuple[float, int, str]] = field(default_factory=list)
    node_deaths: list[tuple[float, int]] = field(default_factory=list)
    #: (time, "up" | "down", alive node count after the event).
    scale_events: list[tuple[float, str, int]] = field(default_factory=list)
    breaker_transitions: list[tuple[float, str]] = field(default_factory=list)
    maintenance_runs: int = 0
    #: tenant → latency samples per kind (queueing included).
    backup_latency: dict[str, LatencyStats] = field(default_factory=dict)
    restore_latency: dict[str, LatencyStats] = field(default_factory=dict)

    def latency_for(self, tenant: str, kind: str) -> LatencyStats:
        table = self.backup_latency if kind == "backup" else self.restore_latency
        stats = table.get(tenant)
        if stats is None:
            stats = table[tenant] = LatencyStats()
        return stats

    def slo_summary(self, policy: ServicePolicy) -> dict:
        """Per-tenant p50/p99/attainment, JSON-ready."""
        tenants = sorted(set(self.backup_latency) | set(self.restore_latency))
        summary = {}
        for tenant in tenants:
            backup = self.backup_latency.get(tenant, LatencyStats())
            restore = self.restore_latency.get(tenant, LatencyStats())
            summary[tenant] = {
                "backup": {
                    "count": backup.count,
                    "p50": backup.p50,
                    "p99": backup.p99,
                    "mean": backup.mean,
                    "attainment": backup.attainment(policy.slo_backup_seconds),
                },
                "restore": {
                    "count": restore.count,
                    "p50": restore.p50,
                    "p99": restore.p99,
                    "mean": restore.mean,
                    "attainment": restore.attainment(policy.slo_restore_seconds),
                },
            }
        return summary


class ServiceControlPlane:
    """Admission, fair-share dispatch, leases, breaker and autoscaling
    over a :class:`~repro.core.tenancy.BackupService`.

    ``decision_hook(decision_index, node_id, job)`` fires at every
    scheduler decision point — the instant a job is matched to a node,
    before any engine work — and is the fleet kill matrix's lever: the
    hook may call :meth:`kill_node` (death before the job writes
    anything) or arm a crash on the OSS fault policy (death mid-write).
    """

    def __init__(
        self,
        service: BackupService,
        policy: ServicePolicy | None = None,
        loop: EventLoop | None = None,
        initial_nodes: int | None = None,
        decision_hook: Callable[[int, int, JobRequest], None] | None = None,
    ) -> None:
        self.service = service
        self.policy = policy or ServicePolicy()
        self.loop = loop or EventLoop()
        self.decision_hook = decision_hook
        self.report = ServiceReport()
        self.scheduler = FairShareScheduler()
        self.breaker = CircuitBreaker(
            self.policy.breaker_failure_threshold,
            self.policy.breaker_cooldown_seconds,
        )
        count = initial_nodes if initial_nodes is not None else self.policy.min_nodes
        if not self.policy.min_nodes <= count <= self.policy.max_nodes:
            raise ValueError(
                f"initial_nodes outside [min_nodes, max_nodes]: {count}"
            )
        self.nodes: list[ServiceNode] = [
            ServiceNode(i, self.policy.slots_per_node) for i in range(count)
        ]
        self.leases: dict[int, Lease] = {}
        self._next_job_id = 0
        self._next_node_id = count
        self._pending_nodes = 0
        self._last_scale_at = -self.policy.autoscale_cooldown_seconds
        self._decision_index = -1
        #: tenant → container ids awaiting an out-of-line G-node pass.
        self._pending_maintenance: dict[str, set[int]] = {}
        #: tenants with a maintenance job queued or running.
        self._maintenance_active: set[str] = set()
        self._last_foreground_at: dict[str, float] = {}
        #: tenant → count of lost jobs awaiting lease takeover; while
        #: positive, the tenant's queued jobs are not dispatched (the
        #: cached deployment may hold the dead node's half-done state,
        #: and the takeover's re-attach is what restores the truth).
        self._suspended: dict[str, int] = {}

    # --- fleet introspection ----------------------------------------------
    def alive_nodes(self) -> list[ServiceNode]:
        return [node for node in self.nodes if node.alive]

    def fleet_slots(self) -> int:
        return sum(node.slots for node in self.alive_nodes())

    # --- submission & admission -------------------------------------------
    def submit_at(self, time: float, job: JobRequest) -> None:
        """Schedule ``job`` to arrive at service time ``time``."""
        if time < self.loop.now:
            raise ValueError(f"cannot submit in the past: {time} < {self.loop.now}")
        self.loop.schedule(time - self.loop.now, lambda: self.submit(job))

    def submit(self, job: JobRequest) -> None:
        """Admit or reject ``job`` at the current service time."""
        now = self.loop.now
        job.job_id = self._next_job_id
        self._next_job_id += 1
        job.arrival = now
        self.report.submitted += 1
        reason = self._admission_reason(job, now)
        if reason is not None:
            self._reject(job, now, *reason)
            return
        job.status = "queued"
        self.report.admitted += 1
        self._last_foreground_at[job.tenant] = now
        self.scheduler.enqueue(job, self.service.weight(job.tenant))
        self._autoscale()
        self._dispatch()

    def _admission_reason(
        self, job: JobRequest, now: float
    ) -> tuple[str, float] | None:
        """(reason, retry_after) when the job must be shed, else None."""
        if not self.breaker.allows(now):
            return "circuit-open", self.breaker.retry_after(now)
        total = self.scheduler.total_depth()
        if total >= self.policy.global_queue_limit:
            drain = self.policy.retry_after_base_seconds * (
                1 + total / max(1, self.fleet_slots())
            )
            return "global-queue-full", drain
        depth = self.scheduler.depth(job.tenant)
        if depth >= self.policy.tenant_queue_limit:
            drain = self.policy.retry_after_base_seconds * (1 + depth)
            return "tenant-queue-full", drain
        return None

    def _reject(
        self, job: JobRequest, now: float, reason: str, retry_after: float
    ) -> None:
        job.status = "rejected"
        self.report.rejections.append(
            Rejection(job.job_id, job.tenant, job.kind, now, reason, retry_after)
        )

    # --- dispatch ----------------------------------------------------------
    def _pick_node(self) -> ServiceNode | None:
        """Least-loaded alive node with a free slot (id breaks ties)."""
        best = None
        for node in self.nodes:
            if node.free_slots <= 0:
                continue
            if best is None or len(node.running) < len(best.running):
                best = node
        return best

    def _dispatch(self) -> None:
        while True:
            node = self._pick_node()
            if node is None:
                return
            suspended = {t for t, count in self._suspended.items() if count > 0}
            job = self.scheduler.pick(skip=suspended)
            if job is None:
                job = self._pick_maintenance(suspended)
                if job is None:
                    return
            self._decision_index += 1
            if self.decision_hook is not None:
                self.decision_hook(self._decision_index, node.node_id, job)
            if not node.alive or node.free_slots <= 0:
                # The hook killed the node at this decision point; the
                # job never started, so it simply goes back to the head
                # of the line for the next node.
                if job.kind == "maintenance":
                    self._maintenance_active.discard(job.tenant)
                else:
                    self.scheduler.requeue_front(job)
                # The job was already off the queue when the crash path
                # autoscaled, so re-check now that it is back on.
                self._autoscale()
                continue
            self._execute(node, job)

    def _grant_lease(self, job: JobRequest, node: ServiceNode) -> None:
        self.leases[job.job_id] = Lease(
            job, node.node_id, self.loop.now + self.policy.lease_seconds
        )

    def _execute(self, node: ServiceNode, job: JobRequest) -> None:
        now = self.loop.now
        job.status = "running"
        job.node_id = node.node_id
        job.started_at = now
        job.attempts += 1
        node.running.append(job)
        self._grant_lease(job, node)
        try:
            duration = self._run_engine_work(job, now)
        except SimulatedCrashError:
            self._node_crashed(node)
            return
        except (RetryExhaustedError, ReproError):
            self._job_failed(node, job)
            return
        self.breaker.record_success(now)

        def complete() -> None:
            self._finish(job, node)

        self.loop.schedule(duration, complete)

    def _run_engine_work(self, job: JobRequest, now: float) -> float:
        """Run the real engine work; returns its virtual duration."""
        if job.kind == "backup":
            store = self.service.store_for(job.tenant)
            live = store.versions(job.path)
            job.expected_version = (live[-1] + 1) if live else 0
            report = self.service.backup(
                job.tenant, job.path, job.data, timestamp=now, run_gnode=False
            )
            self._pending_maintenance.setdefault(job.tenant, set()).update(
                report.result.new_container_ids
            )
            if report.degraded:
                # The job survived on degraded mode — data is safe, but
                # the storage backend is failing: feed the breaker.
                self.breaker.record_failure(now)
            return max(report.result.elapsed_seconds, 1e-9)
        if job.kind == "restore":
            result = self.service.restore(job.tenant, job.path, job.version)
            return max(result.elapsed_seconds, 1e-9)
        # Maintenance: the out-of-line G-node pass over the containers
        # foreground backups produced (journaled internally, idempotent).
        store = self.service.store_for(job.tenant)
        pending = sorted(self._pending_maintenance.get(job.tenant, set()))
        self._pending_maintenance[job.tenant] = set()
        before = store.oss.clock.now
        if pending:
            store.gnode.reverse_dedup(pending)
        if store.catalog.degraded_versions():
            store.reclaim_degraded()
        self.report.maintenance_runs += 1
        return max(store.oss.clock.now - before, 1e-9)

    def _finish(self, job: JobRequest, node: ServiceNode) -> None:
        if job.status != "running":
            # The node died while this completion was in flight; the
            # lease takeover owns the job now.
            return
        now = self.loop.now
        job.status = "completed"
        job.completed_at = now
        self.leases.pop(job.job_id, None)
        if job in node.running:
            node.running.remove(job)
        if job.kind in ("backup", "restore"):
            # Maintenance completions are tallied in maintenance_runs;
            # completed/failed count client-submitted work only.
            self.report.completed += 1
            self.report.latency_for(job.tenant, job.kind).record(job.latency)
            self._schedule_maintenance_check(job.tenant)
        else:
            self._maintenance_active.discard(job.tenant)
        self._autoscale()
        self._dispatch()

    def _job_failed(self, node: ServiceNode, job: JobRequest) -> None:
        """Non-crash failure: breaker feedback plus bounded retries."""
        now = self.loop.now
        self.breaker.record_failure(now)
        self.leases.pop(job.job_id, None)
        if job in node.running:
            node.running.remove(job)
        if job.kind == "maintenance":
            # Pending ids were consumed; put them back for the next window.
            self._maintenance_active.discard(job.tenant)
            job.status = "failed"
        elif job.attempts >= self.policy.max_attempts:
            job.status = "failed"
            job.completed_at = now
            self.report.failed += 1
        else:
            job.status = "queued"
            self.loop.schedule(
                self.policy.failure_backoff_seconds,
                lambda: (self.scheduler.requeue_front(job), self._dispatch()),
            )
        self._dispatch()

    # --- node death & lease takeover ---------------------------------------
    def kill_node(self, node_id: int) -> None:
        """Kill one node; its running jobs recover via lease expiry."""
        for node in self.nodes:
            if node.node_id == node_id and node.alive:
                self._node_crashed(node)
                return
        raise ValueError(f"no alive node {node_id}")

    def _node_crashed(self, node: ServiceNode) -> None:
        now = self.loop.now
        node.alive = False
        self.report.node_deaths.append((now, node.node_id))
        # The crash fault is terminal on the policy until cleared; the
        # OSS itself is healthy — only the node died — so clear it for
        # the survivors.
        faults = self.service.oss.faults
        if faults is not None:
            faults.clear_crash()
        for job in list(node.running):
            job.status = "lost"
            self._suspended[job.tenant] = self._suspended.get(job.tenant, 0) + 1
            lease = self.leases.get(job.job_id)
            expires = lease.expires_at if lease is not None else now
            self.loop.schedule(
                max(0.0, expires - now), lambda job=job: self._takeover(job)
            )
        node.running.clear()
        self._autoscale()
        self._dispatch()

    def _takeover(self, job: JobRequest) -> None:
        """Resolve one expired lease left by a dead node."""
        if job.status != "lost":
            return
        now = self.loop.now
        self._suspended[job.tenant] = max(0, self._suspended.get(job.tenant, 1) - 1)
        self.leases.pop(job.job_id, None)
        # Re-attach runs the RecoveryManager over the dead node's open
        # intents: half-done backups roll forward or are discarded, so
        # the catalog below is the recovered truth.
        store = self.service.reattach_tenant(job.tenant)
        if (
            job.kind == "backup"
            and job.expected_version is not None
            and job.expected_version in store.versions(job.path)
        ):
            # The commit landed before the crash; re-running would write
            # a duplicate version.  Complete the job as-is.
            job.status = "completed"
            job.completed_at = now
            self.report.completed += 1
            self.report.takeovers.append((now, job.job_id, "already-committed"))
            self.report.latency_for(job.tenant, job.kind).record(job.latency)
        elif job.kind == "maintenance":
            # Recovery re-ran the journaled reverse-dedup pass, so the
            # maintenance work is done.
            job.status = "completed"
            job.completed_at = now
            self.report.takeovers.append((now, job.job_id, "already-committed"))
            self._maintenance_active.discard(job.tenant)
        else:
            job.status = "queued"
            job.expected_version = None
            self.report.takeovers.append((now, job.job_id, "resumed"))
            self.scheduler.requeue_front(job)
        self._autoscale()
        self._dispatch()

    # --- maintenance windows ------------------------------------------------
    def _schedule_maintenance_check(self, tenant: str) -> None:
        if not self._pending_maintenance.get(tenant):
            return
        self.loop.schedule(
            self.policy.maintenance_idle_seconds,
            lambda: self._maintenance_window(tenant),
        )

    def _maintenance_window(self, tenant: str) -> None:
        """Enqueue a maintenance job if the tenant has stayed idle."""
        now = self.loop.now
        if tenant in self._maintenance_active:
            return
        if not self._pending_maintenance.get(tenant):
            return
        idle = now - self._last_foreground_at.get(tenant, 0.0)
        if idle + 1e-9 < self.policy.maintenance_idle_seconds:
            return
        self._maintenance_active.add(tenant)
        self._dispatch()

    def _pick_maintenance(self, suspended: set[str]) -> JobRequest | None:
        """A maintenance job, only when no foreground work is queued."""
        if self.scheduler.total_depth() > 0:
            return None
        for tenant in sorted(self._maintenance_active):
            if tenant in suspended:
                continue
            if self._pending_maintenance.get(tenant) or self.service.store_for(
                tenant
            ).catalog.degraded_versions():
                job = JobRequest(tenant=tenant, kind="maintenance")
                job.job_id = self._next_job_id
                self._next_job_id += 1
                job.arrival = self.loop.now
                return job
            self._maintenance_active.discard(tenant)
        return None

    # --- autoscaling --------------------------------------------------------
    def _autoscale(self) -> None:
        now = self.loop.now
        if not self.alive_nodes() and self._pending_nodes == 0 and (
            self.scheduler.total_depth() > 0
            or self.leases
            or self._maintenance_active
        ):
            # A dead fleet still owing tenants work is replaced
            # unconditionally — cooldown and depth thresholds exist to
            # damp thrash, and a fleet of zero cannot thrash.
            self._last_scale_at = now
            self._pending_nodes += 1
            self.loop.schedule(self.policy.scale_up_delay_seconds, self._add_node)
            return
        if now - self._last_scale_at < self.policy.autoscale_cooldown_seconds:
            return
        alive = self.alive_nodes()
        slots = max(1, self.fleet_slots())
        depth = self.scheduler.total_depth()
        if (
            depth > self.policy.autoscale_high_depth * slots
            and len(alive) + self._pending_nodes < self.policy.max_nodes
        ):
            self._last_scale_at = now
            self._pending_nodes += 1
            self.loop.schedule(self.policy.scale_up_delay_seconds, self._add_node)
        elif (
            depth < self.policy.autoscale_low_depth * slots
            and len(alive) > self.policy.min_nodes
        ):
            for node in reversed(alive):
                if not node.running:
                    self._last_scale_at = now
                    node.alive = False
                    self.nodes.remove(node)
                    self.report.scale_events.append(
                        (now, "down", len(self.alive_nodes()))
                    )
                    return

    def _add_node(self) -> None:
        self._pending_nodes -= 1
        node = ServiceNode(self._next_node_id, self.policy.slots_per_node)
        self._next_node_id += 1
        self.nodes.append(node)
        self.report.scale_events.append(
            (self.loop.now, "up", len(self.alive_nodes()))
        )
        self._dispatch()

    # --- running ------------------------------------------------------------
    def run(self, until: float | None = None) -> ServiceReport:
        """Drain the event schedule (optionally only up to ``until``)."""
        self.loop.run(until)
        self.report.breaker_transitions = list(self.breaker.transitions)
        return self.report
