"""Event-driven cluster scheduling of backup/restore jobs.

Runs an explicit discrete-event schedule of jobs over L-nodes: each node
has a bounded number of job slots, and the jobs sharing a node split its
NIC bandwidth for their network phase.  Used to cross-validate the
closed-form scaling arithmetic of :mod:`repro.bench.scaling` and to answer
questions the closed forms cannot (mixed job sizes, staggered arrivals).

Since the sharded-index PR the simulator also models the **shared global
fingerprint index** as a contended resource: each ingest job finishes its
CPU/network phase and then pushes its unique fingerprints through the
index, one :class:`~repro.sim.events.SlotResource` per shard serving the
batched round trips.  Many concurrent jobs hammering one unbatched shard
serialise behind each other; sharding and batching shrink both the queue
and the number of round trips, which is the cluster-ingest half of the
sharding ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.cost_model import CostModel
from repro.sim.events import (
    BackupPipelineProcess,
    ChannelPool,
    EventLoop,
    RestorePipelineProcess,
    SlotResource,
)
from repro.sim.parallel import batched_round_trips


@dataclass(frozen=True)
class JobSpec:
    """One job's resource demands (taken from a measured job result)."""

    logical_bytes: float
    cpu_seconds: float
    network_bytes: float
    #: Fingerprints the job pushes through the shared global index (its
    #: unique chunks); zero for jobs that never touch the index.
    index_lookups: int = 0

    @classmethod
    def from_backup_result(cls, result) -> "JobSpec":
        """Build a spec from a BackupResult-like object."""
        unique = getattr(result, "unique_fps", None)
        return cls(
            logical_bytes=result.logical_bytes,
            cpu_seconds=result.breakdown.cpu_seconds(),
            network_bytes=result.uploaded_bytes,
            index_lookups=0 if unique is None else len(unique),
        )


@dataclass(frozen=True)
class BackupJobSpec:
    """One backup job's measured ingest trace, replayable on a cluster.

    Carries everything :class:`~repro.sim.events.BackupPipelineProcess`
    needs — per-segment chunk/lookup stage durations, the segments'
    batched index round trips, and the container-flush events — so the
    same trace that timed the job standalone can be re-run with its
    flush uploads and index batches contending for a node's shared OSS
    channels, at any chunk look-ahead / flush-buffer setting.
    """

    logical_bytes: float
    chunk_seconds: tuple[float, ...]
    lookup_seconds: tuple[float, ...]
    lookup_rpcs: tuple[tuple[float, ...], ...]
    flush_after: tuple[int, ...]
    flush_seconds: tuple[float, ...]
    setup_seconds: float = 0.0
    finish_seconds: float = 0.0
    ingest_segments: int = 0
    flush_buffers: int = 0

    def __post_init__(self) -> None:
        if len(self.chunk_seconds) != len(self.lookup_seconds):
            raise ValueError("per-segment traces must align")
        if len(self.lookup_rpcs) != len(self.chunk_seconds):
            raise ValueError("lookup_rpcs must have one entry per segment")
        if len(self.flush_after) != len(self.flush_seconds):
            raise ValueError("flush traces must align")
        if self.ingest_segments < 0 or self.flush_buffers < 0:
            raise ValueError("ingest_segments/flush_buffers cannot be negative")

    @classmethod
    def from_backup_result(
        cls,
        result,
        ingest_segments: int | None = None,
        flush_buffers: int | None = None,
    ) -> "BackupJobSpec":
        """Build a spec from a measured :class:`BackupResult` trace.

        The knobs default to a serial replay (0 extra segments, 0 extra
        buffers) so the caller states the pipeline setting explicitly.
        """
        trace = result.ingest
        if trace is None:
            raise ValueError("backup result carries no ingest trace")
        return cls(
            logical_bytes=result.logical_bytes,
            chunk_seconds=tuple(trace.chunk_seconds),
            lookup_seconds=tuple(trace.lookup_seconds),
            lookup_rpcs=tuple(tuple(r) for r in trace.lookup_rpcs),
            flush_after=tuple(trace.flush_after),
            flush_seconds=tuple(trace.flush_seconds),
            setup_seconds=trace.setup_seconds,
            finish_seconds=trace.finish_seconds,
            ingest_segments=0 if ingest_segments is None else ingest_segments,
            flush_buffers=0 if flush_buffers is None else flush_buffers,
        )

    def with_knobs(self, ingest_segments: int, flush_buffers: int) -> "BackupJobSpec":
        """The same trace at a different pipeline setting."""
        return replace(
            self, ingest_segments=ingest_segments, flush_buffers=flush_buffers
        )


@dataclass(frozen=True)
class RestoreJobSpec:
    """One restore job's measured pipeline trace, replayable on a cluster.

    Carries everything :class:`~repro.sim.events.RestorePipelineProcess`
    needs: the planned container-read durations in issue order, which read
    each record blocks on, per-record CPU, and the synchronous demand
    seconds — so the same trace that timed the job standalone can be
    re-run with its prefetcher contending for a node's shared OSS
    channels.
    """

    logical_bytes: float
    read_seconds: tuple[float, ...]
    record_reads: tuple[int, ...]
    record_cpu: tuple[float, ...]
    demand_seconds: tuple[float, ...]
    setup_seconds: float = 0.0
    prefetch_threads: int = 1

    def __post_init__(self) -> None:
        if self.prefetch_threads < 0:
            raise ValueError(f"prefetch_threads cannot be negative: {self.prefetch_threads}")
        if len(self.record_reads) != len(self.record_cpu) or len(
            self.record_cpu
        ) != len(self.demand_seconds):
            raise ValueError("per-record traces must align")

    @classmethod
    def from_restore_result(cls, result) -> "RestoreJobSpec":
        """Build a spec from a measured :class:`RestoreResult`."""
        return cls(
            logical_bytes=result.logical_bytes,
            read_seconds=tuple(result.read_seconds),
            record_reads=tuple(result.record_reads),
            record_cpu=tuple(result.record_cpu),
            demand_seconds=tuple(result.demand_seconds),
            setup_seconds=result.setup_seconds,
            prefetch_threads=result.prefetch_threads,
        )

    def serialised(self) -> "RestoreJobSpec":
        """The same trace with every read folded into demand time.

        Models ``prefetch_threads == 0``: no prefetcher, the consumer
        issues each read synchronously when it reaches the record.
        """
        demand = list(self.demand_seconds)
        for index, read in enumerate(self.record_reads):
            if read >= 0:
                demand[index] += self.read_seconds[read]
        return RestoreJobSpec(
            logical_bytes=self.logical_bytes,
            read_seconds=(),
            record_reads=tuple([-1] * len(self.record_reads)),
            record_cpu=self.record_cpu,
            demand_seconds=tuple(demand),
            setup_seconds=self.setup_seconds,
            prefetch_threads=0,
        )


@dataclass(frozen=True)
class ShardedIndexSpec:
    """The shared sharded global index as a contended cluster resource.

    ``batch_size`` 1 models the seed's one-fingerprint-per-round-trip
    access; larger batches group fingerprints per request.  Each shard
    serves ``slots_per_shard`` requests concurrently (Rocks-OSS instances
    are independent stores, so shards never contend with each other).
    """

    shard_count: int = 1
    batch_size: int = 1
    slots_per_shard: int = 1

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ValueError(f"shard_count must be >= 1: {self.shard_count}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size}")
        if self.slots_per_shard < 1:
            raise ValueError(f"slots_per_shard must be >= 1: {self.slots_per_shard}")

    def per_shard_keys(self, lookups: int) -> list[int]:
        """Uniform spread of a job's lookups over the shards.

        SHA-1 fingerprint prefixes are uniform, so an even split (with the
        remainder on the first shards) is the expected distribution.
        """
        base, extra = divmod(lookups, self.shard_count)
        return [base + (1 if i < extra else 0) for i in range(self.shard_count)]

    def request_keys(self, keys: int) -> list[int]:
        """Per-request key counts for one shard's share of a job."""
        if keys <= 0:
            return []
        full, rest = divmod(keys, self.batch_size)
        sizes = [self.batch_size] * full
        if rest:
            sizes.append(rest)
        return sizes

    def total_requests(self, lookups: int) -> int:
        """Round trips one job issues across all shards."""
        return sum(
            batched_round_trips(keys, self.batch_size)
            for keys in self.per_shard_keys(lookups)
            if keys
        )


@dataclass
class ClusterRunReport:
    """Outcome of one simulated schedule."""

    makespan_seconds: float
    total_logical_bytes: float
    completion_times: list[float] = field(default_factory=list)
    #: Round trips served by the shared index (0 without an index model).
    index_rpcs: int = 0
    #: Consumer stalls across all restore jobs (restore schedules only).
    prefetch_stalls: int = 0
    #: Virtual seconds restore consumers spent blocked on reads.
    prefetch_stall_seconds: float = 0.0
    #: Busy seconds of each node's OSS channels (pipelined schedules only).
    node_channel_busy_seconds: list[list[float]] = field(default_factory=list)
    #: Chunk-stage stalls across all backup jobs (ingest schedules only):
    #: times the look-ahead window closed and chunking had to wait.
    ingest_chunk_stalls: int = 0
    #: Virtual seconds backup chunk stages spent waiting on the window.
    ingest_chunk_stall_seconds: float = 0.0
    #: Times a backup job's lookup spine blocked on a full flush buffer.
    ingest_flush_stalls: int = 0
    #: Virtual seconds backup spines spent blocked on container flushes.
    ingest_flush_stall_seconds: float = 0.0
    #: Virtual seconds backup lookup stages waited on index round trips
    #: beyond their own CPU (channel queueing + RPC latency overhang).
    ingest_rpc_wait_seconds: float = 0.0
    #: Node deaths simulated during the schedule (``crashes`` argument).
    crashes_simulated: int = 0
    #: Virtual seconds of partial work thrown away by crashed jobs (the
    #: uncommitted writes recovery garbage-collects).
    wasted_seconds: float = 0.0
    #: Virtual seconds replacement nodes spent in attach-time recovery.
    recovery_seconds_total: float = 0.0

    @property
    def aggregate_throughput_mb_s(self) -> float:
        """Cluster-wide throughput over the makespan."""
        if self.makespan_seconds == 0:
            return 0.0
        return self.total_logical_bytes / self.makespan_seconds / (1 << 20)


class ClusterSimulator:
    """Schedules jobs over L-nodes with slot, NIC and index contention.

    Model per job: a CPU phase and a network phase that fully overlap
    (max rule, as in the pipelined cost model), where the network phase
    slows down proportionally to the number of jobs concurrently active
    on the same node (fair NIC sharing, approximated by charging each
    job its bandwidth share at dispatch time).  With an
    :class:`ShardedIndexSpec`, the job then drains its fingerprints
    through the shared index — per-shard chains of batched round trips,
    queued on each shard's slots — before releasing its node slot.
    """

    def __init__(
        self,
        lnode_count: int,
        cost_model: CostModel | None = None,
        slots_per_node: int | None = None,
        index_spec: ShardedIndexSpec | None = None,
    ) -> None:
        if lnode_count < 1:
            raise ValueError("need at least one L-node")
        self.model = cost_model or CostModel()
        self.lnode_count = lnode_count
        self.slots_per_node = slots_per_node or self.model.node_backup_slots
        self.index_spec = index_spec

    def _rpc_seconds(self, keys: int) -> float:
        """Virtual duration of one batched index round trip."""
        return self.model.oss_request_latency + keys * self.model.cpu_index_query

    def run(
        self,
        jobs: list[JobSpec],
        crashes: dict[int, float] | None = None,
        recovery_seconds: float | None = None,
        arrivals: list[float] | None = None,
    ) -> ClusterRunReport:
        """Dispatch all jobs; returns the schedule outcome.

        ``arrivals`` gives each job's submission time (e.g. a seeded
        stream from :func:`repro.sim.arrivals.tenant_arrivals`); without
        it every job is dispatched at time zero.  Staggered arrivals are
        what make overload visible as *queueing*: jobs arriving faster
        than nodes drain them pile up on the slot queues instead of all
        contending from the start.

        ``crashes`` maps job index → fraction of the job's main phase at
        which its node dies.  The partial work is wasted (the commit
        never landed, so recovery discards it), a replacement node spends
        ``recovery_seconds`` in attach-time recovery (journal scan,
        intent resolution, orphan GC — defaulting to three OSS request
        round trips: list, read, truncate), and the job then re-runs in
        full.  This quantifies what the crash-consistency layer costs at
        cluster scale: a crash adds latency, never inconsistency.
        """
        if arrivals is not None:
            if len(arrivals) != len(jobs):
                raise ValueError(
                    f"need one arrival per job: {len(arrivals)} != {len(jobs)}"
                )
            if any(t < 0 for t in arrivals):
                raise ValueError("arrival times cannot be negative")
        crashes = dict(crashes or {})
        for index, fraction in crashes.items():
            if not 0 <= index < len(jobs):
                raise ValueError(f"crash index {index} outside job list")
            if not 0.0 < fraction < 1.0:
                raise ValueError(
                    f"crash fraction must be in (0, 1): {fraction}"
                )
        if recovery_seconds is None:
            recovery_seconds = 3 * self.model.oss_request_latency
        loop = EventLoop()
        nodes = [
            SlotResource(loop, self.slots_per_node) for _ in range(self.lnode_count)
        ]
        spec = self.index_spec
        shards = (
            [SlotResource(loop, spec.slots_per_shard) for _ in range(spec.shard_count)]
            if spec is not None
            else []
        )
        report = ClusterRunReport(0.0, sum(job.logical_bytes for job in jobs))

        def drain_shard(shard: SlotResource, batches: list[int], finished) -> None:
            remaining = list(batches)

            def issue_next() -> None:
                keys = remaining.pop(0)

                def granted() -> None:
                    def done() -> None:
                        report.index_rpcs += 1
                        shard.release()
                        if remaining:
                            issue_next()
                        else:
                            finished()

                    loop.schedule(self._rpc_seconds(keys), done)

                shard.acquire(granted)

            issue_next()

        def index_phase(job: JobSpec, finish) -> None:
            plan = spec.per_shard_keys(job.index_lookups)
            chains = [
                (shards[i], spec.request_keys(keys))
                for i, keys in enumerate(plan)
                if keys
            ]
            if not chains:
                finish()
                return
            state = {"remaining": len(chains)}

            def chain_finished() -> None:
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    finish()

            for shard, batches in chains:
                drain_shard(shard, batches, chain_finished)

        def dispatch(
            job: JobSpec, node: SlotResource, crash_fraction: float | None = None
        ) -> None:
            def start() -> None:
                # NIC share: jobs concurrently active on this node split
                # its bandwidth; a job's share is fixed at start time
                # (a standard approximation that keeps the kernel simple
                # and errs pessimistically under heavy contention).
                concurrent = max(1, node.busy)
                bandwidth = self.model.node_nic_bandwidth / concurrent
                network_seconds = job.network_bytes / bandwidth
                duration = max(job.cpu_seconds, network_seconds)

                if crash_fraction is not None:
                    wasted = duration * crash_fraction

                    def crashed() -> None:
                        report.crashes_simulated += 1
                        report.wasted_seconds += wasted
                        report.recovery_seconds_total += recovery_seconds

                        def recovered() -> None:
                            # The replacement node retries the whole job:
                            # nothing committed, so nothing is resumable.
                            node.release()
                            dispatch(job, node)

                        loop.schedule(recovery_seconds, recovered)

                    loop.schedule(wasted, crashed)
                    return

                def finish() -> None:
                    report.completion_times.append(loop.now)
                    node.release()

                def main_done() -> None:
                    if spec is None or job.index_lookups <= 0:
                        finish()
                    else:
                        index_phase(job, finish)

                loop.schedule(duration, main_done)

            node.acquire(start)

        # Round-robin placement, as the facade's scheduler does.
        for index, job in enumerate(jobs):
            delay = arrivals[index] if arrivals is not None else 0.0
            loop.schedule(
                delay,
                lambda job=job, index=index: dispatch(
                    job, nodes[index % len(nodes)], crashes.get(index)
                ),
            )

        report.makespan_seconds = loop.run()
        return report

    def backup_throughput(self, job: "JobSpec | BackupJobSpec", jobs: int) -> float:
        """Aggregate MB/s for ``jobs`` identical concurrent jobs.

        Accepts either a closed-form :class:`JobSpec` (the max(cpu, net)
        + index-drain arithmetic of :meth:`run`) or a traced
        :class:`BackupJobSpec` (the event-driven ingest pipeline of
        :meth:`run_backup_pipelines`).  A ``BackupJobSpec`` replayed at 0
        extra segments / 0 extra buffers is the serial schedule the
        closed form approximates, which is the cross-check the ingest
        ablation asserts.
        """
        if isinstance(job, BackupJobSpec):
            report = self.run_backup_pipelines([job] * jobs)
        else:
            report = self.run([job] * jobs)
        return report.aggregate_throughput_mb_s

    # --- pipelined backup schedules -----------------------------------------
    def run_backup_pipelines(
        self,
        jobs: list[BackupJobSpec],
        backup_slots: int | None = None,
        channels_per_node: int | None = None,
    ) -> ClusterRunReport:
        """Dispatch concurrent traced backup jobs with channel contention.

        Each node offers ``backup_slots`` concurrent ingest jobs
        (``node_backup_slots``) and one shared
        :class:`~repro.sim.events.ChannelPool` of ``channels_per_node``
        OSS channels (``node_oss_channels``).  A job holding a slot pays
        its serial setup, then replays its measured ingest trace as a
        :class:`~repro.sim.events.BackupPipelineProcess` — its batched
        index round trips and (double-buffered) container flushes
        competing with every co-located job for the node's channels.
        This is the ingest mirror of :meth:`run_restores`, and the
        event-level half of the ingest-pipeline ablation.
        """
        slots = backup_slots or self.model.node_backup_slots
        channels = channels_per_node or self.model.node_oss_channels
        loop = EventLoop()
        nodes = [SlotResource(loop, slots) for _ in range(self.lnode_count)]
        pools = [ChannelPool(loop, channels) for _ in range(self.lnode_count)]
        report = ClusterRunReport(0.0, sum(job.logical_bytes for job in jobs))

        def dispatch(job: BackupJobSpec, node: SlotResource, pool: ChannelPool) -> None:
            def start() -> None:
                def finish(process: BackupPipelineProcess) -> None:
                    report.completion_times.append(loop.now)
                    stats = process.stats
                    report.ingest_chunk_stalls += stats.chunk_stall_count
                    report.ingest_chunk_stall_seconds += stats.chunk_stall_seconds
                    report.ingest_flush_stalls += stats.flush_stall_count
                    report.ingest_flush_stall_seconds += stats.flush_stall_seconds
                    report.ingest_rpc_wait_seconds += stats.rpc_wait_seconds
                    report.index_rpcs += sum(len(r) for r in job.lookup_rpcs)
                    node.release()

                process = BackupPipelineProcess(
                    loop,
                    pool,
                    job.chunk_seconds,
                    job.lookup_seconds,
                    lookup_rpcs=job.lookup_rpcs,
                    flush_after=job.flush_after,
                    flush_seconds=job.flush_seconds,
                    setup_seconds=job.setup_seconds,
                    finish_seconds=job.finish_seconds,
                    ingest_segments=job.ingest_segments,
                    flush_buffers=job.flush_buffers,
                    on_done=lambda: finish(process),
                )
                process.start()

            node.acquire(start)

        for index, job in enumerate(jobs):
            node = index % len(nodes)
            dispatch(job, nodes[node], pools[node])

        report.makespan_seconds = loop.run()
        report.node_channel_busy_seconds = [list(pool.busy_seconds) for pool in pools]
        return report

    # --- restore schedules --------------------------------------------------
    def run_restores(
        self,
        jobs: list[RestoreJobSpec],
        restore_slots: int | None = None,
        channels_per_node: int | None = None,
    ) -> ClusterRunReport:
        """Dispatch concurrent restore jobs with OSS-channel contention.

        Each node offers ``restore_slots`` concurrent restore jobs
        (``node_restore_slots``: "each L-node can execute up to eight
        restore jobs at the same time") and one shared
        :class:`~repro.sim.events.ChannelPool` of ``channels_per_node``
        OSS channels (``node_oss_channels``, the NIC-saturation point).
        A job holding a slot pays its serial setup, then replays its
        measured pipeline trace with its prefetcher competing for the
        node's channels — the Fig 10(b)-style restore scaling from the
        same machinery as ingest.  Jobs with ``prefetch_threads == 0``
        run their reads synchronously (folded into demand time).
        """
        slots = restore_slots or self.model.node_restore_slots
        channels = channels_per_node or self.model.node_oss_channels
        loop = EventLoop()
        nodes = [SlotResource(loop, slots) for _ in range(self.lnode_count)]
        pools = [ChannelPool(loop, channels) for _ in range(self.lnode_count)]
        report = ClusterRunReport(0.0, sum(job.logical_bytes for job in jobs))

        def dispatch(job: RestoreJobSpec, node: SlotResource, pool: ChannelPool) -> None:
            if job.prefetch_threads == 0:
                job = job.serialised()

            def start() -> None:
                def run_pipeline() -> None:
                    def finish(process: RestorePipelineProcess) -> None:
                        report.completion_times.append(loop.now)
                        report.prefetch_stalls += process.stats.stall_count
                        report.prefetch_stall_seconds += process.stats.stall_seconds
                        node.release()

                    process = RestorePipelineProcess(
                        loop,
                        pool,
                        job.read_seconds,
                        job.record_reads,
                        job.record_cpu,
                        demand_seconds=job.demand_seconds,
                        max_parallel=max(1, job.prefetch_threads),
                        on_done=lambda: finish(process),
                    )
                    process.start()

                loop.schedule(job.setup_seconds, run_pipeline)

            node.acquire(start)

        for index, job in enumerate(jobs):
            node = index % len(nodes)
            dispatch(job, nodes[node], pools[node])

        report.makespan_seconds = loop.run()
        report.node_channel_busy_seconds = [list(pool.busy_seconds) for pool in pools]
        return report

    def restore_throughput(self, job: RestoreJobSpec, jobs: int) -> float:
        """Aggregate restore MB/s for ``jobs`` identical concurrent jobs."""
        report = self.run_restores([job] * jobs)
        return report.aggregate_throughput_mb_s
