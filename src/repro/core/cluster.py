"""Event-driven cluster scheduling of backup/restore jobs.

Runs an explicit discrete-event schedule of jobs over L-nodes: each node
has a bounded number of job slots, and the jobs sharing a node split its
NIC bandwidth for their network phase.  Used to cross-validate the
closed-form scaling arithmetic of :mod:`repro.bench.scaling` and to answer
questions the closed forms cannot (mixed job sizes, staggered arrivals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.cost_model import CostModel
from repro.sim.events import EventLoop, SlotResource


@dataclass(frozen=True)
class JobSpec:
    """One job's resource demands (taken from a measured job result)."""

    logical_bytes: float
    cpu_seconds: float
    network_bytes: float

    @classmethod
    def from_backup_result(cls, result) -> "JobSpec":
        """Build a spec from a BackupResult-like object."""
        return cls(
            logical_bytes=result.logical_bytes,
            cpu_seconds=result.breakdown.cpu_seconds(),
            network_bytes=result.uploaded_bytes,
        )


@dataclass
class ClusterRunReport:
    """Outcome of one simulated schedule."""

    makespan_seconds: float
    total_logical_bytes: float
    completion_times: list[float] = field(default_factory=list)

    @property
    def aggregate_throughput_mb_s(self) -> float:
        """Cluster-wide throughput over the makespan."""
        if self.makespan_seconds == 0:
            return 0.0
        return self.total_logical_bytes / self.makespan_seconds / (1 << 20)


class ClusterSimulator:
    """Schedules jobs over L-nodes with slot and NIC contention.

    Model per job: a CPU phase and a network phase that fully overlap
    (max rule, as in the pipelined cost model), where the network phase
    slows down proportionally to the number of jobs concurrently active
    on the same node (fair NIC sharing, approximated by charging each
    job its bandwidth share at dispatch time).
    """

    def __init__(
        self,
        lnode_count: int,
        cost_model: CostModel | None = None,
        slots_per_node: int | None = None,
    ) -> None:
        if lnode_count < 1:
            raise ValueError("need at least one L-node")
        self.model = cost_model or CostModel()
        self.lnode_count = lnode_count
        self.slots_per_node = slots_per_node or self.model.node_backup_slots

    def run(self, jobs: list[JobSpec]) -> ClusterRunReport:
        """Dispatch all jobs at time zero; returns the schedule outcome."""
        loop = EventLoop()
        nodes = [
            SlotResource(loop, self.slots_per_node) for _ in range(self.lnode_count)
        ]
        report = ClusterRunReport(0.0, sum(job.logical_bytes for job in jobs))

        def dispatch(job: JobSpec, node: SlotResource) -> None:
            def start() -> None:
                # NIC share: jobs concurrently active on this node split
                # its bandwidth; a job's share is fixed at start time
                # (a standard approximation that keeps the kernel simple
                # and errs pessimistically under heavy contention).
                concurrent = max(1, node.busy)
                bandwidth = self.model.node_nic_bandwidth / concurrent
                network_seconds = job.network_bytes / bandwidth
                duration = max(job.cpu_seconds, network_seconds)

                def finish() -> None:
                    report.completion_times.append(loop.now)
                    node.release()

                loop.schedule(duration, finish)

            node.acquire(start)

        # Round-robin placement, as the facade's scheduler does.
        for index, job in enumerate(jobs):
            dispatch(job, nodes[index % len(nodes)])

        report.makespan_seconds = loop.run()
        return report

    def backup_throughput(self, job: JobSpec, jobs: int) -> float:
        """Aggregate MB/s for ``jobs`` identical concurrent jobs."""
        report = self.run([job] * jobs)
        return report.aggregate_throughput_mb_s
