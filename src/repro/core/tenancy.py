"""Multi-tenant backup service.

The paper's setting is a cloud backup *service*: many users, each with
their own backup data and their own global index ("Global index maintains
the information of all chunks of a user"), sharing the cloud's elastic
compute.  :class:`BackupService` realises that: per-tenant SLIMSTORE
deployments isolated in per-tenant buckets on one OSS endpoint, with a
shared L-node budget whose utilisation the service tracks.

Tenant isolation is strict by construction: deduplication, indexes,
containers, catalogs and snapshots are all per-bucket, so no tenant's data
or fingerprints are visible to another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SlimStoreConfig
from repro.core.system import SlimStore
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel


def _safe_tenant_name(tenant: str) -> str:
    if not tenant or not all(c.isalnum() or c in "-_" for c in tenant):
        raise ValueError(
            f"tenant names must be non-empty alphanumeric/-/_: {tenant!r}"
        )
    return tenant.lower()


@dataclass
class TenantUsage:
    """Per-tenant service accounting."""

    tenant: str
    backup_jobs: int = 0
    restore_jobs: int = 0
    logical_bytes_backed_up: int = 0
    stored_bytes: int = 0


class BackupService:
    """Per-tenant SLIMSTORE deployments over one OSS endpoint."""

    def __init__(
        self,
        oss: ObjectStorageService | None = None,
        config: SlimStoreConfig | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.oss = oss or ObjectStorageService(self.cost_model)
        self.default_config = config or SlimStoreConfig()
        self._stores: dict[str, SlimStore] = {}
        self._usage: dict[str, TenantUsage] = {}

    # --- tenant management -------------------------------------------------
    def store_for(
        self, tenant: str, config: SlimStoreConfig | None = None
    ) -> SlimStore:
        """The tenant's deployment, created (and recovered) on first use.

        ``config`` applies only at creation; an existing tenant keeps the
        configuration it was created with.
        """
        name = _safe_tenant_name(tenant)
        store = self._stores.get(name)
        if store is None:
            store = SlimStore(
                config or self.default_config,
                self.oss,
                self.cost_model,
                bucket=f"tenant-{name}",
            )
            store.recover()
            self._stores[name] = store
            self._usage[name] = TenantUsage(name)
        return store

    def tenants(self) -> list[str]:
        """Tenants seen by this service instance, sorted."""
        return sorted(self._stores)

    # --- proxied operations with accounting -----------------------------------
    def backup(self, tenant: str, path: str, data: bytes, **kwargs):
        """Back up on behalf of a tenant (usage-accounted)."""
        store = self.store_for(tenant)
        report = store.backup(path, data, **kwargs)
        usage = self._usage[_safe_tenant_name(tenant)]
        usage.backup_jobs += 1
        usage.logical_bytes_backed_up += report.result.logical_bytes
        return report

    def restore(self, tenant: str, path: str, version: int | None = None, **kwargs):
        """Restore on behalf of a tenant (usage-accounted)."""
        store = self.store_for(tenant)
        result = store.restore(path, version, **kwargs)
        self._usage[_safe_tenant_name(tenant)].restore_jobs += 1
        return result

    def usage(self, tenant: str) -> TenantUsage:
        """Current usage of ``tenant`` (stored bytes refreshed on call)."""
        name = _safe_tenant_name(tenant)
        store = self._stores.get(name)
        if store is None:
            return TenantUsage(name)
        usage = self._usage[name]
        usage.stored_bytes = store.space_report().total_bytes
        return usage

    def total_stored_bytes(self) -> int:
        """Service-wide stored bytes across tenants (free accounting)."""
        return sum(
            store.space_report().total_bytes for store in self._stores.values()
        )
