"""Multi-tenant backup service.

The paper's setting is a cloud backup *service*: many users, each with
their own backup data and their own global index ("Global index maintains
the information of all chunks of a user"), sharing the cloud's elastic
compute.  :class:`BackupService` realises that: per-tenant SLIMSTORE
deployments isolated in per-tenant buckets on one OSS endpoint, with a
shared L-node budget whose utilisation the service tracks.

Tenant isolation is strict by construction: deduplication, indexes,
containers, catalogs and snapshots are all per-bucket, so no tenant's data
or fingerprints are visible to another.  All tenants' retry layers share
one :class:`~repro.oss.retry.RetryBudget`, so a degraded OSS endpoint sees
a bounded aggregate retry volume rather than N independent retry storms.

Beyond attach/backup/restore, the service owns the tenant *lifecycle*:

* :class:`RetentionPolicy` — ``keep_last_n`` / ``keep_days`` rules applied
  through the engine's FIFO two-phase ``delete_version`` machinery.
* per-tenant metadata (:class:`TenantMeta`) persisted inside the tenant's
  own bucket at :data:`TENANT_META_KEY`, so retention rules, fair-share
  weights and backup timestamps survive re-attachment from a different
  service node (the lease-takeover path of the control plane).
* :meth:`BackupService.remove_tenant` — full account removal over the
  existing tombstone/deep-clean machinery.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.config import SlimStoreConfig
from repro.core.system import SlimStore
from repro.oss.object_store import ObjectStorageService
from repro.oss.retry import RetryBudget, RetryPolicy
from repro.sim.cost_model import CostModel

#: Per-tenant service metadata object, inside the tenant's own bucket.
TENANT_META_KEY = "service/meta.json"

#: Seconds per day, for ``keep_days`` retention arithmetic.
_DAY_SECONDS = 86400.0


def _safe_tenant_name(tenant: str) -> str:
    """Validate a tenant name; returns it unchanged.

    Names are restricted to lowercase alphanumerics plus ``-``/``_``.
    Mixed-case names are rejected outright: an earlier revision folded
    them to lowercase after validation, which made ``"Alice"`` and
    ``"alice"`` silently share one bucket — a tenant-isolation violation,
    not a convenience.
    """
    if not tenant or not all(c.isalnum() or c in "-_" for c in tenant):
        raise ValueError(
            f"tenant names must be non-empty alphanumeric/-/_: {tenant!r}"
        )
    if tenant != tenant.lower():
        raise ValueError(
            f"tenant names must be lowercase: {tenant!r} (mixed-case names "
            "would collide with their folded form)"
        )
    return tenant


@dataclass(frozen=True)
class RetentionPolicy:
    """Which backup versions a tenant keeps.

    A version is *protected* (kept) if **either** rule protects it:
    ``keep_last_n`` protects the newest N versions of each path,
    ``keep_days`` protects versions whose recorded backup time falls
    within the trailing window.  A rule set to None contributes nothing;
    with both rules None the policy protects everything (an unconfigured
    policy never deletes).  Versions with no recorded timestamp are
    treated as arbitrarily old, so ``keep_days`` alone never protects
    them — pair it with ``keep_last_n`` when timestamps may be missing.
    """

    keep_last_n: int | None = None
    keep_days: float | None = None

    def __post_init__(self) -> None:
        if self.keep_last_n is not None and self.keep_last_n < 0:
            raise ValueError(f"keep_last_n cannot be negative: {self.keep_last_n}")
        if self.keep_days is not None and self.keep_days < 0:
            raise ValueError(f"keep_days cannot be negative: {self.keep_days}")

    def protected(
        self, versions: list[int], times: dict[int, float], now: float
    ) -> set[int]:
        """The subset of ``versions`` this policy keeps at time ``now``."""
        if self.keep_last_n is None and self.keep_days is None:
            return set(versions)
        ordered = sorted(versions)
        keep: set[int] = set()
        if self.keep_last_n is not None and self.keep_last_n > 0:
            keep.update(ordered[-self.keep_last_n :])
        if self.keep_days is not None:
            cutoff = now - self.keep_days * _DAY_SECONDS
            keep.update(
                v for v in ordered if times.get(v, float("-inf")) >= cutoff
            )
        return keep

    def to_json_dict(self) -> dict:
        return {"keep_last_n": self.keep_last_n, "keep_days": self.keep_days}

    @classmethod
    def from_json_dict(cls, raw: dict) -> "RetentionPolicy":
        return cls(
            keep_last_n=raw.get("keep_last_n"), keep_days=raw.get("keep_days")
        )


@dataclass
class TenantMeta:
    """Service-side tenant state, persisted in the tenant's bucket.

    Lives at :data:`TENANT_META_KEY` so any service node that attaches
    the tenant (including a lease takeover after node death) sees the
    same retention rules, fair-share weight and backup timestamps.  The
    meta object is republished after the backup's catalog commit, so a
    crash between the two loses at most the newest timestamp — which the
    retention rules already treat as "arbitrarily old", i.e. safe.
    """

    retention: RetentionPolicy | None = None
    #: Fair-share weight of this tenant's jobs (see the control plane).
    weight: float = 1.0
    #: Backup completion time per ``path`` per ``version``.
    backup_times: dict[str, dict[int, float]] = field(default_factory=dict)

    def record_backup(self, path: str, version: int, timestamp: float) -> None:
        self.backup_times.setdefault(path, {})[version] = timestamp

    def to_json(self) -> str:
        return json.dumps(
            {
                "retention": (
                    None if self.retention is None else self.retention.to_json_dict()
                ),
                "weight": self.weight,
                "backup_times": {
                    path: {str(v): t for v, t in times.items()}
                    for path, times in self.backup_times.items()
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TenantMeta":
        raw = json.loads(text)
        retention = raw.get("retention")
        return cls(
            retention=(
                None
                if retention is None
                else RetentionPolicy.from_json_dict(retention)
            ),
            weight=float(raw.get("weight", 1.0)),
            backup_times={
                path: {int(v): float(t) for v, t in times.items()}
                for path, times in raw.get("backup_times", {}).items()
            },
        )


@dataclass
class TenantUsage:
    """Per-tenant service accounting."""

    tenant: str
    backup_jobs: int = 0
    restore_jobs: int = 0
    logical_bytes_backed_up: int = 0
    stored_bytes: int = 0


@dataclass
class RetentionReport:
    """One retention pass over one tenant."""

    tenant: str
    #: ``(path, version)`` pairs collected, in deletion order.
    deleted: list[tuple[str, int]] = field(default_factory=list)
    reclaimed_bytes: int = 0


class BackupService:
    """Per-tenant SLIMSTORE deployments over one OSS endpoint."""

    def __init__(
        self,
        oss: ObjectStorageService | None = None,
        config: SlimStoreConfig | None = None,
        cost_model: CostModel | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.oss = oss or ObjectStorageService(self.cost_model)
        self.default_config = config or SlimStoreConfig()
        self.retry_policy = retry_policy
        #: Shared across every tenant's retry layer (fleet-wide guard);
        #: only wired when a retry policy is in force.
        self.retry_budget = retry_budget
        self._stores: dict[str, SlimStore] = {}
        self._configs: dict[str, SlimStoreConfig] = {}
        self._usage: dict[str, TenantUsage] = {}
        self._meta: dict[str, TenantMeta] = {}

    # --- tenant management -------------------------------------------------
    def store_for(
        self, tenant: str, config: SlimStoreConfig | None = None
    ) -> SlimStore:
        """The tenant's deployment, created (and recovered) on first use.

        ``config`` applies only at creation; an existing tenant keeps the
        configuration it was created with.
        """
        name = _safe_tenant_name(tenant)
        store = self._stores.get(name)
        if store is None:
            store = self._attach(name, config or self.default_config)
        return store

    def _attach(self, name: str, config: SlimStoreConfig) -> SlimStore:
        """Attach (create or recover) one tenant's deployment."""
        store = SlimStore(
            config,
            self.oss,
            self.cost_model,
            bucket=f"tenant-{name}",
            retry_policy=self.retry_policy,
            retry_budget=self.retry_budget,
        )
        store.recover()
        self._stores[name] = store
        self._configs[name] = config
        self._usage.setdefault(name, TenantUsage(name))
        self._meta[name] = self._load_meta(store)
        return store

    def reattach_tenant(self, tenant: str) -> SlimStore:
        """Drop the cached deployment and re-attach from OSS state.

        This is the lease-takeover path: the node that owned the tenant
        died mid-job, so the new owner rebuilds every in-memory structure
        from the bucket — which runs the
        :class:`~repro.core.recovery.RecoveryManager` over any intents
        the dead node left open, rolling its half-done jobs forward or
        discarding them before new work starts.
        """
        name = _safe_tenant_name(tenant)
        config = self._configs.get(name, self.default_config)
        self._stores.pop(name, None)
        return self._attach(name, config)

    def tenants(self) -> list[str]:
        """Tenants seen by this service instance, sorted."""
        return sorted(self._stores)

    # --- persisted tenant metadata -----------------------------------------
    def _load_meta(self, store: SlimStore) -> TenantMeta:
        endpoint = store.storage.oss
        if not endpoint.object_exists(store.bucket, TENANT_META_KEY):
            return TenantMeta()
        return TenantMeta.from_json(
            endpoint.get_object(store.bucket, TENANT_META_KEY).decode("utf-8")
        )

    def _save_meta(self, name: str) -> None:
        store = self._stores[name]
        store.storage.oss.put_object(
            store.bucket,
            TENANT_META_KEY,
            self._meta[name].to_json().encode("utf-8"),
        )

    def meta(self, tenant: str) -> TenantMeta:
        """The tenant's service metadata (attaches the tenant if needed)."""
        name = _safe_tenant_name(tenant)
        self.store_for(name)
        return self._meta[name]

    def set_retention(self, tenant: str, policy: RetentionPolicy | None) -> None:
        """Set (or clear, with None) the tenant's retention policy."""
        name = _safe_tenant_name(tenant)
        self.store_for(name)
        self._meta[name].retention = policy
        self._save_meta(name)

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set the tenant's fair-share weight (must be positive)."""
        if weight <= 0:
            raise ValueError(f"tenant weight must be positive: {weight}")
        name = _safe_tenant_name(tenant)
        self.store_for(name)
        self._meta[name].weight = float(weight)
        self._save_meta(name)

    def weight(self, tenant: str) -> float:
        """The tenant's fair-share weight (1.0 until configured)."""
        return self.meta(tenant).weight

    # --- proxied operations with accounting -----------------------------------
    def backup(
        self,
        tenant: str,
        path: str,
        data: bytes,
        timestamp: float | None = None,
        **kwargs,
    ):
        """Back up on behalf of a tenant (usage-accounted).

        ``timestamp`` is the caller's notion of *when* this backup ran
        (wall-clock from the CLI, virtual time from the simulator); it is
        recorded in the tenant metadata so ``keep_days`` retention can
        reason about version age.  None records nothing.
        """
        name = _safe_tenant_name(tenant)
        store = self.store_for(name)
        report = store.backup(path, data, **kwargs)
        usage = self._usage[name]
        usage.backup_jobs += 1
        usage.logical_bytes_backed_up += report.result.logical_bytes
        if timestamp is not None:
            self._meta[name].record_backup(path, report.version, timestamp)
            self._save_meta(name)
        return report

    def restore(self, tenant: str, path: str, version: int | None = None, **kwargs):
        """Restore on behalf of a tenant (usage-accounted)."""
        store = self.store_for(tenant)
        result = store.restore(path, version, **kwargs)
        self._usage[_safe_tenant_name(tenant)].restore_jobs += 1
        return result

    def usage(self, tenant: str) -> TenantUsage:
        """Current usage of ``tenant`` (stored bytes refreshed on call)."""
        name = _safe_tenant_name(tenant)
        store = self._stores.get(name)
        if store is None:
            return TenantUsage(name)
        usage = self._usage[name]
        usage.stored_bytes = store.space_report().total_bytes
        return usage

    def total_stored_bytes(self) -> int:
        """Service-wide stored bytes across tenants (free accounting)."""
        return sum(
            store.space_report().total_bytes for store in self._stores.values()
        )

    # --- tenant lifecycle ----------------------------------------------------
    def apply_retention(
        self, tenant: str, now: float | None = None
    ) -> RetentionReport:
        """Collect every version the tenant's retention policy no longer
        protects; returns what was deleted and the bytes reclaimed.

        Deletion goes through the engine's two-phase FIFO
        ``delete_version``, oldest-first per path, stopping at the first
        protected version — FIFO retention means a protected old version
        also shields everything newer, which is exactly the suffix shape
        ``keep_last_n``/``keep_days`` produce under monotone timestamps.
        With no policy configured this is a no-op.
        """
        name = _safe_tenant_name(tenant)
        store = self.store_for(name)
        meta = self._meta[name]
        report = RetentionReport(tenant=name)
        if meta.retention is None:
            return report
        if now is None:
            now = self.oss.clock.now
        for path in store.catalog.paths():
            versions = store.versions(path)
            keep = meta.retention.protected(
                versions, meta.backup_times.get(path, {}), now
            )
            for version in versions:
                if version in keep:
                    break
                report.reclaimed_bytes += store.delete_version(path, version)
                report.deleted.append((path, version))
                meta.backup_times.get(path, {}).pop(version, None)
        if report.deleted:
            self._save_meta(name)
        return report

    def remove_tenant(self, tenant: str) -> int:
        """Remove the tenant's account entirely; returns bytes reclaimed.

        Runs on the existing two-phase machinery — snapshots FIFO, then
        per-path versions oldest-first, then a G-node deep clean to reap
        tombstones — and finally deletes whatever bookkeeping objects
        remain (catalog, journal, indexes, metadata) in both tenant
        buckets.  The tenant disappears from this service instance; the
        name can be reused afterwards as a fresh account.
        """
        name = _safe_tenant_name(tenant)
        store = self.store_for(name)
        reclaimed = 0
        for snapshot_id in list(store.snapshots.list_ids()):
            reclaimed += store.delete_snapshot(snapshot_id)
        for path in store.catalog.paths():
            for version in store.versions(path):
                reclaimed += store.delete_version(path, version)
        reclaimed += store.gnode.deep_clean(stale_threshold=0.0)
        for bucket in (store.bucket, f"{store.bucket}-index"):
            for key in self.oss.peek_keys(bucket):
                self.oss.delete_object(bucket, key)
        self._stores.pop(name, None)
        self._configs.pop(name, None)
        self._usage.pop(name, None)
        self._meta.pop(name, None)
        return reclaimed
