"""The global fingerprint index (Section III-B, VI-A).

"Global index maintains the information of all chunks of a user, it saves
the mapping from the fingerprint of chunk to the container where it is
stored.  Global index is stored in Rocks-OSS...  Global index will be used
for G-node to accurately identify duplicates in the global scope."

Backed by the from-scratch LSM store in :mod:`repro.kvstore`, and since the
sharding refactor split into ``shard_count`` independent LSM stores keyed
by fingerprint prefix, each with its own in-memory Bloom filter ("a global
bloom filter is used to quickly filter out unique chunks").  Sharding buys
two things the single store could not provide:

* **Batched round trips** — :meth:`GlobalIndex.get_many` /
  :meth:`GlobalIndex.put_many` group a container's worth of fingerprints
  per shard so one Rocks-OSS ranged GET serves many lookups; the per-shard
  virtual seconds are reported so callers can charge the shard drains as
  parallel (max) or serial (sum).
* **Independent contention domains** — concurrent L-node ingest jobs and
  the G-node's reverse-dedup pass queue per shard, not on one global
  store; :mod:`repro.core.cluster` models exactly that with one
  :class:`~repro.sim.events.SlotResource` per shard.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import RetryExhaustedError, TransientOSSError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.lsm import LSMStore
from repro.oss.object_store import ObjectStorageService
from repro.sim.metrics import Counters

_VALUE = struct.Struct(">Q")


def shard_of(fp: bytes, shard_count: int) -> int:
    """Shard owning ``fp``: its two-byte prefix modulo the shard count.

    SHA-1 fingerprints are uniform, so prefix sharding balances shards to
    within sampling noise without any placement metadata.
    """
    if shard_count <= 1:
        return 0
    return int.from_bytes(fp[:2], "big") % shard_count


@dataclass
class BatchLookupResult:
    """Outcome of one batched (multi-shard) index lookup.

    ``owners`` maps every *answered* fingerprint to its container id (or
    None when unindexed); fingerprints whose shard store failed even after
    retries land in ``failed`` instead, so a degraded G-node pass can skip
    them without aborting.  ``shard_seconds`` holds the virtual OSS read
    seconds spent per shard touched — the caller decides whether the shard
    drains overlapped (:meth:`parallel_seconds`) or serialised
    (:meth:`serial_seconds`).
    """

    owners: dict[bytes, int | None] = field(default_factory=dict)
    failed: list[bytes] = field(default_factory=list)
    shard_seconds: list[float] = field(default_factory=list)

    def parallel_seconds(self) -> float:
        """Wall-clock of the batch when shard drains run concurrently."""
        return max(self.shard_seconds, default=0.0)

    def serial_seconds(self) -> float:
        """Wall-clock of the batch when shards are drained one by one."""
        return sum(self.shard_seconds)


class GlobalIndex:
    """fingerprint → container id, sharded over Rocks-OSS LSM stores."""

    def __init__(
        self,
        oss: ObjectStorageService,
        bucket: str = "slimstore-index",
        bloom_capacity: int = 1 << 20,
        use_bloom: bool = True,
        shard_count: int = 1,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1: {shard_count}")
        self._oss = oss
        self._bucket = bucket
        self.shard_count = shard_count
        # A single shard keeps the seed's store name so existing
        # repositories recover unchanged.
        self._shards = [
            LSMStore(
                oss,
                bucket,
                name="global-index" if shard_count == 1 else f"global-index-{i:03d}",
            )
            for i in range(shard_count)
        ]
        per_shard_capacity = max(1024, bloom_capacity // shard_count)
        self._blooms = (
            [BloomFilter(per_shard_capacity, 0.01) for _ in range(shard_count)]
            if use_bloom
            else None
        )
        self.counters = Counters()

    # --- sharding ------------------------------------------------------
    def shard_of(self, fp: bytes) -> int:
        """Shard index owning ``fp`` (fingerprint-prefix hashing)."""
        return shard_of(fp, self.shard_count)

    def _group_by_shard(self, fps: Iterable[bytes]) -> dict[int, list[bytes]]:
        grouped: dict[int, list[bytes]] = {}
        for fp in dict.fromkeys(fps):
            grouped.setdefault(self.shard_of(fp), []).append(fp)
        return grouped

    # --- single-key operations ----------------------------------------
    def maybe_contains(self, fp: bytes) -> bool:
        """Bloom prefilter: False means the fingerprint is definitely new.

        Always True when the Bloom filter is disabled, forcing the caller
        down the full index-lookup path (the ablation configuration).
        """
        if self._blooms is None:
            return True
        hit = fp in self._blooms[self.shard_of(fp)]
        if not hit:
            self.counters.add("bloom_rejections")
        return hit

    def maybe_contains_many(self, fps: Iterable[bytes]) -> list[bool]:
        """Batched Bloom prefilter: one verdict per fingerprint, in order.

        The ingest pipeline's lookup stage probes a whole segment's
        candidate fingerprints in one pass (purely in-memory — no OSS
        round trips), so only the survivors are worth batching into
        ``get_many`` round trips.  Rejections are counted exactly as the
        single-key :meth:`maybe_contains` would count them.
        """
        verdicts: list[bool] = []
        rejections = 0
        for fp in fps:
            if self._blooms is None:
                verdicts.append(True)
                continue
            hit = fp in self._blooms[self.shard_of(fp)]
            if not hit:
                rejections += 1
            verdicts.append(hit)
        if rejections:
            self.counters.add("bloom_rejections", rejections)
        return verdicts

    def lookup(self, fp: bytes) -> int | None:
        """Container currently owning ``fp``, or None."""
        self.counters.add("index_lookups")
        value = self._shards[self.shard_of(fp)].get(fp)
        if value is None:
            return None
        return _VALUE.unpack(value)[0]

    def assign(self, fp: bytes, container_id: int) -> None:
        """Point ``fp`` at ``container_id`` (insert or move)."""
        self.counters.add("index_assigns")
        shard = self.shard_of(fp)
        if self._blooms is not None:
            self._blooms[shard].add(fp)
        self._shards[shard].put(fp, _VALUE.pack(container_id))

    def remove(self, fp: bytes) -> None:
        """Drop the mapping for ``fp`` (its last copy was collected)."""
        self._shards[self.shard_of(fp)].delete(fp)

    # --- batched operations -------------------------------------------
    def get_many(self, fps: Iterable[bytes]) -> BatchLookupResult:
        """Resolve a batch of fingerprints, one multi-get per shard.

        Fingerprints are grouped by shard and each shard store answers its
        whole group through :meth:`~repro.kvstore.lsm.LSMStore.get_many`
        (coalesced ranged GETs).  A shard whose store raises — OSS
        unreachable even after retries — contributes its fingerprints to
        ``failed`` rather than poisoning the batch.
        """
        result = BatchLookupResult()
        for shard, group in sorted(self._group_by_shard(fps).items()):
            before = self._oss.stats.snapshot()
            try:
                values = self._shards[shard].get_many(group)
            except (TransientOSSError, RetryExhaustedError):
                result.failed.extend(group)
                self.counters.add("index_batch_shard_failures")
            else:
                for fp in group:
                    value = values.get(fp)
                    result.owners[fp] = (
                        None if value is None else _VALUE.unpack(value)[0]
                    )
            result.shard_seconds.append(self._oss.stats.diff(before).read_seconds)
            self.counters.add("index_batch_rpcs")
        self.counters.add("index_batch_lookups", len(result.owners) + len(result.failed))
        return result

    def put_many(self, assignments: Iterable[tuple[bytes, int]]) -> list[float]:
        """Batched :meth:`assign`; returns per-shard write seconds.

        Grouping per shard keeps each shard's WAL/memtable stream
        contiguous, and the returned per-shard virtual seconds let callers
        charge the shard writes as overlapped.
        """
        grouped: dict[int, list[tuple[bytes, bytes]]] = {}
        count = 0
        for fp, container_id in assignments:
            shard = self.shard_of(fp)
            if self._blooms is not None:
                self._blooms[shard].add(fp)
            grouped.setdefault(shard, []).append((fp, _VALUE.pack(container_id)))
            count += 1
        shard_seconds: list[float] = []
        for shard, items in sorted(grouped.items()):
            before = self._oss.stats.snapshot()
            self._shards[shard].put_many(items)
            shard_seconds.append(self._oss.stats.diff(before).write_seconds)
        self.counters.add("index_assigns", count)
        return shard_seconds

    # --- scans & maintenance ------------------------------------------
    def iter_items(self):
        """All (fingerprint, container id) mappings (full scan)."""
        for shard in self._shards:
            for fp, value in shard.iter_items():
                yield fp, _VALUE.unpack(value)[0]

    def flush(self) -> None:
        """Force every shard's LSM memtable to an SSTable on OSS."""
        for shard in self._shards:
            shard.flush()

    def recover(self) -> None:
        """Rebuild the LSM state (and the Bloom filters) from OSS.

        Used when attaching to an existing repository; each shard's Bloom
        filter is repopulated from that shard's scan so the prefilter
        stays sound.
        """
        for index, shard in enumerate(self._shards):
            shard.recover()
            if self._blooms is not None:
                for fp, _value in shard.iter_items():
                    self._blooms[index].add(fp)

    # --- introspection --------------------------------------------------
    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard entry and SSTable counts (free accounting)."""
        stats = []
        for shard in self._shards:
            entries = sum(1 for _ in shard.iter_items())
            stats.append({"entries": entries, "sstables": shard.sstable_count})
        return stats

    def stored_bytes(self) -> int:
        """Bytes the index occupies on OSS (free accounting)."""
        return sum(
            self._oss.peek_size(self._bucket, key) or 0
            for key in self._oss.peek_keys(self._bucket)
        )
