"""The global fingerprint index (Section III-B, VI-A).

"Global index maintains the information of all chunks of a user, it saves
the mapping from the fingerprint of chunk to the container where it is
stored.  Global index is stored in Rocks-OSS...  Global index will be used
for G-node to accurately identify duplicates in the global scope."

Backed by the from-scratch LSM store in :mod:`repro.kvstore`.  The G-node
fronts it with an in-memory Bloom filter ("a global bloom filter is used to
quickly filter out unique chunks"), whose effect the G-dedup ablation bench
measures.
"""

from __future__ import annotations

import struct

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.lsm import LSMStore
from repro.oss.object_store import ObjectStorageService
from repro.sim.metrics import Counters

_VALUE = struct.Struct(">Q")


class GlobalIndex:
    """fingerprint → container id, on the Rocks-OSS LSM store."""

    def __init__(
        self,
        oss: ObjectStorageService,
        bucket: str = "slimstore-index",
        bloom_capacity: int = 1 << 20,
        use_bloom: bool = True,
    ) -> None:
        self._oss = oss
        self._bucket = bucket
        self._store = LSMStore(oss, bucket, name="global-index")
        self._bloom = BloomFilter(bloom_capacity, 0.01) if use_bloom else None
        self.counters = Counters()

    def maybe_contains(self, fp: bytes) -> bool:
        """Bloom prefilter: False means the fingerprint is definitely new.

        Always True when the Bloom filter is disabled, forcing the caller
        down the full index-lookup path (the ablation configuration).
        """
        if self._bloom is None:
            return True
        hit = fp in self._bloom
        if not hit:
            self.counters.add("bloom_rejections")
        return hit

    def lookup(self, fp: bytes) -> int | None:
        """Container currently owning ``fp``, or None."""
        self.counters.add("index_lookups")
        value = self._store.get(fp)
        if value is None:
            return None
        return _VALUE.unpack(value)[0]

    def assign(self, fp: bytes, container_id: int) -> None:
        """Point ``fp`` at ``container_id`` (insert or move)."""
        self.counters.add("index_assigns")
        if self._bloom is not None:
            self._bloom.add(fp)
        self._store.put(fp, _VALUE.pack(container_id))

    def remove(self, fp: bytes) -> None:
        """Drop the mapping for ``fp`` (its last copy was collected)."""
        self._store.delete(fp)

    def iter_items(self):
        """All (fingerprint, container id) mappings (full scan)."""
        for fp, value in self._store.iter_items():
            yield fp, _VALUE.unpack(value)[0]

    def flush(self) -> None:
        """Force the LSM memtable to an SSTable on OSS."""
        self._store.flush()

    def recover(self) -> None:
        """Rebuild the LSM state (and the Bloom filter) from OSS.

        Used when attaching to an existing repository; the Bloom filter is
        repopulated from a full index scan so the prefilter stays sound.
        """
        self._store.recover()
        if self._bloom is not None:
            for fp, _value in self._store.iter_items():
                self._bloom.add(fp)

    def stored_bytes(self) -> int:
        """Bytes the index occupies on OSS (free accounting)."""
        return sum(
            self._oss.peek_size(self._bucket, key) or 0
            for key in self._oss.peek_keys(self._bucket)
        )
