"""Recipes: the logical chunk sequence of each backup version.

"Recipe is the data structure that describes the logical sequence of chunks
of a backup file.  A recipe consists of chunk records, and each chunk
record is stored as a quadruple <fp, containerID, size, duplicateTimes>"
(Section III-B).  Superchunk records (Section IV-C) additionally carry the
``firstChunk`` fingerprint and its size, which Algorithm 1 needs to match
superchunks in later versions.

Recipes are segmented: consecutive chunks form segments, each with its own
segment recipe, and a *recipe index* maps sampled fingerprints to segment
ordinals so L-nodes can prefetch exactly the similar segment recipes they
need (logical locality).  The on-OSS layout keeps a segment offset table in
the header, so one segment costs one ranged GET.
"""

from __future__ import annotations

import struct
import urllib.parse
from dataclasses import dataclass, field

from repro.errors import RecipeError, VersionNotFoundError
from repro.fingerprint.hashing import FP_SIZE
from repro.oss.object_store import ObjectStorageService

_RECIPE_HEADER = struct.Struct(">8sIQI")       # magic, version, total bytes, segments
_RECORD_FIXED = struct.Struct(">20sQIIB")      # fp, container, size, dupTimes, flags
_SUPERCHUNK_EXTRA = struct.Struct(">20sI")     # first fp, first size
_INDEX_ENTRY = struct.Struct(">20sI")          # sampled fp, segment ordinal
_MAGIC = b"RECIPE01"
_FLAG_SUPERCHUNK = 1


@dataclass
class ChunkRecord:
    """One chunk record of a recipe (the paper's quadruple, plus flags)."""

    fp: bytes
    container_id: int
    size: int
    duplicate_times: int = 0
    is_superchunk: bool = False
    first_fp: bytes = b""
    first_size: int = 0
    #: Transient: whether this record was identified as a duplicate during
    #: the backup that emitted it.  Not serialised.
    is_duplicate: bool = False

    def __post_init__(self) -> None:
        if len(self.fp) != FP_SIZE:
            raise RecipeError(f"bad fingerprint length {len(self.fp)}")
        if self.is_superchunk and len(self.first_fp) != FP_SIZE:
            raise RecipeError("superchunk record requires a firstChunk fingerprint")

    def to_bytes(self) -> bytes:
        flags = _FLAG_SUPERCHUNK if self.is_superchunk else 0
        blob = _RECORD_FIXED.pack(
            self.fp, self.container_id, self.size, self.duplicate_times, flags
        )
        if self.is_superchunk:
            blob += _SUPERCHUNK_EXTRA.pack(self.first_fp, self.first_size)
        return blob

    @classmethod
    def read_from(cls, payload: bytes, offset: int) -> tuple["ChunkRecord", int]:
        fp, container_id, size, duplicate_times, flags = _RECORD_FIXED.unpack_from(
            payload, offset
        )
        offset += _RECORD_FIXED.size
        first_fp, first_size = b"", 0
        if flags & _FLAG_SUPERCHUNK:
            first_fp, first_size = _SUPERCHUNK_EXTRA.unpack_from(payload, offset)
            offset += _SUPERCHUNK_EXTRA.size
        record = cls(
            fp=fp,
            container_id=container_id,
            size=size,
            duplicate_times=duplicate_times,
            is_superchunk=bool(flags & _FLAG_SUPERCHUNK),
            first_fp=first_fp,
            first_size=first_size,
        )
        return record, offset


@dataclass
class Recipe:
    """A backup version's full recipe: segments of chunk records."""

    path: str
    version: int
    total_bytes: int = 0
    segments: list[list[ChunkRecord]] = field(default_factory=list)

    def all_records(self) -> list[ChunkRecord]:
        """The flat chunk sequence across all segments."""
        return [record for segment in self.segments for record in segment]

    def chunk_count(self) -> int:
        """Total number of chunk records."""
        return sum(len(segment) for segment in self.segments)

    def referenced_containers(self) -> set[int]:
        """Every container id any record points at."""
        return {record.container_id for segment in self.segments for record in segment}

    # --- serialisation -------------------------------------------------------
    def to_bytes(self) -> bytes:
        segment_blobs = [
            b"".join(record.to_bytes() for record in segment) for segment in self.segments
        ]
        header = _RECIPE_HEADER.pack(_MAGIC, self.version, self.total_bytes, len(segment_blobs))
        offsets = bytearray()
        counts = bytearray()
        position = 0
        for segment, blob in zip(self.segments, segment_blobs):
            offsets += struct.pack(">Q", position)
            counts += struct.pack(">I", len(segment))
            position += len(blob)
        offsets += struct.pack(">Q", position)  # end sentinel
        return header + bytes(offsets) + bytes(counts) + b"".join(segment_blobs)

    @classmethod
    def from_bytes(cls, path: str, payload: bytes) -> "Recipe":
        magic, version, total_bytes, segment_count = _RECIPE_HEADER.unpack_from(payload, 0)
        if magic != _MAGIC:
            raise RecipeError(f"bad recipe magic for {path}")
        offsets, counts, data_start = _parse_tables(payload, segment_count)
        segments: list[list[ChunkRecord]] = []
        for ordinal in range(segment_count):
            segments.append(
                _parse_segment(payload, data_start + offsets[ordinal], counts[ordinal])
            )
        return cls(path=path, version=version, total_bytes=total_bytes, segments=segments)


def _parse_tables(payload: bytes, segment_count: int) -> tuple[list[int], list[int], int]:
    position = _RECIPE_HEADER.size
    offsets = [
        struct.unpack_from(">Q", payload, position + 8 * i)[0]
        for i in range(segment_count + 1)
    ]
    position += 8 * (segment_count + 1)
    counts = [
        struct.unpack_from(">I", payload, position + 4 * i)[0] for i in range(segment_count)
    ]
    position += 4 * segment_count
    return offsets, counts, position


def _parse_segment(payload: bytes, offset: int, count: int) -> list[ChunkRecord]:
    records: list[ChunkRecord] = []
    for _ in range(count):
        record, offset = ChunkRecord.read_from(payload, offset)
        records.append(record)
    return records


@dataclass
class RecipeIndex:
    """Sampled fingerprint → segment ordinal map for one recipe.

    "we extract several representative fingerprints for each segment as
    samples and map them to the offset of their segment recipe" (Sec III-B).
    """

    entries: dict[bytes, list[int]] = field(default_factory=dict)

    def add(self, fp: bytes, ordinal: int) -> None:
        """Register a sampled fingerprint for a segment ordinal."""
        ordinals = self.entries.setdefault(fp, [])
        if ordinal not in ordinals:
            ordinals.append(ordinal)

    def lookup(self, fp: bytes) -> list[int]:
        """Segment ordinals whose sample set contains ``fp``."""
        return self.entries.get(fp, [])

    def __len__(self) -> int:
        return sum(len(ordinals) for ordinals in self.entries.values())

    def to_bytes(self) -> bytes:
        blob = bytearray(struct.pack(">I", len(self)))
        for fp, ordinals in sorted(self.entries.items()):
            for ordinal in ordinals:
                blob += _INDEX_ENTRY.pack(fp, ordinal)
        return bytes(blob)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RecipeIndex":
        (count,) = struct.unpack_from(">I", payload, 0)
        index = cls()
        position = 4
        for _ in range(count):
            fp, ordinal = _INDEX_ENTRY.unpack_from(payload, position)
            position += _INDEX_ENTRY.size
            index.add(fp, ordinal)
        return index


class RecipeHandle:
    """Lazy per-segment access to one recipe stored on OSS.

    Loads only the header and segment offset table up front; each segment
    recipe costs one ranged GET, which is the "prefetch similar segment"
    operation of the dedup workflow (Section IV-A, step 2).
    """

    def __init__(
        self, oss: ObjectStorageService, bucket: str, object_key: str, path: str
    ) -> None:
        self._oss = oss
        self._bucket = bucket
        self._key = object_key
        self.path = path
        header = oss.get_range(bucket, object_key, 0, _RECIPE_HEADER.size)
        magic, self.version, self.total_bytes, self.segment_count = _RECIPE_HEADER.unpack(
            header
        )
        if magic != _MAGIC:
            raise RecipeError(f"bad recipe magic for {path}")
        tables_len = 8 * (self.segment_count + 1) + 4 * self.segment_count
        tables = oss.get_range(bucket, object_key, _RECIPE_HEADER.size, tables_len)
        self._offsets, self._counts, __ = _parse_tables(
            header + tables, self.segment_count
        )
        self._data_start = _RECIPE_HEADER.size + tables_len

    def get_segment(self, ordinal: int) -> list[ChunkRecord]:
        """Fetch one segment recipe (one ranged GET)."""
        return self.get_segment_range(ordinal, 1)[0]

    def get_segment_range(self, start: int, count: int) -> list[list[ChunkRecord]]:
        """Fetch ``count`` consecutive segment recipes with ONE ranged GET.

        Segment recipes are contiguous in the recipe object, so a prefetch
        span costs a single request — this is what keeps recipe prefetching
        off the critical path at 4 KB chunk sizes.
        """
        if not 0 <= start < self.segment_count:
            raise RecipeError(f"segment {start} out of range [0, {self.segment_count})")
        count = min(count, self.segment_count - start)
        if count < 1:
            raise RecipeError("segment range must cover at least one segment")
        begin = self._data_start + self._offsets[start]
        length = self._offsets[start + count] - self._offsets[start]
        payload = self._oss.get_range(self._bucket, self._key, begin, length)
        segments: list[list[ChunkRecord]] = []
        position = 0
        for ordinal in range(start, start + count):
            records: list[ChunkRecord] = []
            for _ in range(self._counts[ordinal]):
                record, position = ChunkRecord.read_from(payload, position)
                records.append(record)
            segments.append(records)
        return segments


class RecipeStore:
    """The recipe half of the storage layer, resident on OSS."""

    RECIPE_KEY = "recipes/{path}/{version:06d}"
    INDEX_KEY = "recipeidx/{path}/{version:06d}"

    def __init__(self, oss: ObjectStorageService, bucket: str = "slimstore") -> None:
        self._oss = oss
        self._bucket = bucket
        oss.create_bucket(bucket)

    @staticmethod
    def _safe(path: str) -> str:
        return urllib.parse.quote(path, safe="")

    def _recipe_key(self, path: str, version: int) -> str:
        return self.RECIPE_KEY.format(path=self._safe(path), version=version)

    def _index_key(self, path: str, version: int) -> str:
        return self.INDEX_KEY.format(path=self._safe(path), version=version)

    # --- recipes -----------------------------------------------------------
    def put_recipe(self, recipe: Recipe) -> int:
        """Persist (or overwrite) a recipe; returns bytes uploaded."""
        payload = recipe.to_bytes()
        self._oss.put_object(
            self._bucket, self._recipe_key(recipe.path, recipe.version), payload
        )
        return len(payload)

    def get_recipe(self, path: str, version: int) -> Recipe:
        """Load a full recipe (one whole-object GET)."""
        try:
            payload = self._oss.get_object(self._bucket, self._recipe_key(path, version))
        except KeyError as exc:
            raise VersionNotFoundError(path, version) from exc
        return Recipe.from_bytes(path, payload)

    def open_recipe(self, path: str, version: int) -> RecipeHandle:
        """Open a recipe for lazy per-segment access."""
        key = self._recipe_key(path, version)
        if self._oss.peek_size(self._bucket, key) is None:
            raise VersionNotFoundError(path, version)
        return RecipeHandle(self._oss, self._bucket, key, path)

    def delete_recipe(self, path: str, version: int) -> bool:
        """Delete a recipe and its index; True if the recipe existed."""
        existed = self._oss.delete_object(self._bucket, self._recipe_key(path, version))
        self._oss.delete_object(self._bucket, self._index_key(path, version))
        return existed

    # --- recipe indexes ---------------------------------------------------------
    def put_recipe_index(self, path: str, version: int, index: RecipeIndex) -> int:
        """Persist a recipe index; returns bytes uploaded."""
        payload = index.to_bytes()
        self._oss.put_object(self._bucket, self._index_key(path, version), payload)
        return len(payload)

    def get_recipe_index(self, path: str, version: int) -> RecipeIndex:
        """Load a recipe index."""
        try:
            payload = self._oss.get_object(self._bucket, self._index_key(path, version))
        except KeyError as exc:
            raise VersionNotFoundError(path, version) from exc
        return RecipeIndex.from_bytes(payload)

    # --- accounting ----------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Bytes of all recipes and indexes currently stored (free)."""
        total = 0
        for prefix in ("recipes/", "recipeidx/"):
            for key in self._oss.peek_keys(self._bucket, prefix):
                total += self._oss.peek_size(self._bucket, key) or 0
        return total
