"""The SLIMSTORE facade: storage layer + L-nodes + G-node + version catalog.

:class:`SlimStore` is the public API of the reproduction.  One instance
models one user's deployment: an OSS endpoint holding the storage layer,
a pool of stateless L-nodes serving online jobs, and a G-node running
offline space optimisation after every backup (when enabled).

Version collection follows Section VI-B: the *mark* phase happens during
deduplication (containers referenced by version N but not by N+1 are
associated with version N as garbage candidates), so deleting a version
only *sweeps* its pre-computed garbage list.  A global per-container
reference count guards containers shared across files through similarity
deduplication.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupResult
from repro.core.gnode import CompactionReport, GNode, ReverseDedupReport
from repro.core.lnode import LNode
from repro.core.restore import RestoreResult
from repro.core.snapshot import Snapshot, SnapshotStore
from repro.core.storage import StorageLayer
from repro.errors import (
    RetryExhaustedError,
    SimulatedCrashError,
    TransientOSSError,
    VersionNotFoundError,
)
from repro.oss.object_store import ObjectStorageService
from repro.oss.retry import RetryBudget, RetryPolicy
from repro.sim.cost_model import CostModel


@dataclass
class BackupReport:
    """One backup job plus the G-node work it triggered."""

    result: BackupResult
    reverse_dedup: ReverseDedupReport | None = None
    compaction: CompactionReport | None = None
    #: True when this version was persisted (or left) without complete
    #: dedup verification; :meth:`SlimStore.reclaim_degraded` clears it.
    degraded: bool = False
    #: Durability re-tiering pass this backup triggered (None when the
    #: tier is disabled or the pass was skipped).
    retier: "object | None" = None

    @property
    def path(self) -> str:
        """Backed-up file path."""
        return self.result.path

    @property
    def version(self) -> int:
        """Version number assigned to this backup."""
        return self.result.version

    @property
    def throughput_mb_s(self) -> float:
        """Online dedup throughput (G-node work is offline, excluded)."""
        return self.result.throughput_mb_s

    @property
    def dedup_ratio(self) -> float:
        """Online deduplication ratio of this version."""
        return self.result.dedup_ratio

    @property
    def pipeline(self):
        """Ingest pipeline stats (None unless ``ingest_pipeline`` is on)."""
        return self.result.pipeline


#: Restore reports are the engine results, re-exported for API symmetry.
RestoreReport = RestoreResult


@dataclass
class SpaceReport:
    """Bytes stored on OSS, split by component."""

    container_bytes: int
    recipe_bytes: int
    global_index_bytes: int
    similar_index_bytes: int
    #: Replicas, parity shards and manifests of the durability tier.
    durability_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """All backup-attributable bytes on OSS."""
        return (
            self.container_bytes
            + self.recipe_bytes
            + self.global_index_bytes
            + self.similar_index_bytes
            + self.durability_bytes
        )


class VersionCatalog:
    """Live versions, per-version container references, garbage lists."""

    def __init__(self) -> None:
        self._versions: dict[str, list[int]] = {}
        self._refs: dict[tuple[str, int], set[int]] = {}
        self._garbage: dict[tuple[str, int], set[int]] = {}
        self._refcount: Counter[int] = Counter()
        self._degraded: set[tuple[str, int]] = set()

    # --- persistence ------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the catalog (for durable repositories)."""
        return json.dumps(
            {
                "versions": self._versions,
                "refs": [
                    [path, version, sorted(cids)]
                    for (path, version), cids in sorted(self._refs.items())
                ],
                "garbage": [
                    [path, version, sorted(cids)]
                    for (path, version), cids in sorted(self._garbage.items())
                ],
                "degraded": [list(key) for key in sorted(self._degraded)],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "VersionCatalog":
        """Rebuild a catalog (reference counts are re-derived)."""
        raw = json.loads(payload)
        catalog = cls()
        catalog._versions = {path: list(v) for path, v in raw["versions"].items()}
        for path, version, cids in raw["refs"]:
            catalog._refs[(path, version)] = set(cids)
            for cid in cids:
                catalog._refcount[cid] += 1
        for path, version, cids in raw["garbage"]:
            catalog._garbage[(path, version)] = set(cids)
        # Catalogs persisted before degraded-mode tracking lack the key.
        for path, version in raw.get("degraded", []):
            catalog._degraded.add((path, version))
        return catalog

    # --- degraded-version tracking -----------------------------------------
    def mark_degraded(self, path: str, version: int) -> None:
        """Flag a version whose dedup verification is incomplete."""
        self._degraded.add((path, version))

    def clear_degraded(self, path: str, version: int) -> None:
        """Clear the degraded flag after a successful reclamation pass."""
        self._degraded.discard((path, version))

    def is_degraded(self, path: str, version: int) -> bool:
        """True while the version awaits out-of-line reclamation."""
        return (path, version) in self._degraded

    def degraded_versions(self) -> list[tuple[str, int]]:
        """All versions flagged degraded, sorted."""
        return sorted(self._degraded)

    def register(self, path: str, version: int, referenced: set[int]) -> None:
        """Mark phase: record references and diff against the predecessor."""
        self._versions.setdefault(path, []).append(version)
        self._refs[(path, version)] = set(referenced)
        for cid in referenced:
            self._refcount[cid] += 1
        previous = (path, version - 1)
        if previous in self._refs:
            dropped = self._refs[previous] - referenced
            if dropped:
                self._garbage.setdefault(previous, set()).update(dropped)

    def update_references(self, path: str, version: int, referenced: set[int]) -> None:
        """Re-point a committed version's references after maintenance.

        Sparse-container compaction runs *after* the version committed
        (crash-consistent ordering), so the reference set recorded at
        commit time can name containers the compactor has since emptied.
        This adjusts the per-container refcounts by set difference and
        re-runs the predecessor's mark-phase diff: any predecessor
        container no longer referenced by the new set joins the
        predecessor's garbage list (a superset of the commit-time diff,
        since compaction output containers are fresh ids that never
        appear in the predecessor's references).
        """
        key = (path, version)
        if key not in self._refs:
            raise VersionNotFoundError(path, version)
        old = self._refs[key]
        new = set(referenced)
        if new == old:
            return
        for cid in old - new:
            self._refcount[cid] -= 1
        for cid in new - old:
            self._refcount[cid] += 1
        self._refs[key] = new
        previous = (path, version - 1)
        if previous in self._refs:
            dropped = self._refs[previous] - new
            if dropped:
                self._garbage.setdefault(previous, set()).update(dropped)

    def references(self, path: str, version: int) -> set[int]:
        """Containers referenced by one committed version (a copy)."""
        key = (path, version)
        if key not in self._refs:
            raise VersionNotFoundError(path, version)
        return set(self._refs[key])

    def live_container_ids(self) -> set[int]:
        """Every container referenced by at least one committed version."""
        return {cid for cid, count in self._refcount.items() if count > 0}

    def refcount(self, container_id: int) -> int:
        """Live versions referencing one container (its "heat")."""
        return max(0, self._refcount.get(container_id, 0))

    def refcounts(self) -> dict[int, int]:
        """Per-container live reference counts (positive entries only)."""
        return {cid: count for cid, count in self._refcount.items() if count > 0}

    def add_garbage(self, path: str, version: int, container_ids: list[int]) -> None:
        """Associate extra garbage candidates (e.g. compacted sparse
        containers) with a version."""
        if container_ids:
            self._garbage.setdefault((path, version), set()).update(container_ids)

    def versions(self, path: str) -> list[int]:
        """Live versions of ``path``, ascending."""
        return sorted(self._versions.get(path, []))

    def paths(self) -> list[str]:
        """Every path with at least one live version, sorted."""
        return sorted(path for path, live in self._versions.items() if live)

    def drop_version(self, path: str, version: int) -> list[int]:
        """Sweep phase: release references, return collectable containers."""
        key = (path, version)
        if key not in self._refs:
            raise VersionNotFoundError(path, version)
        self._versions[path].remove(version)
        self._degraded.discard(key)
        references = self._refs.pop(key)
        for cid in references:
            self._refcount[cid] -= 1
        candidates = self._garbage.pop(key, set()) | references
        return sorted(cid for cid in candidates if self._refcount[cid] <= 0)


class SlimStore:
    """A complete SLIMSTORE deployment (public API)."""

    def __init__(
        self,
        config: SlimStoreConfig | None = None,
        oss: ObjectStorageService | None = None,
        cost_model: CostModel | None = None,
        bucket: str = "slimstore",
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
    ) -> None:
        self.config = config or SlimStoreConfig()
        self.cost_model = cost_model or CostModel()
        self.oss = oss or ObjectStorageService(self.cost_model)
        self.bucket = bucket
        self.storage = StorageLayer.create(
            self.oss,
            bucket=bucket,
            index_bucket=f"{bucket}-index",
            bloom_capacity=self.config.global_bloom_capacity,
            use_bloom=self.config.gdedup_bloom_filter,
            retry_policy=retry_policy,
            retry_budget=retry_budget,
            index_shard_count=self.config.index_shard_count,
            tombstone_grace_epochs=self.config.tombstone_grace_epochs,
            durability_policy=self.config.durability_policy(),
            fingerprint_algo=self.config.fingerprint_algo,
        )
        #: Wall-clock parallel execution engine (None when ``workers=0``):
        #: one shared instance so worker pools stay warm across jobs.
        self.executor = None
        if self.config.workers > 0:
            from repro.exec import ParallelExecutor

            self.executor = ParallelExecutor(
                self.config.workers, mode=self.config.exec_mode
            )
            # Concurrent ranged GETs ride the same pool (the raw endpoint
            # only uses it when no fault policy is installed).
            self.oss.io_pool = self.executor.io_pool
        self.lnodes = [
            LNode(i, self.config, self.storage, self.cost_model, self.executor)
            for i in range(self.config.lnode_count)
        ]
        self.gnode = GNode(self.config, self.storage, self.cost_model)
        self.catalog = VersionCatalog()
        # Snapshot metadata and the catalog ride the same (possibly
        # retrying) endpoint as the rest of the storage layer.
        self.snapshots = SnapshotStore(self.storage.oss, bucket)
        self._next_lnode = 0
        #: Report of the last attach-time recovery pass (None until
        #: :meth:`recover` runs against a dirty repository).
        self.last_recovery = None

    CATALOG_KEY = "catalog/state.json"

    def close(self) -> None:
        """Shut down worker pools and release cached file descriptors.

        Idempotent; a no-op for the default serial configuration.
        """
        if self.executor is not None:
            self.executor.close()
            self.oss.io_pool = None
        for name in self.oss.bucket_names():
            backend_close = getattr(self.oss._backend(name), "close", None)
            if backend_close is not None:
                backend_close()

    # --- durable repositories --------------------------------------------------
    def recover(self, run_recovery: bool = True) -> bool:
        """Attach to an existing repository on this OSS endpoint.

        Rebuilds every stateful component from storage: the intent
        journal, the container id space, the similar-file index, the
        global index (with its Bloom filter), the snapshot id sequence
        (reserving ids claimed by journaled-but-unpublished runs) and the
        version catalog.  Returns True if a catalog was found (i.e. the
        repository had prior backups).

        When the journal holds open intents, the container store reports
        torn ``.data``/``.meta`` pairs, or a two-phase reap was
        interrupted, a previous process died mid-job.  Unless
        ``run_recovery`` is False (``repro fsck`` inspects first), a
        :class:`~repro.core.recovery.RecoveryManager` pass rolls every
        interrupted job forward or discards it, collects orphans, and
        truncates the journal; its report lands in ``last_recovery``.
        """
        intents = self.storage.journal.recover()
        self.storage.containers.recover()
        if self.storage.durability is not None:
            self.storage.durability.recover()
        self.storage.similar_index.load()
        self.storage.global_index.recover()
        reserved = [
            str(intent.payload["snapshot_id"])
            for intent in intents
            if intent.kind == "snapshot" and "snapshot_id" in intent.payload
        ]
        self.snapshots.recover(reserved_ids=reserved)
        payload = None
        if self.storage.oss.peek_size(self.bucket, self.CATALOG_KEY) is not None:
            payload = self.storage.oss.get_object(self.bucket, self.CATALOG_KEY)
        found = payload is not None
        if found:
            self.catalog = VersionCatalog.from_json(payload.decode())
        self.last_recovery = None
        containers = self.storage.containers
        dirty = bool(intents or containers.torn_pairs or containers.partial_reaps)
        if run_recovery and dirty:
            from repro.core.recovery import RecoveryManager

            self.last_recovery = RecoveryManager(self).run(intents)
        return found

    def _persist_catalog(self) -> None:
        self.storage.oss.put_object(
            self.bucket, self.CATALOG_KEY, self.catalog.to_json().encode()
        )

    # --- node scheduling ----------------------------------------------------
    def _pick_lnode(self) -> LNode:
        node = self.lnodes[self._next_lnode % len(self.lnodes)]
        self._next_lnode += 1
        return node

    # --- public operations ------------------------------------------------------
    def backup(
        self,
        path: str,
        data: bytes,
        run_gnode: bool = True,
        rewrite_containers: set[int] | None = None,
    ) -> BackupReport:
        """Deduplicate and persist ``data`` as the next version of ``path``.

        Runs the G-node's offline jobs afterwards unless ``run_gnode`` is
        False (or the corresponding config switches are off).

        A G-node pass that cannot reach OSS (even after retries) never
        fails the backup: the version is flagged ``degraded`` and a later
        :meth:`reclaim_degraded` pass finishes the space optimisation.

        Commit ordering (crash consistency): container data and metas,
        the recipe and its index, and the similar-index registration are
        all written by the L-node job *before* the catalog object is
        re-published — the catalog put is the single atomic write that
        makes the version visible.  A ``backup`` intent (carrying the
        container-id watermark) brackets the uncommitted window so
        recovery can discard a half-written version and GC its orphaned
        containers; G-node maintenance runs only after the commit, under
        its own journal intents.
        """
        journal = self.storage.journal
        watermark = self.storage.containers.peek_next_id()
        seq = journal.begin("backup", path=path, watermark=watermark)
        node = self._pick_lnode()
        try:
            result = node.backup(path, data, rewrite_containers=rewrite_containers)
            # COMMIT: one atomic catalog write publishes the version.
            self.catalog.register(
                path, result.version, result.recipe.referenced_containers()
            )
            if result.degraded:
                self.catalog.mark_degraded(path, result.version)
            self._persist_catalog()
        except SimulatedCrashError:
            # The node is dead; the open intent is the recovery record.
            raise
        except Exception:
            # Still alive (e.g. retries exhausted): nothing uncommitted
            # survives this process, so retire the intent before failing.
            journal.close(seq)
            raise
        journal.close(seq)

        degraded = result.degraded
        reverse_report: ReverseDedupReport | None = None
        compaction_report: CompactionReport | None = None
        if run_gnode and self.config.reverse_dedup:
            watch = set(result.degraded_fps) if result.degraded_fps else None
            try:
                reverse_report = self.gnode.reverse_dedup(
                    result.new_container_ids, watch_fps=watch
                )
            except (TransientOSSError, RetryExhaustedError):
                degraded = True
            else:
                # A complete pass (every lookup answered) settles whatever
                # reclamation debt the online job accumulated; a partial
                # one leaves the version degraded for reclaim_degraded().
                degraded = bool(
                    reverse_report.counters.get("gdedup_lookup_failures")
                )
        if run_gnode and self.config.sparse_compaction:
            try:
                compaction_report = self.gnode.compact_sparse(result)
            except (TransientOSSError, RetryExhaustedError):
                degraded = True

        # Post-maintenance catalog fix-up: compaction re-pointed the
        # committed recipe at fresh containers, and the degraded flag may
        # have settled either way.  Re-publish the catalog only when
        # something actually changed.
        catalog_dirty = False
        if compaction_report is not None and compaction_report.sparse_containers:
            self.catalog.update_references(
                path, result.version, result.recipe.referenced_containers()
            )
            self.catalog.add_garbage(
                path, result.version, compaction_report.sparse_containers
            )
            catalog_dirty = True
        if degraded and not result.degraded:
            self.catalog.mark_degraded(path, result.version)
            catalog_dirty = True
        elif result.degraded and not degraded:
            self.catalog.clear_degraded(path, result.version)
            catalog_dirty = True
        if catalog_dirty:
            self._persist_catalog()
        if compaction_report is not None and compaction_report.journal_seq is not None:
            # The compaction intent outlives the pass on purpose: only
            # once the catalog republish above is durable has the version
            # fully converged on the compacted layout.
            journal.close(compaction_report.journal_seq)

        # Durability re-tiering joins the maintenance pass: reference
        # counts have settled (including any compaction fix-up above), so
        # promotion/demotion sees the version's final heat.  A tier that
        # cannot reach OSS never fails the backup — the next pass
        # converges it.
        retier_report = None
        if run_gnode and self.storage.durability is not None:
            try:
                retier_report = self.gnode.retier(self.catalog.refcounts())
            except SimulatedCrashError:
                raise
            except (TransientOSSError, RetryExhaustedError):
                pass
        return BackupReport(
            result, reverse_report, compaction_report, degraded, retier_report
        )

    def restore(
        self,
        path: str,
        version: int | None = None,
        prefetch_threads: int | None = None,
        verify: bool | None = None,
        ranged: bool | None = None,
    ) -> RestoreResult:
        """Restore a backup version (latest when ``version`` is None)."""
        if version is None:
            live = self.catalog.versions(path)
            if not live:
                raise VersionNotFoundError(path)
            version = live[-1]
        node = self._pick_lnode()
        return node.restore(path, version, prefetch_threads, verify, ranged)

    def versions(self, path: str) -> list[int]:
        """Live backup versions of ``path``."""
        return self.catalog.versions(path)

    # --- snapshots (full-volume backup runs) ------------------------------------
    def backup_snapshot(
        self, files: dict[str, bytes], run_gnode: bool = True
    ) -> tuple[str, list[BackupReport]]:
        """Back up one full-volume run: every file as its next version,
        grouped under a snapshot id.

        The run is journaled as a ``snapshot`` intent whose member map
        grows as each file commits, so a crash mid-run lets recovery
        publish a partial manifest covering exactly the committed
        members (each of which is individually consistent).
        """
        journal = self.storage.journal
        snapshot = Snapshot(self.snapshots.allocate_id())
        seq = journal.begin("snapshot", snapshot_id=snapshot.snapshot_id, members={})
        reports = []
        for path in sorted(files):
            report = self.backup(path, files[path], run_gnode=run_gnode)
            snapshot.members[path] = report.version
            reports.append(report)
            journal.update(
                seq,
                "snapshot",
                snapshot_id=snapshot.snapshot_id,
                members=dict(snapshot.members),
            )
        # COMMIT: the manifest put makes the snapshot visible.
        self.snapshots.put(snapshot)
        journal.close(seq)
        return snapshot.snapshot_id, reports

    def restore_snapshot(
        self, snapshot_id: str, prefetch_threads: int | None = None
    ) -> dict[str, bytes]:
        """Restore every file of a snapshot; returns path → bytes."""
        snapshot = self.snapshots.get(snapshot_id)
        return {
            path: self.restore(path, version, prefetch_threads).data
            for path, version in sorted(snapshot.members.items())
        }

    def delete_snapshot(self, snapshot_id: str) -> int:
        """Collect one snapshot (must be the oldest, FIFO retention);
        returns bytes reclaimed.

        Each member version is collected when it is the oldest live
        version of its path; members shared with newer snapshots (files
        that did not change between runs) are left alone.
        """
        ids = self.snapshots.list_ids()
        if not ids or snapshot_id != ids[0]:
            raise VersionNotFoundError(f"snapshot:{snapshot_id}")
        snapshot = self.snapshots.get(snapshot_id)
        retained: set[tuple[str, int]] = set()
        for other_id in ids[1:]:
            other = self.snapshots.get(other_id)
            retained.update(other.members.items())
        members = [
            [path, version]
            for path, version in sorted(snapshot.members.items())
            if (path, version) not in retained
        ]
        journal = self.storage.journal
        seq = journal.begin(
            "delete_snapshot", snapshot_id=snapshot_id, members=members
        )
        reclaimed = 0
        for path, version in members:
            live = self.catalog.versions(path)
            if live and live[0] == version:
                reclaimed += self.delete_version(path, version)
        # COMMIT: dropping the manifest retires the snapshot; recovery
        # re-runs the member deletes while the manifest still exists.
        self.snapshots.delete(snapshot_id)
        journal.close(seq)
        return reclaimed

    def delete_version(self, path: str, version: int) -> int:
        """Collect one version; returns bytes reclaimed.

        Only the oldest live version of a path may be deleted (FIFO
        retention), which keeps the mark-and-sweep garbage lists valid.

        Commit ordering: the collectable set is journaled, then the
        catalog (minus the version) is re-published — the commit point —
        and only afterwards are containers, recipe and similar-index
        entry physically removed (all idempotent, so recovery can replay
        them).  Under a tombstone grace the containers are entombed
        rather than deleted, keeping concurrent restores readable.
        """
        live = self.catalog.versions(path)
        if not live or version != live[0]:
            raise VersionNotFoundError(path, version)
        collectable = self.catalog.drop_version(path, version)
        forget = self.storage.similar_index.latest_version(path) == version
        journal = self.storage.journal
        seq = journal.begin(
            "delete_version",
            path=path,
            version=version,
            collectable=collectable,
            forget_similar=forget,
        )
        # COMMIT: the version disappears from the published catalog.
        self._persist_catalog()
        reclaimed = 0
        for cid in collectable:
            if self.storage.containers.exists(cid):
                reclaimed += self.storage.containers.container_size(cid)
                self.storage.containers.delete(cid)
        self.storage.recipes.delete_recipe(path, version)
        if forget:
            # The newest version is being retired entirely (last one left).
            self.storage.similar_index.forget_version(path, version)
        journal.close(seq)
        return reclaimed

    # --- maintenance -----------------------------------------------------------
    def scrub(self, repair: bool = False):
        """Verify repository integrity (containers + every live recipe).

        Returns a :class:`~repro.core.scrub.ScrubReport`.  With ``repair``
        the scrubber additionally heals corrupt chunks from a healthy copy
        reachable through the global-index redirect path and rewrites the
        damaged container, quarantining only truly unrecoverable chunks.
        """
        from repro.core.scrub import RepositoryScrubber

        live = {path: self.catalog.versions(path) for path in self.catalog.paths()}
        return RepositoryScrubber(self.storage).scrub(live, repair=repair)

    def reclaim_degraded(self) -> ReverseDedupReport | None:
        """Re-run reverse deduplication over every degraded version.

        A backup taken while OSS misbehaved stored chunks as unique
        without duplicate verification (degraded mode).  This pass feeds
        those versions' containers back through the G-node's reverse
        deduplication: redundant copies are reclaimed out-of-line and the
        degraded flag is cleared for every version whose pass completed
        with all index lookups answered.  Returns the merged report, or
        None when nothing was flagged.
        """
        merged: ReverseDedupReport | None = None
        for path, version in self.catalog.degraded_versions():
            recipe = self.storage.recipes.get_recipe(path, version)
            watch = {record.fp for record in recipe.all_records()}
            report = self.gnode.reverse_dedup(
                sorted(recipe.referenced_containers()), watch_fps=watch
            )
            if merged is None:
                merged = report
            else:
                merged.chunks_scanned += report.chunks_scanned
                merged.duplicates_removed += report.duplicates_removed
                merged.bytes_marked_deleted += report.bytes_marked_deleted
                merged.containers_rewritten += report.containers_rewritten
                merged.bytes_reclaimed += report.bytes_reclaimed
                merged.breakdown = merged.breakdown.merged_with(report.breakdown)
                merged.counters = merged.counters.merged_with(report.counters)
            if not report.counters.get("gdedup_lookup_failures"):
                self.catalog.clear_degraded(path, version)
        if merged is not None:
            self._persist_catalog()
        return merged

    def degraded_versions(self) -> list[tuple[str, int]]:
        """Versions still awaiting out-of-line reclamation."""
        return self.catalog.degraded_versions()

    # --- accounting ---------------------------------------------------------------
    def space_report(self) -> SpaceReport:
        """Current OSS space usage by component (free, no virtual time)."""
        return SpaceReport(
            container_bytes=self.storage.containers.stored_bytes(),
            recipe_bytes=self.storage.recipes.stored_bytes(),
            global_index_bytes=self.storage.global_index.stored_bytes(),
            similar_index_bytes=self.storage.similar_index.stored_bytes(),
            durability_bytes=(
                self.storage.durability.stored_bytes()
                if self.storage.durability is not None
                else 0
            ),
        )
