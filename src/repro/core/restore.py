"""Online restoration on the L-node (Section V).

The restore job loads the target recipe, builds the per-file counting Bloom
filter (full vision), and walks the chunk sequence with the look-ahead
window.  Containers are fetched whole; LAW-based prefetching overlaps those
reads with restore CPU over ``prefetch_threads`` parallel OSS channels, so
job duration is ``max(cpu, download/threads)`` — with 0 threads every read
blocks the pipeline (the Table II contrast).

Chunks of old versions may have been moved by reverse deduplication or
sparse container compaction; when a recipe's container no longer holds a
fingerprint, the job redirects through the global index (Section VI-A:
"may cause extra query of the global index ... when restoring old
versions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SlimStoreConfig
from repro.core.recipe import ChunkRecord
from repro.core.restore_cache import FullVisionCache, LookAheadWindow
from repro.core.storage import StorageLayer
from repro.errors import IntegrityError, RestoreError
from repro.fingerprint.hashing import fingerprint
from repro.kvstore.bloom import CountingBloomFilter
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown


@dataclass
class RestoreResult:
    """The restored stream plus everything the job observed."""

    path: str
    version: int
    data: bytes
    breakdown: TimeBreakdown
    counters: Counters
    prefetch_threads: int

    @property
    def logical_bytes(self) -> int:
        """Restored payload size."""
        return len(self.data)

    @property
    def containers_read(self) -> int:
        """Distinct container reads issued against OSS."""
        return self.counters.get("containers_read")

    @property
    def read_amplification(self) -> float:
        """OSS bytes read per restored byte."""
        if not self.data:
            return 0.0
        return self.counters.get("container_bytes_read") / len(self.data)

    @property
    def containers_per_100mb(self) -> float:
        """Containers read per 100 MB restored (the paper's Fig 8 metric)."""
        if not self.data:
            return 0.0
        return self.containers_read * (100 * (1 << 20)) / len(self.data)

    @property
    def elapsed_seconds(self) -> float:
        """Virtual job duration under the prefetching model."""
        cpu = self.breakdown.cpu_seconds()
        download = self.breakdown.download
        if self.prefetch_threads >= 1:
            return max(cpu, download / self.prefetch_threads)
        return cpu + download

    @property
    def throughput_mb_s(self) -> float:
        """Restore throughput in MB/s."""
        elapsed = self.elapsed_seconds
        if elapsed == 0:
            return 0.0
        return len(self.data) / elapsed / (1 << 20)


class RestoreEngine:
    """One L-node restore job."""

    def __init__(
        self,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
    ) -> None:
        self.config = config
        self.storage = storage
        self.cost_model = cost_model or CostModel()

    def restore(
        self,
        path: str,
        version: int,
        prefetch_threads: int | None = None,
        verify: bool | None = None,
    ) -> RestoreResult:
        """Reassemble one backup version from OSS."""
        threads = self.config.prefetch_threads if prefetch_threads is None else prefetch_threads
        check = self.config.verify_restore if verify is None else verify
        breakdown = TimeBreakdown()
        counters = Counters()

        before = self.storage.oss.stats.snapshot()
        recipe = self.storage.recipes.get_recipe(path, version)
        breakdown.charge("download", self.storage.oss.stats.diff(before).read_seconds)

        records = recipe.all_records()
        if not records:
            return RestoreResult(path, version, b"", breakdown, counters, threads)

        cbf = CountingBloomFilter(max(64, len(records)), false_positive_rate=0.001)
        for record in records:
            cbf.add(record.fp)
        law = LookAheadWindow(records, self.config.law_window_records)
        cache = FullVisionCache(
            self.config.restore_cache_bytes,
            self.config.restore_disk_cache_bytes,
            cbf,
            law,
        )

        output = bytearray()
        containers_seen: set[int] = set()
        for index, record in enumerate(records):
            data = cache.lookup(record.fp)
            if data is None:
                data = self._fetch_for(record, cache, containers_seen, breakdown, counters)
            if check:
                breakdown.charge("other", self.cost_model.fingerprint_cost(len(data)))
                if fingerprint(data) != record.fp:
                    raise IntegrityError(
                        f"chunk fingerprint mismatch restoring {path}@v{version} "
                        f"(record {index})"
                    )
            output += data
            breakdown.charge("other", self.cost_model.cpu_restore_per_byte * len(data))
            cache.consume(record.fp)
            law.advance_past(index)

        counters.counts.update(cache.counters.counts)
        return RestoreResult(path, version, bytes(output), breakdown, counters, threads)

    # ------------------------------------------------------------------
    def _fetch_for(
        self,
        record: ChunkRecord,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> bytes:
        """Read the record's container (redirecting if the chunk moved)."""
        data = self._read_container(
            record.container_id, record.fp, cache, containers_seen, breakdown, counters
        )
        if data is not None:
            return data

        # The chunk is gone from its recorded container: reverse dedup or
        # SCC moved it.  The global index knows the current owner.
        counters.add("global_index_redirects")
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        before = self.storage.oss.stats.snapshot()
        owner = self.storage.global_index.lookup(record.fp)
        breakdown.charge("download", self.storage.oss.stats.diff(before).read_seconds)
        if owner is None:
            raise RestoreError(
                f"chunk {record.fp.hex()[:12]} missing from container "
                f"{record.container_id} and unknown to the global index"
            )
        data = self._read_container(
            owner, record.fp, cache, containers_seen, breakdown, counters
        )
        if data is None:
            raise RestoreError(
                f"global index points chunk {record.fp.hex()[:12]} at container "
                f"{owner}, which does not hold it"
            )
        return data

    def _read_container(
        self,
        container_id: int,
        fp: bytes,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> bytes | None:
        """Whole-container read; inserts useful chunks into the cache."""
        if not self.storage.containers.exists(container_id):
            return None
        before = self.storage.oss.stats.snapshot()
        payload = self.storage.containers.read_data(container_id)
        meta = self.storage.containers.read_meta(container_id, piggyback=True)
        breakdown.charge("download", self.storage.oss.stats.diff(before).read_seconds)
        counters.add("containers_read")
        counters.add("container_bytes_read", len(payload))
        if container_id in containers_seen:
            counters.add("repeated_container_reads")
        containers_seen.add(container_id)

        cache.insert_container(meta, payload)
        entry = meta.find(fp)
        if entry is None or entry.deleted:
            return None
        return payload[entry.offset : entry.offset + entry.size]
