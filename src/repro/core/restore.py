"""Online restoration on the L-node (Section V).

The restore job loads the target recipe, builds the per-file counting Bloom
filter (full vision), and precomputes the container access schedule with
:class:`~repro.core.restore_plan.RestorePlanner`.  In ranged mode only the
planned chunk extents cross the wire (coalesced ranged GETs); in
whole-container mode the seed access pattern is preserved exactly.

Job duration comes from the event-driven LAW prefetch pipeline
(:func:`repro.sim.events.simulate_restore_pipeline`): ``prefetch_threads``
channels issue the planned reads ahead of the consumer, which blocks only
when the read holding its next chunk has not completed.  The closed form
``max(cpu, download/threads)`` the seed used stays available as
:attr:`RestoreResult.closed_form_elapsed_seconds` — the cross-check the
event schedule is validated against.

Chunks of old versions may have been moved by reverse deduplication or
sparse container compaction; when a recipe's container no longer holds a
fingerprint, the job redirects through the global index (Section VI-A:
"may cause extra query of the global index ... when restoring old
versions").  Ranged mode resolves those redirects at plan time; whole mode
discovers them lazily at consume time, as the seed did.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.core.config import SlimStoreConfig
from repro.core.recipe import ChunkRecord
from repro.core.restore_cache import FullVisionCache, LookAheadWindow
from repro.core.restore_plan import PlannedRead, RestorePlan, RestorePlanner
from repro.core.storage import StorageLayer
from repro.errors import IntegrityError, RestoreError
from repro.fingerprint.hashing import fingerprint
from repro.kvstore.bloom import CountingBloomFilter
from repro.sim.cost_model import CostModel
from repro.sim.events import PipelineStats, simulate_restore_pipeline
from repro.sim.metrics import Counters, TimeBreakdown
from repro.sim.parallel import prefetched_restore_time


@dataclass
class RestoreResult:
    """The restored stream plus everything the job observed."""

    path: str
    version: int
    data: bytes
    breakdown: TimeBreakdown
    counters: Counters
    prefetch_threads: int
    #: Whether the job used ranged container reads.
    ranged: bool = False
    #: Event-simulated pipeline outcome (None for an empty restore).
    pipeline: PipelineStats | None = None
    #: Serial prefix paid before the pipeline: recipe fetch + planning.
    setup_seconds: float = 0.0
    #: Measured duration of each container read, in issue order.
    read_seconds: list[float] = field(default_factory=list)
    #: Per record: index into ``read_seconds`` it triggered (-1: none).
    record_reads: list[int] = field(default_factory=list)
    #: Per record: CPU seconds spent verifying and splicing.
    record_cpu: list[float] = field(default_factory=list)
    #: Per record: synchronous demand-read seconds (redirects, evictions).
    demand_seconds: list[float] = field(default_factory=list)

    @property
    def logical_bytes(self) -> int:
        """Restored payload size."""
        return len(self.data)

    @property
    def containers_read(self) -> int:
        """Distinct container reads issued against OSS."""
        return self.counters.get("containers_read")

    @property
    def degraded_chunk_reads(self) -> int:
        """Chunks healed through the durability tier after a failed verify."""
        return self.counters.get("degraded_chunk_reads")

    @property
    def read_amplification(self) -> float:
        """OSS bytes read per restored byte."""
        if not self.data:
            return 0.0
        return self.counters.get("container_bytes_read") / len(self.data)

    @property
    def containers_per_100mb(self) -> float:
        """Containers read per 100 MB restored (the paper's Fig 8 metric)."""
        if not self.data:
            return 0.0
        return self.containers_read * (100 * (1 << 20)) / len(self.data)

    @property
    def elapsed_seconds(self) -> float:
        """Virtual job duration from the event-driven pipeline."""
        if self.pipeline is not None:
            return self.pipeline.elapsed_seconds
        return self.closed_form_elapsed_seconds

    @property
    def closed_form_elapsed_seconds(self) -> float:
        """The seed's ``max(cpu, download/threads)`` duration model."""
        return prefetched_restore_time(
            self.breakdown.cpu_seconds(),
            self.breakdown.download,
            self.prefetch_threads,
        )

    @property
    def throughput_mb_s(self) -> float:
        """Restore throughput in MB/s."""
        elapsed = self.elapsed_seconds
        if elapsed == 0:
            return 0.0
        return len(self.data) / elapsed / (1 << 20)


class RestoreEngine:
    """One L-node restore job."""

    def __init__(
        self,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
    ) -> None:
        self.config = config
        self.storage = storage
        self.cost_model = cost_model or CostModel()
        self._fingerprint = getattr(storage, "fingerprinter", fingerprint)

    def restore(
        self,
        path: str,
        version: int,
        prefetch_threads: int | None = None,
        verify: bool | None = None,
        ranged: bool | None = None,
    ) -> RestoreResult:
        """Reassemble one backup version from OSS."""
        threads = self.config.prefetch_threads if prefetch_threads is None else prefetch_threads
        check = self.config.verify_restore if verify is None else verify
        use_ranged = self.config.ranged_reads if ranged is None else ranged
        breakdown = TimeBreakdown()
        counters = Counters()

        with self.storage.meter_reads() as recipe_meter:
            recipe = self.storage.recipes.get_recipe(path, version)
        recipe_seconds = recipe_meter.seconds
        breakdown.charge("download", recipe_seconds)

        records = recipe.all_records()
        if not records:
            return RestoreResult(
                path, version, b"", breakdown, counters, threads, ranged=use_ranged
            )

        planner = RestorePlanner(self.storage, self.cost_model)
        plan = planner.plan(
            records, use_ranged, self.config.ranged_read_gap_bytes, breakdown, counters
        )
        if plan.planned_degraded_reads:
            counters.add("planned_degraded_reads", plan.planned_degraded_reads)
        setup_seconds = recipe_seconds + plan.plan_seconds

        cbf = CountingBloomFilter(max(64, len(records)), false_positive_rate=0.001)
        for record in plan.resolved:
            cbf.add(record.fp)
        law = LookAheadWindow(plan.resolved, self.config.law_window_records)
        cache = FullVisionCache(
            self.config.restore_cache_bytes,
            self.config.restore_disk_cache_bytes,
            cbf,
            law,
        )

        output = bytearray()
        containers_seen: set[int] = set()
        read_seconds: list[float] = []
        record_reads = [-1] * len(plan.resolved)
        record_cpu = [0.0] * len(plan.resolved)
        demand_seconds = [0.0] * len(plan.resolved)
        for index, record in enumerate(plan.resolved):
            data = cache.lookup(record.fp)
            if data is None:
                read_index = plan.read_for_record[index]
                if read_index >= 0:
                    seconds = self._execute_planned_read(
                        plan, plan.reads[read_index], cache,
                        containers_seen, breakdown, counters,
                    )
                    if seconds is not None:
                        record_reads[index] = len(read_seconds)
                        read_seconds.append(seconds)
                        data = cache.peek(record.fp)
                if data is None:
                    data, demand = self._demand_fetch(
                        record,
                        record_reads[index] >= 0,
                        cache,
                        containers_seen,
                        breakdown,
                        counters,
                    )
                    demand_seconds[index] += demand
            cpu = 0.0
            if check:
                cpu += self.cost_model.fingerprint_cost(len(data))
                if self._fingerprint(data) != record.fp:
                    healed, heal_seconds = self._heal_chunk(
                        record, breakdown, counters
                    )
                    demand_seconds[index] += heal_seconds
                    if healed is None:
                        raise IntegrityError(
                            f"chunk fingerprint mismatch restoring {path}@v{version} "
                            f"(record {index})"
                        )
                    data = healed
                    cpu += self.cost_model.fingerprint_cost(len(data))
            output += data
            cpu += self.cost_model.cpu_restore_per_byte * len(data)
            breakdown.charge("other", cpu)
            record_cpu[index] = cpu
            cache.consume(record.fp)
            law.advance_past(index)

        counters.counts.update(cache.counters.counts)
        pipeline = simulate_restore_pipeline(
            read_seconds,
            record_reads,
            record_cpu,
            threads,
            demand_seconds=demand_seconds,
            setup_seconds=setup_seconds,
        )
        counters.add("prefetch_stalls", pipeline.stall_count)
        return RestoreResult(
            path,
            version,
            bytes(output),
            breakdown,
            counters,
            threads,
            ranged=use_ranged,
            pipeline=pipeline,
            setup_seconds=setup_seconds,
            read_seconds=read_seconds,
            record_reads=record_reads,
            record_cpu=record_cpu,
            demand_seconds=demand_seconds,
        )

    # ------------------------------------------------------------------
    def _heal_chunk(
        self,
        record: ChunkRecord,
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> tuple[bytes | None, float]:
        """Re-fetch a verify-failed chunk through the durability tier.

        A fingerprint mismatch at splice time means the bytes went bad in
        flight or at rest.  With a durability tier the chunk is re-read
        from a replica (or decoded from its erasure stripe) instead of
        failing the restore — a *degraded read*, charged to the virtual
        cost model as synchronous demand time the consumer blocked on.
        Returns ``(payload, seconds)``; payload is None when no healthy
        copy exists (the caller then raises :class:`IntegrityError`).
        """
        durability = self.storage.durability
        if durability is None:
            return None, 0.0
        failovers_before = durability.replica_failovers
        decodes_before = durability.erasure_decodes
        with self.storage.meter_reads() as meter:
            data = durability.fetch_chunk(record.container_id, record.fp)
            if data is None:
                # The chunk may have moved homes (reverse dedup / SCC):
                # heal from the current owner's durability copies instead.
                owner = self.storage.global_index.lookup(record.fp)
                if owner is not None and owner != record.container_id:
                    data = durability.fetch_chunk(owner, record.fp)
        breakdown.charge("download", meter.seconds)
        if data is None or self._fingerprint(data) != record.fp:
            return None, meter.seconds
        counters.add("degraded_chunk_reads")
        counters.add(
            "replica_failovers", durability.replica_failovers - failovers_before
        )
        counters.add("erasure_decodes", durability.erasure_decodes - decodes_before)
        return data, meter.seconds

    def _execute_planned_read(
        self,
        plan: RestorePlan,
        planned: PlannedRead,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> float | None:
        """Issue one scheduled container read; returns its duration.

        Returns None (nothing read, nothing charged) when a whole-mode
        plan references a container that no longer exists — the demand
        path then redirects through the global index, as the seed did.
        """
        cid = planned.container_id
        if not self.storage.containers.exists(cid):
            return None
        with self.storage.meter_reads() as meter:
            if planned.spans is None:
                payload = self.storage.containers.read_data(cid)
                meta = self.storage.containers.read_meta(cid, piggyback=True)
                cache.insert_container(meta, payload)
                counters.add("container_bytes_read", len(payload))
            else:
                spans = [(span.offset, span.length) for span in planned.spans]
                payloads = [
                    data for _, data in self.storage.containers.read_spans(cid, spans)
                ]
                self._insert_span_chunks(plan.metas[cid], planned, payloads, cache)
                counters.add("container_bytes_read", planned.planned_bytes)
                counters.add("ranged_reads", len(spans))
                counters.add("ranged_bytes_saved", planned.bytes_saved)
        seconds = meter.seconds
        breakdown.charge("download", seconds)
        counters.add("containers_read")
        if cid in containers_seen:
            counters.add("repeated_container_reads")
        containers_seen.add(cid)
        return seconds

    @staticmethod
    def _insert_span_chunks(
        meta, planned: PlannedRead, payloads: list[bytes], cache: FullVisionCache
    ) -> None:
        """Cache every chunk fully covered by the fetched spans."""
        spans = planned.spans
        starts = [span.offset for span in spans]
        for entry in meta.live_lookup_entries():
            position = bisect_right(starts, entry.offset) - 1
            if position < 0:
                continue
            span = spans[position]
            if entry.offset + entry.size > span.end:
                continue
            base = entry.offset - span.offset
            cache.insert_chunk(entry.fp, payloads[position][base : base + entry.size])

    def _demand_fetch(
        self,
        record: ChunkRecord,
        container_just_read: bool,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> tuple[bytes, float]:
        """Synchronous fallback when the planned read did not yield the chunk.

        Covers two cases: the chunk moved out of its recorded container
        (whole mode discovers redirects here) and a previously read chunk
        was evicted from both cache layers (a repeated container read).
        Returns the payload and the virtual seconds the consumer blocked.
        """
        redirects_before = counters.get("global_index_redirects")
        with self.storage.meter_reads() as meter:
            if container_just_read:
                # The planned read just completed and the chunk was not in
                # it: go straight to the global index instead of re-reading.
                data = self._redirect(record, cache, containers_seen, breakdown, counters)
            else:
                data = self._fetch_for(record, cache, containers_seen, breakdown, counters)
        demand = meter.seconds + self.cost_model.cpu_index_query * (
            counters.get("global_index_redirects") - redirects_before
        )
        return data, demand

    def _fetch_for(
        self,
        record: ChunkRecord,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> bytes:
        """Read the record's container (redirecting if the chunk moved)."""
        data = self._read_container(
            record.container_id, record.fp, cache, containers_seen, breakdown, counters
        )
        if data is not None:
            return data
        return self._redirect(record, cache, containers_seen, breakdown, counters)

    def _redirect(
        self,
        record: ChunkRecord,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> bytes:
        """Locate a moved chunk through the global index and read it.

        The chunk is gone from its recorded container: reverse dedup or
        SCC moved it.  The global index knows the current owner.
        """
        counters.add("global_index_redirects")
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        with self.storage.meter_reads() as meter:
            owner = self.storage.global_index.lookup(record.fp)
        breakdown.charge("download", meter.seconds)
        if owner is None:
            raise RestoreError(
                f"chunk {record.fp.hex()[:12]} missing from container "
                f"{record.container_id} and unknown to the global index"
            )
        data = self._read_container(
            owner, record.fp, cache, containers_seen, breakdown, counters
        )
        if data is None:
            raise RestoreError(
                f"global index points chunk {record.fp.hex()[:12]} at container "
                f"{owner}, which does not hold it"
            )
        return data

    def _read_container(
        self,
        container_id: int,
        fp: bytes,
        cache: FullVisionCache,
        containers_seen: set[int],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> bytes | None:
        """Whole-container read; inserts useful chunks into the cache."""
        if not self.storage.containers.exists(container_id):
            return None
        with self.storage.meter_reads() as meter:
            payload = self.storage.containers.read_data(container_id)
            meta = self.storage.containers.read_meta(container_id, piggyback=True)
        breakdown.charge("download", meter.seconds)
        counters.add("containers_read")
        counters.add("container_bytes_read", len(payload))
        if container_id in containers_seen:
            counters.add("repeated_container_reads")
        containers_seen.add(container_id)

        cache.insert_container(meta, payload)
        entry = meta.find(fp)
        if entry is None or entry.deleted:
            return None
        return payload[entry.offset : entry.offset + entry.size]
