"""Containers: the unit of backup storage and OSS access.

"A common solution is to treat the container as the basic storage and
access unit of backup data.  While duplicate chunks are eliminated, the
remaining non-duplicate chunks will be aggregated into fixed-size
containers and persisted on OSS.  The container store also retains the
metadata of each container, which keeps each chunk's status and offset,
and the proportion of stale chunks" (Section III-B).

A container is two OSS objects: an immutable ``.data`` blob and a small
``.meta`` object that can be updated independently — reverse deduplication
only marks chunks deleted in the metadata until the stale fraction crosses
the rewrite threshold (Section VI-A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import ContainerError, ObjectNotFoundError
from repro.fingerprint.hashing import FP_SIZE
from repro.oss.object_store import ObjectStorageService

_META_HEADER = struct.Struct(">QI")          # container id, entry count
_META_ENTRY = struct.Struct(">20sQIB")       # fp, offset, size, flags
_FLAG_DELETED = 1
_FLAG_ALIAS = 2


@dataclass
class ChunkLocation:
    """Placement of one chunk inside a container.

    ``alias`` entries are secondary lookup keys into bytes owned by another
    entry (a superchunk's first chunk); they are excluded from size and
    utilisation accounting.
    """

    fp: bytes
    offset: int
    size: int
    deleted: bool = False
    alias: bool = False


@dataclass
class ContainerMeta:
    """Metadata of one container: every chunk's status and offset."""

    container_id: int
    entries: list[ChunkLocation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_fp: dict[bytes, ChunkLocation] = {}
        for entry in self.entries:
            self._by_fp.setdefault(entry.fp, entry)

    def add(self, entry: ChunkLocation) -> None:
        """Append an entry (first entry per fingerprint wins lookups)."""
        self.entries.append(entry)
        self._by_fp.setdefault(entry.fp, entry)

    def find(self, fp: bytes) -> ChunkLocation | None:
        """The entry for ``fp`` or None."""
        return self._by_fp.get(fp)

    # --- accounting -------------------------------------------------------
    def primary_entries(self) -> list[ChunkLocation]:
        """Entries that own bytes (aliases excluded)."""
        return [entry for entry in self.entries if not entry.alias]

    def live_entries(self) -> list[ChunkLocation]:
        """Primary entries not marked deleted."""
        return [e for e in self.entries if not e.alias and not e.deleted]

    def total_chunks(self) -> int:
        """Number of byte-owning chunks ever stored."""
        return len(self.primary_entries())

    def live_chunks(self) -> int:
        """Byte-owning chunks not marked deleted."""
        return len(self.live_entries())

    def live_bytes(self) -> int:
        """Payload bytes still referenced (deleted chunks excluded)."""
        return sum(entry.size for entry in self.live_entries())

    def stale_fraction(self) -> float:
        """Fraction of byte-owning chunks marked deleted."""
        total = self.total_chunks()
        if total == 0:
            return 0.0
        return 1.0 - self.live_chunks() / total

    def mark_deleted(self, fp: bytes) -> bool:
        """Mark the chunk ``fp`` deleted; True if it was live.

        Alias entries (a superchunk's firstChunk) are independent for
        deletion: deleting the superchunk leaves a live alias, whose bytes
        :meth:`ContainerStore.rewrite` preserves by materialising the alias
        as a chunk of its own.
        """
        entry = self._by_fp.get(fp)
        if entry is None or entry.deleted:
            return False
        entry.deleted = True
        return True

    def live_lookup_entries(self) -> list[ChunkLocation]:
        """All non-deleted entries, aliases included (restore-visible)."""
        return [entry for entry in self.entries if not entry.deleted]

    @staticmethod
    def _overlaps(owner: ChunkLocation, alias: ChunkLocation) -> bool:
        return owner.offset <= alias.offset < owner.offset + owner.size

    # --- serialisation ------------------------------------------------------
    def to_bytes(self) -> bytes:
        blob = bytearray(_META_HEADER.pack(self.container_id, len(self.entries)))
        for entry in self.entries:
            if len(entry.fp) != FP_SIZE:
                raise ContainerError(f"bad fingerprint length: {len(entry.fp)}")
            flags = (_FLAG_DELETED if entry.deleted else 0) | (
                _FLAG_ALIAS if entry.alias else 0
            )
            blob += _META_ENTRY.pack(entry.fp, entry.offset, entry.size, flags)
        return bytes(blob)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ContainerMeta":
        container_id, count = _META_HEADER.unpack_from(payload, 0)
        entries: list[ChunkLocation] = []
        offset = _META_HEADER.size
        for _ in range(count):
            fp, chunk_offset, size, flags = _META_ENTRY.unpack_from(payload, offset)
            offset += _META_ENTRY.size
            entries.append(
                ChunkLocation(
                    fp=fp,
                    offset=chunk_offset,
                    size=size,
                    deleted=bool(flags & _FLAG_DELETED),
                    alias=bool(flags & _FLAG_ALIAS),
                )
            )
        return cls(container_id=container_id, entries=entries)


class ContainerBuilder:
    """Accumulates chunks for one in-flight container."""

    def __init__(self, container_id: int, capacity_bytes: int) -> None:
        self.container_id = container_id
        self.capacity_bytes = capacity_bytes
        self.meta = ContainerMeta(container_id)
        self._data = bytearray()

    def add_chunk(self, fp: bytes, data: bytes) -> ChunkLocation:
        """Append chunk payload; returns its location entry."""
        entry = ChunkLocation(fp=fp, offset=len(self._data), size=len(data))
        self.meta.add(entry)
        self._data += data
        return entry

    def add_alias(self, fp: bytes, offset: int, size: int) -> None:
        """Register a secondary lookup key into already-appended bytes."""
        if offset + size > len(self._data):
            raise ContainerError("alias range outside container payload")
        self.meta.add(ChunkLocation(fp=fp, offset=offset, size=size, alias=True))

    @property
    def payload_bytes(self) -> int:
        """Bytes accumulated so far."""
        return len(self._data)

    def is_full(self) -> bool:
        """True once the payload reaches the container capacity."""
        return len(self._data) >= self.capacity_bytes

    def is_empty(self) -> bool:
        """True if no chunk has been added yet."""
        return not self._data

    def payload(self) -> bytes:
        """The container payload as immutable bytes."""
        return bytes(self._data)


class ContainerStore:
    """The container half of the storage layer, resident on OSS."""

    DATA_KEY = "containers/{cid:012d}.data"
    META_KEY = "containers/{cid:012d}.meta"

    def __init__(self, oss: ObjectStorageService, bucket: str = "slimstore") -> None:
        self._oss = oss
        self._bucket = bucket
        self._next_id = 0
        self._live_ids: set[int] = set()
        oss.create_bucket(bucket)

    @property
    def oss(self) -> ObjectStorageService:
        """The OSS endpoint this store lives on."""
        return self._oss

    def recover(self) -> int:
        """Rebuild live-id tracking from OSS; returns the container count.

        Used when attaching to an existing repository: container data
        objects are the source of truth.
        """
        self._live_ids.clear()
        highest = -1
        for key in self._oss.peek_keys(self._bucket, "containers/"):
            if not key.endswith(".data"):
                continue
            cid = int(key[len("containers/") : -len(".data")])
            self._live_ids.add(cid)
            highest = max(highest, cid)
        self._next_id = highest + 1
        return len(self._live_ids)

    # --- building -------------------------------------------------------------
    def new_builder(self, capacity_bytes: int) -> ContainerBuilder:
        """Allocate a container id and return a builder for it."""
        builder = ContainerBuilder(self._next_id, capacity_bytes)
        self._next_id += 1
        return builder

    def write(self, builder: ContainerBuilder) -> int:
        """Persist a built container (data + meta); returns bytes uploaded."""
        if builder.is_empty():
            raise ContainerError("refusing to persist an empty container")
        data = builder.payload()
        meta = builder.meta.to_bytes()
        cid = builder.container_id
        self._oss.put_object(self._bucket, self.DATA_KEY.format(cid=cid), data)
        self._oss.put_object(
            self._bucket, self.META_KEY.format(cid=cid), meta, piggyback=True
        )
        self._live_ids.add(cid)
        return len(data) + len(meta)

    # --- reading ------------------------------------------------------------------
    def read_data(self, container_id: int, channels: int = 1) -> bytes:
        """Whole-container payload read (the restore access pattern)."""
        return self._oss.get_object(
            self._bucket, self.DATA_KEY.format(cid=container_id), channels
        )

    def read_meta(self, container_id: int, piggyback: bool = False) -> ContainerMeta:
        """Container metadata read (``piggyback`` when read next to data)."""
        payload = self._oss.get_object(
            self._bucket, self.META_KEY.format(cid=container_id), piggyback=piggyback
        )
        return ContainerMeta.from_bytes(payload)

    def read_spans(
        self, container_id: int, spans: list[tuple[int, int]], channels: int = 1
    ) -> list[tuple[int, bytes]]:
        """Ranged reads of coalesced chunk extents from one container.

        ``spans`` is a list of ``(offset, length)`` byte extents (one
        ranged GET each); returns ``(offset, payload)`` pairs.  This is
        the restore planner's access pattern: instead of paying
        whole-container read amplification for a handful of live chunks,
        only the planned extents cross the wire.
        """
        payloads = self._oss.get_ranges(
            self._bucket, self.DATA_KEY.format(cid=container_id), spans, channels
        )
        return [(offset, data) for (offset, _), data in zip(spans, payloads)]

    def read_chunk(self, container_id: int, fp: bytes) -> bytes | None:
        """Ranged read of a single chunk (meta lookup + ranged GET)."""
        meta = self.read_meta(container_id)
        entry = meta.find(fp)
        if entry is None or entry.deleted:
            return None
        return self._oss.get_range(
            self._bucket, self.DATA_KEY.format(cid=container_id), entry.offset, entry.size
        )

    def exists(self, container_id: int) -> bool:
        """True if the container's data object is still stored."""
        return container_id in self._live_ids

    # --- mutation (G-node only) -----------------------------------------------------
    def update_meta(self, meta: ContainerMeta) -> None:
        """Persist updated metadata (e.g. after marking chunks deleted)."""
        self._oss.put_object(
            self._bucket, self.META_KEY.format(cid=meta.container_id), meta.to_bytes()
        )

    def replace_data(self, container_id: int, payload: bytes) -> None:
        """Overwrite a container's data object in place.

        Scrub repair uses this to persist a payload whose corrupt chunks
        were patched from healthy copies; offsets are unchanged, so the
        existing metadata stays valid.
        """
        if container_id not in self._live_ids:
            raise ObjectNotFoundError(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.put_object(
            self._bucket, self.DATA_KEY.format(cid=container_id), payload
        )

    def rewrite(self, container_id: int) -> int:
        """Drop deleted chunks from the payload; returns bytes reclaimed.

        "the container is read out and invalid chunks will be removed, and
        then rewritten to OSS" (Section VI-A).  Live alias entries whose
        owning chunk survives are re-based onto the owner's new offset;
        aliases that outlive their owner are materialised as chunks of
        their own so the bytes they name remain restorable.
        """
        meta = self.read_meta(container_id)
        data = self.read_data(container_id)
        new_data = bytearray()
        new_meta = ContainerMeta(container_id)
        moved: dict[int, int] = {}  # old primary offset -> new offset
        for entry in meta.entries:
            if entry.deleted or entry.alias:
                continue
            moved[entry.offset] = len(new_data)
            new_data += data[entry.offset : entry.offset + entry.size]
            new_meta.add(
                ChunkLocation(fp=entry.fp, offset=moved[entry.offset], size=entry.size)
            )
        for entry in meta.entries:
            if entry.deleted or not entry.alias:
                continue
            owner = next(
                (
                    primary
                    for primary in meta.entries
                    if not primary.alias
                    and not primary.deleted
                    and self._covers(primary, entry)
                ),
                None,
            )
            if owner is not None:
                delta = entry.offset - owner.offset
                new_meta.add(
                    ChunkLocation(
                        fp=entry.fp,
                        offset=moved[owner.offset] + delta,
                        size=entry.size,
                        alias=True,
                    )
                )
            else:
                # Owner deleted: keep the alias bytes as a first-class chunk.
                new_offset = len(new_data)
                new_data += data[entry.offset : entry.offset + entry.size]
                new_meta.add(
                    ChunkLocation(fp=entry.fp, offset=new_offset, size=entry.size)
                )
        reclaimed = len(data) - len(new_data)
        if not new_data:
            self.delete(container_id)
            return reclaimed
        self._oss.put_object(
            self._bucket, self.DATA_KEY.format(cid=container_id), bytes(new_data)
        )
        self.update_meta(new_meta)
        return reclaimed

    @staticmethod
    def _covers(owner: ChunkLocation, alias: ChunkLocation) -> bool:
        return (
            owner.offset <= alias.offset
            and alias.offset + alias.size <= owner.offset + owner.size
        )

    def delete(self, container_id: int) -> bool:
        """Delete both objects of a container; True if data existed."""
        existed = self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.META_KEY.format(cid=container_id))
        self._live_ids.discard(container_id)
        return existed

    # --- accounting -------------------------------------------------------------------
    def container_ids(self) -> list[int]:
        """All live container ids, sorted."""
        return sorted(self._live_ids)

    def stored_bytes(self) -> int:
        """Total data-object bytes currently stored (meta excluded, free)."""
        total = 0
        for cid in self._live_ids:
            size = self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=cid))
            total += size or 0
        return total

    def container_size(self, container_id: int) -> int:
        """Data-object size of one container (accounting only, free)."""
        size = self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=container_id))
        if size is None:
            raise ObjectNotFoundError(self._bucket, self.DATA_KEY.format(cid=container_id))
        return size
