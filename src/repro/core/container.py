"""Containers: the unit of backup storage and OSS access.

"A common solution is to treat the container as the basic storage and
access unit of backup data.  While duplicate chunks are eliminated, the
remaining non-duplicate chunks will be aggregated into fixed-size
containers and persisted on OSS.  The container store also retains the
metadata of each container, which keeps each chunk's status and offset,
and the proportion of stale chunks" (Section III-B).

A container is two OSS objects: an immutable ``.data`` blob and a small
``.meta`` object that can be updated independently — reverse deduplication
only marks chunks deleted in the metadata until the stale fraction crosses
the rewrite threshold (Section VI-A).
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import (
    ContainerError,
    ObjectNotFoundError,
    RetryExhaustedError,
    SimulatedCrashError,
    TransientOSSError,
)
from repro.fingerprint.hashing import FP_SIZE
from repro.oss.object_store import ObjectStorageService

if TYPE_CHECKING:
    from repro.core.durability import DurabilityManager
    from repro.core.journal import IntentJournal

#: Read failures the durability failover path absorbs (a simulated crash
#: is terminal and deliberately propagates).
_FAILOVER_ERRORS = (ObjectNotFoundError, TransientOSSError, RetryExhaustedError)

_META_HEADER = struct.Struct(">QI")          # container id, entry count
_META_ENTRY = struct.Struct(">20sQIB")       # fp, offset, size, flags
_FLAG_DELETED = 1
_FLAG_ALIAS = 2


@dataclass
class ChunkLocation:
    """Placement of one chunk inside a container.

    ``alias`` entries are secondary lookup keys into bytes owned by another
    entry (a superchunk's first chunk); they are excluded from size and
    utilisation accounting.
    """

    fp: bytes
    offset: int
    size: int
    deleted: bool = False
    alias: bool = False


@dataclass
class ContainerMeta:
    """Metadata of one container: every chunk's status and offset."""

    container_id: int
    entries: list[ChunkLocation] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_fp: dict[bytes, ChunkLocation] = {}
        for entry in self.entries:
            self._by_fp.setdefault(entry.fp, entry)

    def add(self, entry: ChunkLocation) -> None:
        """Append an entry (first entry per fingerprint wins lookups)."""
        self.entries.append(entry)
        self._by_fp.setdefault(entry.fp, entry)

    def find(self, fp: bytes) -> ChunkLocation | None:
        """The entry for ``fp`` or None."""
        return self._by_fp.get(fp)

    # --- accounting -------------------------------------------------------
    def primary_entries(self) -> list[ChunkLocation]:
        """Entries that own bytes (aliases excluded)."""
        return [entry for entry in self.entries if not entry.alias]

    def live_entries(self) -> list[ChunkLocation]:
        """Primary entries not marked deleted."""
        return [e for e in self.entries if not e.alias and not e.deleted]

    def total_chunks(self) -> int:
        """Number of byte-owning chunks ever stored."""
        return len(self.primary_entries())

    def live_chunks(self) -> int:
        """Byte-owning chunks not marked deleted."""
        return len(self.live_entries())

    def live_bytes(self) -> int:
        """Payload bytes still referenced (deleted chunks excluded)."""
        return sum(entry.size for entry in self.live_entries())

    def stale_fraction(self) -> float:
        """Fraction of byte-owning chunks marked deleted."""
        total = self.total_chunks()
        if total == 0:
            return 0.0
        return 1.0 - self.live_chunks() / total

    def mark_deleted(self, fp: bytes) -> bool:
        """Mark the chunk ``fp`` deleted; True if it was live.

        Alias entries (a superchunk's firstChunk) are independent for
        deletion: deleting the superchunk leaves a live alias, whose bytes
        :meth:`ContainerStore.rewrite` preserves by materialising the alias
        as a chunk of its own.
        """
        entry = self._by_fp.get(fp)
        if entry is None or entry.deleted:
            return False
        entry.deleted = True
        return True

    def revive(self, fp: bytes) -> bool:
        """Un-mark a deleted chunk; True if it was deleted.

        Crash recovery uses this to resurrect a copy that was marked
        deleted in favour of a replacement that never became durable —
        the bytes are still in the payload, only the flag flips back.
        """
        entry = self._by_fp.get(fp)
        if entry is None or not entry.deleted:
            return False
        entry.deleted = False
        return True

    def live_lookup_entries(self) -> list[ChunkLocation]:
        """All non-deleted entries, aliases included (restore-visible)."""
        return [entry for entry in self.entries if not entry.deleted]

    @staticmethod
    def _overlaps(owner: ChunkLocation, alias: ChunkLocation) -> bool:
        return owner.offset <= alias.offset < owner.offset + owner.size

    # --- serialisation ------------------------------------------------------
    def to_bytes(self) -> bytes:
        blob = bytearray(_META_HEADER.pack(self.container_id, len(self.entries)))
        for entry in self.entries:
            if len(entry.fp) != FP_SIZE:
                raise ContainerError(f"bad fingerprint length: {len(entry.fp)}")
            flags = (_FLAG_DELETED if entry.deleted else 0) | (
                _FLAG_ALIAS if entry.alias else 0
            )
            blob += _META_ENTRY.pack(entry.fp, entry.offset, entry.size, flags)
        return bytes(blob)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "ContainerMeta":
        container_id, count = _META_HEADER.unpack_from(payload, 0)
        entries: list[ChunkLocation] = []
        offset = _META_HEADER.size
        for _ in range(count):
            fp, chunk_offset, size, flags = _META_ENTRY.unpack_from(payload, offset)
            offset += _META_ENTRY.size
            entries.append(
                ChunkLocation(
                    fp=fp,
                    offset=chunk_offset,
                    size=size,
                    deleted=bool(flags & _FLAG_DELETED),
                    alias=bool(flags & _FLAG_ALIAS),
                )
            )
        return cls(container_id=container_id, entries=entries)


class ContainerBuilder:
    """Accumulates chunks for one in-flight container."""

    def __init__(self, container_id: int, capacity_bytes: int) -> None:
        self.container_id = container_id
        self.capacity_bytes = capacity_bytes
        self.meta = ContainerMeta(container_id)
        self._data = bytearray()

    def add_chunk(self, fp: bytes, data: bytes | memoryview) -> ChunkLocation:
        """Append chunk payload; returns its location entry.

        ``data`` may be any buffer object (the dedup hot loop passes
        zero-copy ``memoryview`` slices of the input stream); the single
        copy into the container's own buffer happens here and nowhere
        else.
        """
        entry = ChunkLocation(fp=fp, offset=len(self._data), size=len(data))
        self.meta.add(entry)
        self._data += data
        return entry

    def add_alias(self, fp: bytes, offset: int, size: int) -> None:
        """Register a secondary lookup key into already-appended bytes."""
        if offset + size > len(self._data):
            raise ContainerError("alias range outside container payload")
        self.meta.add(ChunkLocation(fp=fp, offset=offset, size=size, alias=True))

    @property
    def payload_bytes(self) -> int:
        """Bytes accumulated so far."""
        return len(self._data)

    def is_full(self) -> bool:
        """True once the payload reaches the container capacity."""
        return len(self._data) >= self.capacity_bytes

    def is_empty(self) -> bool:
        """True if no chunk has been added yet."""
        return not self._data

    def payload(self) -> bytes:
        """The container payload as immutable bytes."""
        return bytes(self._data)


class ContainerStore:
    """The container half of the storage layer, resident on OSS."""

    DATA_KEY = "containers/{cid:012d}.data"
    META_KEY = "containers/{cid:012d}.meta"
    #: Two-phase deletion marker: the container's objects stay readable
    #: until the tombstone's grace epochs expire (reaped by deep_clean).
    TOMB_KEY = "containers/{cid:012d}.tomb"
    #: The repository-wide deletion epoch (advanced by deep_clean).
    EPOCH_KEY = "containers/epoch"

    def __init__(
        self,
        oss: ObjectStorageService,
        bucket: str = "slimstore",
        journal: "IntentJournal | None" = None,
        grace_epochs: int = 0,
    ) -> None:
        self._oss = oss
        self._bucket = bucket
        self._next_id = 0
        self._live_ids: set[int] = set()
        self.journal = journal
        #: Grace epochs a tombstoned container stays readable; 0 means
        #: deletion is immediate (the pre-tombstone behaviour).
        self.grace_epochs = grace_epochs
        self._epoch = 0
        self._tombstoned: dict[int, int] = {}
        #: Torn pairs found by :meth:`recover`: cid → the surviving half
        #: ("data" or "meta").  Quarantined — never resurrected as live.
        self.torn_pairs: dict[int, str] = {}
        #: Tombstoned containers whose reap was interrupted mid-delete.
        self.partial_reaps: set[int] = set()
        #: The durability tier, when enabled: consulted for replica/parity
        #: failover on failed reads and notified of payload mutations and
        #: deletions so copies never go stale.
        self.durability: "DurabilityManager | None" = None
        oss.create_bucket(bucket)

    @property
    def oss(self) -> ObjectStorageService:
        """The OSS endpoint this store lives on."""
        return self._oss

    def recover(self) -> int:
        """Rebuild live-id tracking from OSS; returns the container count.

        Used when attaching to an existing repository: a container is
        live only when *both* its objects exist and it carries no
        tombstone.  A ``.data`` without its ``.meta`` (or vice versa) is
        a torn pair from an interrupted write or deletion: it is
        quarantined in :attr:`torn_pairs` — reported, excluded from the
        live set, and left for recovery to collect — instead of being
        silently resurrected as a half-written container.
        """
        self._live_ids.clear()
        self.torn_pairs.clear()
        self.partial_reaps.clear()
        self._tombstoned.clear()
        data_ids: set[int] = set()
        meta_ids: set[int] = set()
        tomb_ids: set[int] = set()
        for key in self._oss.peek_keys(self._bucket, "containers/"):
            stem = key[len("containers/"):]
            cid_text, _, suffix = stem.rpartition(".")
            if suffix not in ("data", "meta", "tomb") or not cid_text.isdigit():
                continue  # e.g. the epoch object, or foreign keys
            cid = int(cid_text)
            {"data": data_ids, "meta": meta_ids, "tomb": tomb_ids}[suffix].add(cid)
        highest = max(data_ids | meta_ids | tomb_ids, default=-1)
        self._next_id = highest + 1
        if self._oss.peek_size(self._bucket, self.EPOCH_KEY) is not None:
            raw = json.loads(self._oss.get_object(self._bucket, self.EPOCH_KEY))
            self._epoch = int(raw["epoch"])
        for cid in tomb_ids:
            if cid in data_ids and cid in meta_ids:
                raw = json.loads(
                    self._oss.get_object(self._bucket, self.TOMB_KEY.format(cid=cid))
                )
                self._tombstoned[cid] = int(raw["epoch"])
            else:
                # Reap interrupted between the data/meta deletes and the
                # tombstone delete; recovery finishes the job.
                self.partial_reaps.add(cid)
        for cid in (data_ids | meta_ids) - tomb_ids:
            if cid in data_ids and cid in meta_ids:
                self._live_ids.add(cid)
            else:
                self.torn_pairs[cid] = "data" if cid in data_ids else "meta"
        return len(self._live_ids)

    # --- building -------------------------------------------------------------
    def new_builder(self, capacity_bytes: int) -> ContainerBuilder:
        """Allocate a container id and return a builder for it."""
        builder = ContainerBuilder(self._next_id, capacity_bytes)
        self._next_id += 1
        return builder

    def peek_next_id(self) -> int:
        """The next container id a builder would get (no allocation).

        Jobs journal this as their *watermark* before writing anything:
        after a crash, a live container at or above an open intent's
        watermark that no committed recipe references is an orphan.
        """
        return self._next_id

    def write(self, builder: ContainerBuilder) -> int:
        """Persist a built container (data + meta); returns bytes uploaded."""
        if builder.is_empty():
            raise ContainerError("refusing to persist an empty container")
        data = builder.payload()
        meta = builder.meta.to_bytes()
        cid = builder.container_id
        self._oss.put_object(self._bucket, self.DATA_KEY.format(cid=cid), data)
        self._oss.put_object(
            self._bucket, self.META_KEY.format(cid=cid), meta, piggyback=True
        )
        self._live_ids.add(cid)
        return len(data) + len(meta)

    # --- reading ------------------------------------------------------------------
    def read_data(self, container_id: int, channels: int = 1) -> bytes:
        """Whole-container payload read (the restore access pattern).

        With the durability tier enabled, a failed primary read falls
        over to a replica or an erasure decode (primary → replica →
        decode) instead of surfacing the error; only when no source can
        produce verified bytes does the original failure propagate.
        """
        try:
            return self._oss.get_object(
                self._bucket, self.DATA_KEY.format(cid=container_id), channels
            )
        except SimulatedCrashError:
            raise
        except _FAILOVER_ERRORS:
            if self.durability is not None:
                payload = self.durability.verified_payload(container_id)
                if payload is not None:
                    return payload
            raise

    def read_meta(self, container_id: int, piggyback: bool = False) -> ContainerMeta:
        """Container metadata read (``piggyback`` when read next to data)."""
        payload = self._oss.get_object(
            self._bucket, self.META_KEY.format(cid=container_id), piggyback=piggyback
        )
        return ContainerMeta.from_bytes(payload)

    def read_spans(
        self, container_id: int, spans: list[tuple[int, int]], channels: int = 1
    ) -> list[tuple[int, bytes]]:
        """Ranged reads of coalesced chunk extents from one container.

        ``spans`` is a list of ``(offset, length)`` byte extents (one
        ranged GET each); returns ``(offset, payload)`` pairs.  This is
        the restore planner's access pattern: instead of paying
        whole-container read amplification for a handful of live chunks,
        only the planned extents cross the wire.
        """
        try:
            payloads = self._oss.get_ranges(
                self._bucket, self.DATA_KEY.format(cid=container_id), spans, channels
            )
        except SimulatedCrashError:
            raise
        except _FAILOVER_ERRORS:
            # Ranged failover: fetch the whole verified payload through
            # the durability tier (its reads are charged) and slice the
            # requested extents locally.
            if self.durability is not None:
                payload = self.durability.verified_payload(container_id)
                if payload is not None:
                    return [
                        (offset, payload[offset : offset + length])
                        for offset, length in spans
                    ]
            raise
        return [(offset, data) for (offset, _), data in zip(spans, payloads)]

    def read_chunk(self, container_id: int, fp: bytes) -> bytes | None:
        """Ranged read of a single chunk (meta lookup + ranged GET)."""
        try:
            meta = self.read_meta(container_id)
            entry = meta.find(fp)
            if entry is None or entry.deleted:
                return None
            return self._oss.get_range(
                self._bucket,
                self.DATA_KEY.format(cid=container_id),
                entry.offset,
                entry.size,
            )
        except SimulatedCrashError:
            raise
        except _FAILOVER_ERRORS:
            if self.durability is not None:
                chunk = self.durability.fetch_chunk(container_id, fp)
                if chunk is not None:
                    return chunk
            raise

    def exists(self, container_id: int) -> bool:
        """True if the container's data object is still stored."""
        return container_id in self._live_ids

    # --- mutation (G-node only) -----------------------------------------------------
    def update_meta(self, meta: ContainerMeta) -> None:
        """Persist updated metadata (e.g. after marking chunks deleted)."""
        self._oss.put_object(
            self._bucket, self.META_KEY.format(cid=meta.container_id), meta.to_bytes()
        )

    def replace_data(self, container_id: int, payload: bytes) -> None:
        """Overwrite a container's data object in place.

        Scrub repair uses this to persist a payload whose corrupt chunks
        were patched from healthy copies; offsets are unchanged, so the
        existing metadata stays valid.
        """
        if container_id not in self._live_ids:
            raise ObjectNotFoundError(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.put_object(
            self._bucket, self.DATA_KEY.format(cid=container_id), payload
        )
        if self.durability is not None:
            self.durability.on_payload_changed(container_id, payload)

    def rewrite(self, container_id: int) -> int:
        """Drop deleted chunks from the payload; returns bytes reclaimed.

        "the container is read out and invalid chunks will be removed, and
        then rewritten to OSS" (Section VI-A).  Live alias entries whose
        owning chunk survives are re-based onto the owner's new offset;
        aliases that outlive their owner are materialised as chunks of
        their own so the bytes they name remain restorable.
        """
        meta = self.read_meta(container_id)
        data = self.read_data(container_id)
        new_data = bytearray()
        new_meta = ContainerMeta(container_id)
        moved: dict[int, int] = {}  # old primary offset -> new offset
        for entry in meta.entries:
            if entry.deleted or entry.alias:
                continue
            moved[entry.offset] = len(new_data)
            new_data += data[entry.offset : entry.offset + entry.size]
            new_meta.add(
                ChunkLocation(fp=entry.fp, offset=moved[entry.offset], size=entry.size)
            )
        for entry in meta.entries:
            if entry.deleted or not entry.alias:
                continue
            owner = next(
                (
                    primary
                    for primary in meta.entries
                    if not primary.alias
                    and not primary.deleted
                    and self._covers(primary, entry)
                ),
                None,
            )
            if owner is not None:
                delta = entry.offset - owner.offset
                new_meta.add(
                    ChunkLocation(
                        fp=entry.fp,
                        offset=moved[owner.offset] + delta,
                        size=entry.size,
                        alias=True,
                    )
                )
            else:
                # Owner deleted: keep the alias bytes as a first-class chunk.
                new_offset = len(new_data)
                new_data += data[entry.offset : entry.offset + entry.size]
                new_meta.add(
                    ChunkLocation(fp=entry.fp, offset=new_offset, size=entry.size)
                )
        reclaimed = len(data) - len(new_data)
        if not new_data:
            self.delete(container_id)
            return reclaimed
        # In-place rewrite is a two-object update: a crash between the
        # data put and the meta put would leave the old metadata pointing
        # into the shrunk payload.  Journal the outcome first so recovery
        # can roll the meta forward (the journaled SHA proves the data
        # put landed) or discard a rewrite that never started.
        payload = bytes(new_data)
        seq = None
        if self.journal is not None:
            seq = self.journal.begin(
                "rewrite",
                container_id=container_id,
                meta=new_meta.to_bytes().hex(),
                data_sha=hashlib.sha1(payload).hexdigest(),
            )
        self._oss.put_object(
            self._bucket, self.DATA_KEY.format(cid=container_id), payload
        )
        self.update_meta(new_meta)
        # Refresh replicas/parity inside the rewrite intent window: a
        # crash in between is rolled forward by recovery, which re-runs
        # this hook after completing the rewrite.
        if self.durability is not None:
            self.durability.on_payload_changed(container_id, payload)
        if seq is not None:
            self.journal.close(seq)
        return reclaimed

    @staticmethod
    def _covers(owner: ChunkLocation, alias: ChunkLocation) -> bool:
        return (
            owner.offset <= alias.offset
            and alias.offset + alias.size <= owner.offset + owner.size
        )

    def delete(self, container_id: int) -> bool:
        """Delete a container; True if its data object existed.

        With ``grace_epochs`` > 0 this is phase one of a two-phase
        deletion: the container is :meth:`entomb`-ed (one atomic
        tombstone put, objects stay readable) and physically reaped only
        after the grace epochs expire — so a restore planned against
        pre-maintenance metadata never hits ``ObjectNotFoundError``
        mid-read.  With the default grace of 0 the objects are deleted
        immediately, data first, so an interrupted deletion leaves a
        recognisable meta-only torn pair.
        """
        if self.grace_epochs > 0 and container_id in self._live_ids:
            return self.entomb(container_id)
        existed = self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.META_KEY.format(cid=container_id))
        if container_id in self._tombstoned or container_id in self.partial_reaps:
            self._oss.delete_object(self._bucket, self.TOMB_KEY.format(cid=container_id))
        self._live_ids.discard(container_id)
        self._tombstoned.pop(container_id, None)
        self.partial_reaps.discard(container_id)
        if self.durability is not None:
            self.durability.on_deleted(container_id, immediate=True)
        return existed

    def purge(self, container_id: int) -> bool:
        """Physically delete a container, bypassing the tombstone grace.

        Recovery uses this for containers that were never visible to any
        committed version (orphans of a crashed job, torn-pair remnants):
        nothing can be reading them, so the grace window does not apply.
        True if the data object existed.
        """
        existed = self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.META_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.TOMB_KEY.format(cid=container_id))
        self._live_ids.discard(container_id)
        self._tombstoned.pop(container_id, None)
        self.partial_reaps.discard(container_id)
        self.torn_pairs.pop(container_id, None)
        if self.durability is not None:
            self.durability.on_deleted(container_id, immediate=True)
        return existed

    def complete_rewrite(
        self, container_id: int, meta_blob: bytes, data_sha: str
    ) -> bool:
        """Roll a journaled in-place rewrite forward (recovery path).

        The journal holds the rewrite's new metadata and the SHA-1 of its
        new payload.  If the stored data object matches the SHA, the data
        put landed before the crash and only the meta put is missing —
        re-issue it (idempotent) and return True.  Otherwise the rewrite
        never reached the data put; the old container is intact and the
        intent is simply discarded (returns False).
        """
        key = self.DATA_KEY.format(cid=container_id)
        if self._oss.peek_size(self._bucket, key) is None:
            return False
        data = self._oss.get_object(self._bucket, key)
        if hashlib.sha1(data).hexdigest() != data_sha:
            return False
        self._oss.put_object(
            self._bucket, self.META_KEY.format(cid=container_id), meta_blob
        )
        return True

    # --- two-phase deletion ------------------------------------------------
    def entomb(self, container_id: int) -> bool:
        """Tombstone a container (one atomic put); True if it was live.

        The container leaves the live set — new work no longer sees it —
        but both objects stay on OSS until :meth:`reap_expired` collects
        them ``grace_epochs`` deletion epochs later.
        """
        if container_id not in self._live_ids:
            return False
        self._oss.put_object(
            self._bucket,
            self.TOMB_KEY.format(cid=container_id),
            json.dumps({"epoch": self._epoch}).encode(),
        )
        self._live_ids.discard(container_id)
        self._tombstoned[container_id] = self._epoch
        if self.durability is not None:
            self.durability.on_deleted(container_id, immediate=False)
        return True

    @property
    def current_epoch(self) -> int:
        """The repository's current deletion epoch."""
        return self._epoch

    def advance_epoch(self) -> int:
        """Start the next deletion epoch (persisted); returns it."""
        self._epoch += 1
        self._oss.put_object(
            self._bucket, self.EPOCH_KEY, json.dumps({"epoch": self._epoch}).encode()
        )
        return self._epoch

    def tombstoned_ids(self) -> list[int]:
        """Containers awaiting their grace expiry, sorted."""
        return sorted(self._tombstoned)

    def is_tombstoned(self, container_id: int) -> bool:
        """True while a container sits in its deletion grace window."""
        return container_id in self._tombstoned

    def reap_expired(self) -> tuple[int, list[int]]:
        """Physically delete tombstoned containers past their grace.

        Returns ``(bytes reclaimed, reaped container ids)``.  Deletion
        order is data → meta → tombstone, so an interrupted reap leaves
        the tombstone behind as the signal for recovery to finish it.
        """
        reclaimed = 0
        reaped: list[int] = []
        for cid, entombed_at in sorted(self._tombstoned.items()):
            if entombed_at + self.grace_epochs > self._epoch:
                continue
            size = self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=cid))
            self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=cid))
            self._oss.delete_object(self._bucket, self.META_KEY.format(cid=cid))
            self._oss.delete_object(self._bucket, self.TOMB_KEY.format(cid=cid))
            self._tombstoned.pop(cid)
            if self.durability is not None:
                self.durability.on_deleted(cid, immediate=True)
            reclaimed += size or 0
            reaped.append(cid)
        return reclaimed, reaped

    def finish_reap(self, container_id: int) -> None:
        """Complete a reap that crashed mid-delete (recovery path)."""
        self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.META_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.TOMB_KEY.format(cid=container_id))
        self.partial_reaps.discard(container_id)
        self._tombstoned.pop(container_id, None)
        if self.durability is not None:
            self.durability.on_deleted(container_id, immediate=True)

    def discard_torn(self, container_id: int) -> None:
        """Delete the surviving half of a quarantined torn pair."""
        self._oss.delete_object(self._bucket, self.DATA_KEY.format(cid=container_id))
        self._oss.delete_object(self._bucket, self.META_KEY.format(cid=container_id))
        self.torn_pairs.pop(container_id, None)
        if self.durability is not None:
            self.durability.on_deleted(container_id, immediate=True)

    # --- accounting -------------------------------------------------------------------
    def container_ids(self) -> list[int]:
        """All live container ids, sorted."""
        return sorted(self._live_ids)

    def stored_bytes(self) -> int:
        """Total data-object bytes currently stored (meta excluded, free)."""
        total = 0
        for cid in self._live_ids:
            size = self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=cid))
            total += size or 0
        return total

    def primary_missing(self, container_id: int) -> bool:
        """True when a live container's primary data object is gone
        (restore planning peeks this to anticipate degraded reads)."""
        return (
            self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=container_id))
            is None
        )

    def container_size(self, container_id: int) -> int:
        """Data-object size of one container (accounting only, free).

        When the primary object is missing but the durability tier holds
        a record for the container, the recorded payload length answers
        instead — sizing never forces a degraded read.
        """
        size = self._oss.peek_size(self._bucket, self.DATA_KEY.format(cid=container_id))
        if size is None and self.durability is not None:
            size = self.durability.recorded_length(container_id)
        if size is None:
            raise ObjectNotFoundError(self._bucket, self.DATA_KEY.format(cid=container_id))
        return size
