"""The similar-file index (Section III-B).

"Similar index stores the representative fingerprints of each file, which
is used to find similar files.  According to Broder's theorem, ... if two
files share some representative fingerprints, they are considered similar."

Detection order follows Section IV-A, step 1: the latest historical version
is found by file path first (cheap and usually right); only when that fails
does the L-node sample the file header and vote over representative
fingerprints.  The index is small and persisted to OSS after each backup so
stateless L-nodes can always load the current view.
"""

from __future__ import annotations

import struct
from collections import Counter
from collections.abc import Iterable

from repro.fingerprint.hashing import FP_SIZE
from repro.oss.object_store import ObjectStorageService

_OBJECT_KEY = "similar/index"
_HEADER = struct.Struct(">II")          # file count, representative count
_NAME_ENTRY = struct.Struct(">HI")      # path length, latest version
_REP_ENTRY = struct.Struct(">20sHI")    # fp, path length, version


class SimilarFileIndex:
    """Path → latest version plus representative fingerprint votes."""

    def __init__(self, oss: ObjectStorageService, bucket: str = "slimstore") -> None:
        self._oss = oss
        self._bucket = bucket
        self._latest: dict[str, int] = {}
        self._by_rep: dict[bytes, tuple[str, int]] = {}
        oss.create_bucket(bucket)

    # --- queries -----------------------------------------------------------
    def latest_version(self, path: str) -> int | None:
        """Most recent backup version of ``path``, or None."""
        return self._latest.get(path)

    def find_similar(
        self, sample_fps: Iterable[bytes], min_votes: int = 1
    ) -> tuple[str, int] | None:
        """The (path, version) sharing the most representative fingerprints.

        Returns None when no candidate reaches ``min_votes`` shared
        fingerprints — such files are backed up without a dedup base.
        """
        votes: Counter[tuple[str, int]] = Counter()
        for fp in sample_fps:
            owner = self._by_rep.get(fp)
            if owner is not None:
                votes[owner] += 1
        if not votes:
            return None
        best, best_votes = votes.most_common(1)[0]
        if best_votes < min_votes:
            return None
        return best

    # --- updates ---------------------------------------------------------------
    def register(self, path: str, version: int, representatives: Iterable[bytes]) -> None:
        """Record a finished backup and persist the updated index to OSS."""
        self._latest[path] = max(version, self._latest.get(path, version))
        for fp in representatives:
            self._by_rep[fp] = (path, version)
        self._persist()

    def forget_version(self, path: str, version: int) -> None:
        """Drop representative entries pointing at a deleted version."""
        stale = [
            fp for fp, owner in self._by_rep.items() if owner == (path, version)
        ]
        for fp in stale:
            del self._by_rep[fp]
        if self._latest.get(path) == version:
            del self._latest[path]
        self._persist()

    def rollback_registration(
        self, path: str, version: int, previous: int | None
    ) -> None:
        """Undo an uncommitted version's registration (crash recovery).

        Unlike :meth:`forget_version` — which retires a *committed*
        version and may leave the path unknown — a rollback restores the
        last committed version as the path's latest, so the next backup
        of ``path`` continues the version sequence instead of restarting
        at 0 and colliding with live versions.
        """
        stale = [
            fp for fp, owner in self._by_rep.items() if owner == (path, version)
        ]
        for fp in stale:
            del self._by_rep[fp]
        if self._latest.get(path) == version:
            if previous is None:
                del self._latest[path]
            else:
                self._latest[path] = previous
        self._persist()

    # --- persistence ------------------------------------------------------------
    def _persist(self) -> None:
        blob = bytearray(_HEADER.pack(len(self._latest), len(self._by_rep)))
        for path, version in sorted(self._latest.items()):
            encoded = path.encode()
            blob += _NAME_ENTRY.pack(len(encoded), version)
            blob += encoded
        for fp, (path, version) in sorted(self._by_rep.items()):
            encoded = path.encode()
            blob += _REP_ENTRY.pack(fp, len(encoded), version)
            blob += encoded
        self._oss.put_object(self._bucket, _OBJECT_KEY, bytes(blob))

    def load(self) -> bool:
        """Reload state from OSS; True if an index object existed."""
        if self._oss.peek_size(self._bucket, _OBJECT_KEY) is None:
            return False
        payload = self._oss.get_object(self._bucket, _OBJECT_KEY)
        name_count, rep_count = _HEADER.unpack_from(payload, 0)
        position = _HEADER.size
        self._latest.clear()
        self._by_rep.clear()
        for _ in range(name_count):
            path_len, version = _NAME_ENTRY.unpack_from(payload, position)
            position += _NAME_ENTRY.size
            path = payload[position : position + path_len].decode()
            position += path_len
            self._latest[path] = version
        for _ in range(rep_count):
            fp, path_len, version = _REP_ENTRY.unpack_from(payload, position)
            position += _REP_ENTRY.size
            path = payload[position : position + path_len].decode()
            position += path_len
            if len(fp) != FP_SIZE:
                continue
            self._by_rep[fp] = (path, version)
        return True

    def stored_bytes(self) -> int:
        """Bytes of the persisted index object (free)."""
        return self._oss.peek_size(self._bucket, _OBJECT_KEY) or 0
