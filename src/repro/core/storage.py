"""The storage layer as one bundle.

Everything in this dataclass lives on OSS (Fig 1 of the paper): container
store, recipe store, similar-file index and the global index.  Compute
nodes receive the bundle; they hold no durable state of their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.container import ContainerStore
from repro.core.global_index import GlobalIndex
from repro.core.recipe import RecipeStore
from repro.core.similar_index import SimilarFileIndex
from repro.oss.object_store import ObjectStorageService


@dataclass
class StorageLayer:
    """The OSS-resident storage layer shared by every compute node."""

    oss: ObjectStorageService
    containers: ContainerStore
    recipes: RecipeStore
    similar_index: SimilarFileIndex
    global_index: GlobalIndex

    @classmethod
    def create(
        cls,
        oss: ObjectStorageService,
        bucket: str = "slimstore",
        index_bucket: str = "slimstore-index",
        bloom_capacity: int = 1 << 20,
        use_bloom: bool = True,
    ) -> "StorageLayer":
        """Create all stores on one OSS endpoint."""
        return cls(
            oss=oss,
            containers=ContainerStore(oss, bucket),
            recipes=RecipeStore(oss, bucket),
            similar_index=SimilarFileIndex(oss, bucket),
            global_index=GlobalIndex(
                oss, index_bucket, bloom_capacity=bloom_capacity, use_bloom=use_bloom
            ),
        )
