"""The storage layer as one bundle.

Everything in this dataclass lives on OSS (Fig 1 of the paper): container
store, recipe store, similar-file index and the global index.  Compute
nodes receive the bundle; they hold no durable state of their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.container import ContainerStore
from repro.core.durability import DurabilityManager, ReplicationPolicy
from repro.core.global_index import GlobalIndex
from repro.core.journal import IntentJournal
from repro.core.recipe import RecipeStore
from repro.core.similar_index import SimilarFileIndex
from repro.fingerprint.hashing import Fingerprinter, fingerprint, make_fingerprinter
from repro.oss.object_store import ObjectStorageService
from repro.oss.retry import RetryBudget, RetryingObjectStore, RetryPolicy


class ReadMeter:
    """Context manager measuring OSS read-seconds accrued inside it.

    The restore engine and planner need the virtual duration of each
    individual OSS access (to feed the event-driven pipeline); this wraps
    the snapshot/diff idiom::

        with storage.meter_reads() as meter:
            payload = storage.containers.read_data(cid)
        read_seconds.append(meter.seconds)
    """

    def __init__(self, oss) -> None:
        self._oss = oss
        self.seconds = 0.0

    def __enter__(self) -> "ReadMeter":
        self._before = self._oss.stats.snapshot()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = self._oss.stats.diff(self._before).read_seconds


@dataclass
class StorageLayer:
    """The OSS-resident storage layer shared by every compute node."""

    oss: ObjectStorageService | RetryingObjectStore
    containers: ContainerStore
    recipes: RecipeStore
    similar_index: SimilarFileIndex
    global_index: GlobalIndex
    journal: IntentJournal
    #: The heat-aware replication/erasure tier (None when disabled).
    durability: DurabilityManager | None = None
    #: Chunk fingerprint function — one per repository, shared by every
    #: engine that hashes or verifies payloads (dedup, restore, scrub).
    fingerprinter: Fingerprinter = fingerprint

    def meter_reads(self) -> ReadMeter:
        """A :class:`ReadMeter` over this layer's OSS endpoint."""
        return ReadMeter(self.oss)

    @classmethod
    def create(
        cls,
        oss: ObjectStorageService,
        bucket: str = "slimstore",
        index_bucket: str = "slimstore-index",
        bloom_capacity: int = 1 << 20,
        use_bloom: bool = True,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        index_shard_count: int = 1,
        tombstone_grace_epochs: int = 0,
        durability_policy: ReplicationPolicy | None = None,
        fingerprint_algo: str = "sha1",
    ) -> "StorageLayer":
        """Create all stores on one OSS endpoint.

        With a ``retry_policy``, every component talks to OSS through a
        :class:`~repro.oss.retry.RetryingObjectStore`, so transient OSS
        failures are absorbed below the dedup/restore engines.  A shared
        ``retry_budget`` (typically one per fleet) additionally bounds
        the aggregate retry volume across repositories.  The intent
        journal shares the main bucket; the container store gets it for
        journaled in-place rewrites, plus the tombstone grace.
        """
        endpoint = (
            oss
            if retry_policy is None
            else RetryingObjectStore(oss, retry_policy, budget=retry_budget)
        )
        fingerprinter = make_fingerprinter(fingerprint_algo)
        journal = IntentJournal(endpoint, bucket)
        containers = ContainerStore(
            endpoint,
            bucket,
            journal=journal,
            grace_epochs=tombstone_grace_epochs,
        )
        durability = None
        if durability_policy is not None:
            durability = DurabilityManager(
                containers, durability_policy, journal, fingerprinter=fingerprinter
            )
            containers.durability = durability
        return cls(
            oss=endpoint,
            containers=containers,
            recipes=RecipeStore(endpoint, bucket),
            similar_index=SimilarFileIndex(endpoint, bucket),
            global_index=GlobalIndex(
                endpoint,
                index_bucket,
                bloom_capacity=bloom_capacity,
                use_bloom=use_bloom,
                shard_count=index_shard_count,
            ),
            journal=journal,
            durability=durability,
            fingerprinter=fingerprinter,
        )
