"""Repository scrubbing: an fsck for the backup store.

Production backup systems verify at rest what they promised at backup
time.  The scrubber performs two passes:

* **container pass** — re-hash every live chunk payload (aliases included,
  since restores resolve through them) and compare against its metadata
  fingerprint, catching bit rot and torn writes;
* **recipe pass** — walk every live version's recipe and prove each chunk
  record resolvable: present in its recorded container, or reachable
  through a global-index redirect (the path old versions take after
  reverse deduplication or compaction moved their chunks).

Both passes are read-only.  Corruption is reported, never "repaired".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.storage import StorageLayer
from repro.fingerprint.hashing import fingerprint


@dataclass
class ScrubReport:
    """Findings of one scrub run."""

    containers_checked: int = 0
    chunks_verified: int = 0
    corrupt_chunks: list[tuple[int, bytes]] = field(default_factory=list)
    recipes_checked: int = 0
    records_verified: int = 0
    redirected_records: int = 0
    unresolvable_records: list[tuple[str, int, bytes]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no corruption or dangling references were found."""
        return not self.corrupt_chunks and not self.unresolvable_records


class RepositoryScrubber:
    """Read-only integrity verification over the whole storage layer."""

    def __init__(self, storage: StorageLayer) -> None:
        self.storage = storage

    def scrub(self, versions: dict[str, list[int]] | None = None) -> ScrubReport:
        """Run both passes; ``versions`` maps path → live version list
        (from the catalog) for the recipe pass (skipped when None)."""
        report = ScrubReport()
        self._scrub_containers(report)
        if versions:
            self._scrub_recipes(versions, report)
        return report

    # ------------------------------------------------------------------
    def _scrub_containers(self, report: ScrubReport) -> None:
        containers = self.storage.containers
        for cid in containers.container_ids():
            meta = containers.read_meta(cid)
            payload = containers.read_data(cid)
            report.containers_checked += 1
            for entry in meta.live_lookup_entries():
                chunk = payload[entry.offset : entry.offset + entry.size]
                report.chunks_verified += 1
                if fingerprint(chunk) != entry.fp:
                    report.corrupt_chunks.append((cid, entry.fp))

    def _scrub_recipes(
        self, versions: dict[str, list[int]], report: ScrubReport
    ) -> None:
        containers = self.storage.containers
        meta_cache: dict[int, object] = {}

        def resolvable(cid: int, fp: bytes) -> bool:
            if not containers.exists(cid):
                return False
            meta = meta_cache.get(cid)
            if meta is None:
                meta = containers.read_meta(cid)
                meta_cache[cid] = meta
            entry = meta.find(fp)
            return entry is not None and not entry.deleted

        for path, live in sorted(versions.items()):
            for version in live:
                recipe = self.storage.recipes.get_recipe(path, version)
                report.recipes_checked += 1
                for record in recipe.all_records():
                    report.records_verified += 1
                    if resolvable(record.container_id, record.fp):
                        continue
                    owner = self.storage.global_index.lookup(record.fp)
                    if owner is not None and resolvable(owner, record.fp):
                        report.redirected_records += 1
                        continue
                    report.unresolvable_records.append(
                        (path, version, record.fp)
                    )
