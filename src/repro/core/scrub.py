"""Repository scrubbing: an fsck for the backup store.

Production backup systems verify at rest what they promised at backup
time.  The scrubber performs two passes:

* **container pass** — re-hash every live chunk payload (aliases included,
  since restores resolve through them) and compare against its metadata
  fingerprint, catching bit rot and torn writes;
* **recipe pass** — walk every live version's recipe and prove each chunk
  record resolvable: present in its recorded container, or reachable
  through a global-index redirect (the path old versions take after
  reverse deduplication or compaction moved their chunks).

Both passes are read-only by default.  With ``repair=True`` a third pass
heals each corrupt chunk from a healthy copy of the same fingerprint —
found through the global-index redirect path first, then by scanning the
remaining containers (deduplicated copies marked deleted but not yet
rewritten still carry valid bytes) — and rewrites the damaged container's
data object in place.  Chunks with no healthy copy anywhere are
*quarantined*: marked deleted in the container metadata so neither dedup
nor restore will ever serve the rotten bytes again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.storage import StorageLayer
from repro.errors import ObjectNotFoundError
from repro.fingerprint.hashing import fingerprint


@dataclass
class ScrubReport:
    """Findings of one scrub run."""

    containers_checked: int = 0
    chunks_verified: int = 0
    corrupt_chunks: list[tuple[int, bytes]] = field(default_factory=list)
    recipes_checked: int = 0
    records_verified: int = 0
    redirected_records: int = 0
    unresolvable_records: list[tuple[str, int, bytes]] = field(default_factory=list)
    #: Repair-pass outcome (zero/empty on read-only scrubs).
    chunks_repaired: int = 0
    containers_rewritten: int = 0
    quarantined_chunks: list[tuple[int, bytes]] = field(default_factory=list)
    #: Containers where only one of ``.data``/``.meta`` survives.  These
    #: are invisible to the container pass (quarantined ids serve no
    #: reads), so they are reported from the container store's
    #: attach-time evidence; after crash recovery has collected the
    #: explainable ones, anything left here is a referenced torn pair —
    #: real data loss.
    torn_containers: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no corruption or dangling references were found."""
        return (
            not self.corrupt_chunks
            and not self.unresolvable_records
            and not self.torn_containers
        )

    @property
    def fully_repaired(self) -> bool:
        """True when every corrupt chunk found was healed (none quarantined)."""
        return (
            len(self.corrupt_chunks) == self.chunks_repaired
            and not self.quarantined_chunks
        )


class RepositoryScrubber:
    """Integrity verification (and optional repair) over the storage layer."""

    def __init__(self, storage: StorageLayer) -> None:
        self.storage = storage
        self._fingerprint = getattr(storage, "fingerprinter", fingerprint)

    def scrub(
        self,
        versions: dict[str, list[int]] | None = None,
        repair: bool = False,
    ) -> ScrubReport:
        """Run both passes; ``versions`` maps path → live version list
        (from the catalog) for the recipe pass (skipped when None).

        With ``repair``, corrupt chunks found by the container pass are
        healed from a healthy copy where one exists and quarantined where
        none does; the recipe pass then runs against the repaired state.
        """
        report = ScrubReport()
        report.torn_containers = sorted(self.storage.containers.torn_pairs)
        self._scrub_containers(report)
        if repair and report.corrupt_chunks:
            self._repair_containers(report)
        if versions:
            self._scrub_recipes(versions, report)
        return report

    # ------------------------------------------------------------------
    def _scrub_containers(self, report: ScrubReport) -> None:
        containers = self.storage.containers
        for cid in containers.container_ids():
            meta = containers.read_meta(cid)
            payload = containers.read_data(cid)
            report.containers_checked += 1
            for entry in meta.live_lookup_entries():
                chunk = payload[entry.offset : entry.offset + entry.size]
                report.chunks_verified += 1
                if self._fingerprint(chunk) != entry.fp:
                    report.corrupt_chunks.append((cid, entry.fp))

    def _scrub_recipes(
        self, versions: dict[str, list[int]], report: ScrubReport
    ) -> None:
        containers = self.storage.containers
        meta_cache: dict[int, object] = {}

        def resolvable(cid: int, fp: bytes) -> bool:
            if not containers.exists(cid):
                return False
            meta = meta_cache.get(cid)
            if meta is None:
                meta = containers.read_meta(cid)
                meta_cache[cid] = meta
            entry = meta.find(fp)
            return entry is not None and not entry.deleted

        for path, live in sorted(versions.items()):
            for version in live:
                recipe = self.storage.recipes.get_recipe(path, version)
                report.recipes_checked += 1
                for record in recipe.all_records():
                    report.records_verified += 1
                    if resolvable(record.container_id, record.fp):
                        continue
                    owner = self.storage.global_index.lookup(record.fp)
                    if owner is not None and resolvable(owner, record.fp):
                        report.redirected_records += 1
                        continue
                    report.unresolvable_records.append(
                        (path, version, record.fp)
                    )

    # ------------------------------------------------------------------
    # Repair pass
    # ------------------------------------------------------------------
    def _repair_containers(self, report: ScrubReport) -> None:
        """Heal every corrupt chunk that has a healthy copy somewhere."""
        containers = self.storage.containers
        by_container: dict[int, list[bytes]] = {}
        for cid, fp in report.corrupt_chunks:
            by_container.setdefault(cid, []).append(fp)

        payload_cache: dict[int, bytes] = {}
        meta_cache: dict[int, object] = {}
        for cid, fps in sorted(by_container.items()):
            meta = containers.read_meta(cid)
            payload = bytearray(containers.read_data(cid))
            payload_dirty = False
            meta_dirty = False
            for fp in fps:
                entry = meta.find(fp)
                if entry is None:
                    continue
                healthy = self._find_healthy_copy(
                    fp, entry.size, cid, payload_cache, meta_cache
                )
                if healthy is not None:
                    payload[entry.offset : entry.offset + entry.size] = healthy
                    report.chunks_repaired += 1
                    payload_dirty = True
                else:
                    # Truly unrecoverable: quarantine so neither dedup nor
                    # restore ever serves the rotten bytes.
                    if meta.mark_deleted(fp):
                        meta_dirty = True
                    report.quarantined_chunks.append((cid, fp))
            if payload_dirty:
                containers.replace_data(cid, bytes(payload))
                payload_cache.pop(cid, None)
                report.containers_rewritten += 1
            if meta_dirty:
                containers.update_meta(meta)
                meta_cache.pop(cid, None)

    def _find_healthy_copy(
        self,
        fp: bytes,
        size: int,
        exclude_cid: int,
        payload_cache: dict[int, bytes],
        meta_cache: dict[int, object],
    ) -> bytes | None:
        """Verified bytes for ``fp`` from any container but ``exclude_cid``.

        The durability tier is consulted first: the damaged container's
        own replicas or erasure stripe hold the exact bytes the scrub is
        repairing, so a single failover read beats any scan (and with a
        durability tier a domain-wide outage repairs with zero
        quarantines).  After that the global-index owner is tried (the
        redirect path restores already use); failing that, every other
        container is scanned — including entries marked deleted, whose
        bytes survive until the container is rewritten and are a
        legitimate repair source.
        """
        containers = self.storage.containers
        if containers.durability is not None:
            chunk = containers.durability.fetch_chunk(exclude_cid, fp)
            if chunk is not None and len(chunk) == size:
                return chunk
        candidates: list[int] = []
        owner = self.storage.global_index.lookup(fp)
        if owner is not None and owner != exclude_cid:
            candidates.append(owner)
        for cid in containers.container_ids():
            if cid != exclude_cid and cid not in candidates:
                candidates.append(cid)

        for cid in candidates:
            if not containers.exists(cid):
                continue
            meta = meta_cache.get(cid)
            if meta is None:
                try:
                    meta = containers.read_meta(cid)
                except (ObjectNotFoundError, KeyError):
                    continue
                meta_cache[cid] = meta
            entry = meta.find(fp)
            if entry is None or entry.size != size:
                continue
            payload = payload_cache.get(cid)
            if payload is None:
                try:
                    payload = containers.read_data(cid)
                except (ObjectNotFoundError, KeyError):
                    continue
                payload_cache[cid] = payload
            chunk = payload[entry.offset : entry.offset + entry.size]
            if self._fingerprint(chunk) == fp:
                return chunk
        return None
