"""Snapshots: grouping one full-volume backup run across files.

The paper's service scenario is "continuous backup requirements for
full-volume data" — a user uploads the state of *all* their files at one
point in time.  A snapshot records which version of each file belongs to
one backup run, so a whole run can be restored or collected as a unit
while the per-file machinery (recipes, versions, dedup) stays unchanged.

Snapshot manifests are small JSON objects on OSS, so they survive process
restarts together with the rest of the repository.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.oss.object_store import ObjectStorageService


class SnapshotNotFoundError(ReproError, KeyError):
    """The requested snapshot does not exist."""

    def __init__(self, snapshot_id: str) -> None:
        super().__init__(f"snapshot not found: {snapshot_id}")
        self.snapshot_id = snapshot_id


@dataclass
class Snapshot:
    """One full-volume backup run: file path → version number."""

    snapshot_id: str
    members: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialise for the OSS manifest object."""
        return json.dumps(
            {"snapshot_id": self.snapshot_id, "members": self.members}
        )

    @classmethod
    def from_json(cls, payload: str) -> "Snapshot":
        raw = json.loads(payload)
        return cls(raw["snapshot_id"], {str(k): int(v) for k, v in raw["members"].items()})


class SnapshotStore:
    """Snapshot manifests on OSS, with ordered ids."""

    PREFIX = "snapshots/"

    def __init__(self, oss: ObjectStorageService, bucket: str = "slimstore") -> None:
        self._oss = oss
        self._bucket = bucket
        self._next_id = 0
        oss.create_bucket(bucket)

    def recover(self, reserved_ids: Iterable[str] = ()) -> int:
        """Resume the id sequence from OSS; returns live snapshot count.

        ``reserved_ids`` names snapshot ids claimed by journal intents of
        interrupted backup runs.  Their manifests may not exist (the
        crash hit before publish), so deriving the next id from persisted
        manifests alone would hand the same id to a new run and let it
        collide with the journaled one once recovery resolves it — the
        sequence resumes past both populations.  Non-numeric keys under
        the prefix are skipped instead of crashing the attach.
        """
        ids: list[int] = []
        count = 0
        for key in self._oss.peek_keys(self._bucket, self.PREFIX):
            stem = key[len(self.PREFIX):]
            if not stem.isdigit():
                continue
            ids.append(int(stem))
            count += 1
        for reserved in reserved_ids:
            if str(reserved).isdigit():
                ids.append(int(reserved))
        if ids:
            self._next_id = max(ids) + 1
        return count

    def allocate_id(self) -> str:
        """The next snapshot id (zero-padded so ids sort by time)."""
        snapshot_id = f"{self._next_id:08d}"
        self._next_id += 1
        return snapshot_id

    def put(self, snapshot: Snapshot) -> None:
        """Persist a snapshot manifest."""
        self._oss.put_object(
            self._bucket,
            self.PREFIX + snapshot.snapshot_id,
            snapshot.to_json().encode(),
        )

    def get(self, snapshot_id: str) -> Snapshot:
        """Load a snapshot manifest."""
        try:
            payload = self._oss.get_object(self._bucket, self.PREFIX + snapshot_id)
        except KeyError as exc:
            raise SnapshotNotFoundError(snapshot_id) from exc
        return Snapshot.from_json(payload.decode())

    def delete(self, snapshot_id: str) -> bool:
        """Delete a snapshot manifest; True if it existed."""
        return self._oss.delete_object(self._bucket, self.PREFIX + snapshot_id)

    def list_ids(self) -> list[str]:
        """All snapshot ids, oldest first."""
        return sorted(
            key[len(self.PREFIX):]
            for key in self._oss.peek_keys(self._bucket, self.PREFIX)
        )
