"""The SLIMSTORE system: storage layer, L-node services, G-node services.

Public entry point is :class:`~repro.core.system.SlimStore`, which wires the
OSS-resident storage layer (container store, recipe store, similar-file
index, global index) to stateless L-nodes for online backup/restore and a
G-node for offline space optimisation.
"""

from repro.core.config import SlimStoreConfig
from repro.core.container import ChunkLocation, ContainerMeta, ContainerStore
from repro.core.recipe import ChunkRecord, Recipe, RecipeIndex, RecipeStore
from repro.core.similar_index import SimilarFileIndex
from repro.core.global_index import GlobalIndex
from repro.core.dedup import BackupEngine, BackupResult
from repro.core.journal import Intent, IntentJournal
from repro.core.recovery import FsckReport, RecoveryManager, RecoveryReport
from repro.core.restore import RestoreEngine, RestoreResult
from repro.core.lnode import LNode
from repro.core.gnode import GNode
from repro.core.cluster import ClusterSimulator, JobSpec, ShardedIndexSpec
from repro.core.scrub import RepositoryScrubber, ScrubReport
from repro.core.snapshot import Snapshot, SnapshotStore
from repro.core.tenancy import BackupService, TenantUsage
from repro.core.system import BackupReport, RestoreReport, SlimStore, SpaceReport

__all__ = [
    "SlimStoreConfig",
    "ChunkLocation",
    "ContainerMeta",
    "ContainerStore",
    "ChunkRecord",
    "Recipe",
    "RecipeIndex",
    "RecipeStore",
    "SimilarFileIndex",
    "GlobalIndex",
    "BackupEngine",
    "BackupResult",
    "Intent",
    "IntentJournal",
    "FsckReport",
    "RecoveryManager",
    "RecoveryReport",
    "RestoreEngine",
    "RestoreResult",
    "LNode",
    "GNode",
    "ClusterSimulator",
    "JobSpec",
    "ShardedIndexSpec",
    "RepositoryScrubber",
    "ScrubReport",
    "Snapshot",
    "SnapshotStore",
    "BackupService",
    "TenantUsage",
    "SlimStore",
    "BackupReport",
    "RestoreReport",
    "SpaceReport",
]
