"""Online deduplication on the L-node (Section IV).

The three-step workflow:

1. *Detect* a historical version (by path) or a similar file (by sampled
   header fingerprints against the similar-file index), and fetch the
   detected file's recipe index.
2. *Chunk and deduplicate*: cut the stream with CDC, look sampled
   fingerprints up in the recipe index, prefetch the matching segment
   recipes into the dedup cache, and filter duplicates through the cache's
   logical locality.  Two history-aware accelerations ride on this loop:
   **skip chunking** (jump the cut point forward by the previous version's
   next chunk size and verify the cut condition, Section IV-B) and
   **SuperChunking** (match whole superchunks via their firstChunk,
   Algorithm 1).
3. *Segment and persist*: pack unique chunks into containers, group chunk
   records into segment recipes, merge qualifying duplicate runs into
   superchunks (Section IV-C), then persist containers, recipe, recipe
   index and the similar-file registration.

All CPU and network work is charged to a :class:`TimeBreakdown` in the
paper's categories, which is where the Fig 2 / Fig 5(d) breakdowns and all
dedup throughput figures come from.

Since the ingest-pipeline PR every charge is *also* attributed to a
per-segment stage trace (:class:`IngestTrace`): chunking + fingerprinting
to the chunk stage, classification/cache/prefetch work to the lookup
stage, container uploads to discrete flush events.  With
``config.ingest_pipeline`` the engine additionally Bloom-prefilters each
segment's candidate fingerprints in one batched pass and models their
batched ``get_many`` round trips, then replays the trace through
:func:`repro.sim.events.simulate_backup_pipeline` — an event-driven
schedule where chunking runs ahead of the lookup spine and container
flushes double-buffer against it.  The pipelined engine executes the
*identical* classification sequence and OSS request stream as the serial
path (the modelled round trips never touch the store), so recipes,
containers and restores are byte-identical — including under fault
injection, whose seeded RNG consumes one draw per real request.  See
``docs/INGEST.md``.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field

from repro.chunking.base import BoundarySet, make_chunker
from repro.core.config import SlimStoreConfig
from repro.core.container import ContainerBuilder
from repro.core.recipe import ChunkRecord, Recipe, RecipeHandle, RecipeIndex
from repro.core.storage import StorageLayer
from repro.errors import RetryExhaustedError, TransientOSSError
from repro.fingerprint.hashing import make_fingerprinter
from repro.fingerprint.sampling import is_sampled
from repro.sim.cost_model import CostModel
from repro.sim.events import IngestPipelineStats, simulate_backup_pipeline
from repro.sim.metrics import Counters, TimeBreakdown

#: Exceptions that flip a backup job into degraded mode instead of
#: aborting it: the dedup base on OSS is (temporarily) unreachable.
DEDUP_LOOKUP_FAILURES = (TransientOSSError, RetryExhaustedError)

#: Maximum segment recipes held in the L-node dedup cache at once.
DEDUP_CACHE_SEGMENTS = 256


class DedupCache:
    """Prefetched segment recipes of the detected historical/similar file.

    Provides the two lookups the engine needs: fingerprint → record (with
    logical locality: a whole segment arrives per prefetch) and record →
    successor record (what skip chunking uses to predict the next cut).
    Superchunk records are additionally indexed under their firstChunk
    fingerprint so Algorithm 1 can trigger.
    """

    def __init__(self, max_segments: int = DEDUP_CACHE_SEGMENTS) -> None:
        self._segments: OrderedDict[int, list[ChunkRecord]] = OrderedDict()
        self._by_fp: dict[bytes, tuple[int, int]] = {}
        self._max_segments = max_segments

    def has_segment(self, ordinal: int) -> bool:
        """True if the segment recipe is already cached."""
        return ordinal in self._segments

    def insert_segment(self, ordinal: int, records: list[ChunkRecord]) -> None:
        """Cache one prefetched segment recipe (LRU-evicting the oldest)."""
        if ordinal in self._segments:
            return
        while len(self._segments) >= self._max_segments:
            old_ordinal, old_records = self._segments.popitem(last=False)
            for position, record in enumerate(old_records):
                self._drop_keys(record, old_ordinal, position)
        self._segments[ordinal] = records
        for position, record in enumerate(records):
            self._by_fp.setdefault(record.fp, (ordinal, position))
            if record.is_superchunk:
                self._by_fp.setdefault(record.first_fp, (ordinal, position))

    def _drop_keys(self, record: ChunkRecord, ordinal: int, position: int) -> None:
        for key in (record.fp, record.first_fp if record.is_superchunk else None):
            if key is not None and self._by_fp.get(key) == (ordinal, position):
                del self._by_fp[key]

    def lookup(self, fp: bytes) -> tuple[ChunkRecord, tuple[int, int]] | None:
        """Record whose fp (or superchunk firstChunk fp) equals ``fp``."""
        location = self._by_fp.get(fp)
        if location is None:
            return None
        ordinal, position = location
        return self._segments[ordinal][position], location

    def successor(self, location: tuple[int, int]) -> tuple[ChunkRecord, tuple[int, int]] | None:
        """The record after ``location`` within its segment, if cached."""
        ordinal, position = location
        records = self._segments.get(ordinal)
        if records is None:
            return None
        if position + 1 < len(records):
            return records[position + 1], (ordinal, position + 1)
        following = self._segments.get(ordinal + 1)
        if following:
            return following[0], (ordinal + 1, 0)
        return None


@dataclass
class IngestTrace:
    """Per-segment stage durations of one backup job, replayable later.

    The same :class:`TimeBreakdown` charges, re-attributed to the ingest
    pipeline's stages per recipe-aligned segment: ``chunk_seconds`` (CDC
    scan + fingerprinting — content-only work that may run ahead),
    ``lookup_seconds`` (classification CPU, cache probes and blocking
    recipe prefetch downloads — the sequential spine), ``lookup_rpcs``
    (the segment's modelled batched ``get_many`` round trips, empty in
    serial mode) and discrete container-flush events
    (``flush_after[j]`` = ordinal of the segment being built when flush
    ``j`` fired).  ``setup_seconds``/``finish_seconds`` are the serial
    prefix (base detection) and tail (recipe persistence).
    """

    setup_seconds: float = 0.0
    chunk_seconds: list[float] = field(default_factory=list)
    lookup_seconds: list[float] = field(default_factory=list)
    lookup_rpcs: list[list[float]] = field(default_factory=list)
    flush_after: list[int] = field(default_factory=list)
    flush_seconds: list[float] = field(default_factory=list)
    finish_seconds: float = 0.0


@dataclass
class BackupResult:
    """Everything one backup job produced and observed."""

    path: str
    version: int
    recipe: Recipe
    breakdown: TimeBreakdown
    counters: Counters
    logical_bytes: int
    stored_chunk_bytes: int
    uploaded_bytes: int
    new_container_ids: list[int]
    #: container id → (referenced chunk count, referenced bytes) for this
    #: version, feeding sparse-container detection (Section V-B).
    referenced_containers: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: True when the dedup base became unreachable mid-job and chunks were
    #: stored as unique without duplicate verification (degraded mode).
    degraded: bool = False
    #: Fingerprints persisted while degraded; the G-node's reverse
    #: deduplication reclaims the redundancy they may carry.
    degraded_fps: list[bytes] = field(default_factory=list)
    #: Distinct fingerprints this job stored as unique — the population
    #: the G-node pushes through the sharded global index afterwards,
    #: which is what the cluster ingest model's per-shard contention and
    #: the post-maintenance index invariants are computed from.
    unique_fps: list[bytes] = field(default_factory=list)
    #: Per-segment stage trace (always recorded; the cluster simulator
    #: replays it with contention via ``BackupJobSpec``).
    ingest: IngestTrace | None = None
    #: Event-simulated ingest schedule (set when ``config.ingest_pipeline``
    #: is enabled; ``elapsed_seconds`` then reports the pipeline's time).
    pipeline: IngestPipelineStats | None = None

    @property
    def dedup_ratio(self) -> float:
        """Fraction of logical bytes eliminated (the paper's metric)."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_chunk_bytes / self.logical_bytes

    @property
    def elapsed_seconds(self) -> float:
        """Virtual job duration with CPU/network pipelining."""
        if self.pipeline is not None:
            return self.pipeline.elapsed_seconds
        return self.breakdown.elapsed_pipelined()

    @property
    def closed_form_elapsed_seconds(self) -> float:
        """The max-rule closed form, kept as the event model's cross-check."""
        return self.breakdown.elapsed_pipelined()

    @property
    def intra_file_dup_hits(self) -> int:
        """Global-index probes the per-job fingerprint memo absorbed."""
        return self.counters.get("intra_file_dup_hits")

    @property
    def throughput_mb_s(self) -> float:
        """Deduplication throughput in MB/s of logical data."""
        elapsed = self.elapsed_seconds
        if elapsed == 0:
            return 0.0
        return self.logical_bytes / elapsed / (1 << 20)

    @property
    def average_chunk_bytes(self) -> float:
        """Mean logical chunk size in this version's recipe."""
        count = self.recipe.chunk_count()
        if count == 0:
            return 0.0
        return self.logical_bytes / count


class BackupEngine:
    """One L-node backup job: deduplicate a file stream and persist it."""

    def __init__(
        self,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
        executor=None,
    ) -> None:
        self.config = config
        self.storage = storage
        self.cost_model = cost_model or CostModel()
        self._chunker = make_chunker(config.chunker, config.chunker_params())
        self._merge_policy = config.merge_policy()
        self._fingerprint = make_fingerprinter(config.fingerprint_algo)
        #: Optional :class:`~repro.exec.engine.ParallelExecutor` running
        #: the boundary scan and chunk fingerprints on real workers.
        self._executor = executor

    # ------------------------------------------------------------------
    def backup(
        self,
        path: str,
        data: bytes,
        rewrite_containers: set[int] | None = None,
    ) -> BackupResult:
        """Deduplicate ``data`` as the next version of ``path``.

        ``rewrite_containers`` is the hook rewriting baselines (HAR) use:
        duplicates that resolve into one of these containers are stored
        again instead of being deduplicated.
        """
        breakdown = TimeBreakdown()
        counters = Counters()
        fp_memo: dict[tuple[int, int], bytes] = {}
        if self._executor is not None and self._executor.active:
            # Real workers: vectorised slab scan + pooled fingerprints of
            # every plain-CDC chunk span.  Both are pure functions of the
            # payload, so the classification below is byte-identical;
            # spans it invents itself (skips, superchunks) hash inline.
            boundary_set, fp_memo = self._executor.chunk_and_fingerprint(
                self._chunker, data, self.config.fingerprint_algo
            )
        else:
            boundary_set = self._chunker.boundaries(data)

        handle, recipe_index = self._detect_base(
            path, data, boundary_set, breakdown, counters, fp_memo
        )
        # Everything charged so far (name lookup, header probe, recipe
        # index fetch) is the pipeline's serial setup prefix.
        setup_seconds = breakdown.cpu_seconds() + breakdown.network_seconds()
        latest = self.storage.similar_index.latest_version(path)
        version = 0 if latest is None else latest + 1

        job = _JobState(
            engine=self,
            path=path,
            version=version,
            data=data,
            boundaries=boundary_set,
            handle=handle,
            recipe_index=recipe_index,
            breakdown=breakdown,
            counters=counters,
            rewrite_containers=rewrite_containers or set(),
            fp_memo=fp_memo,
        )
        job.trace.setup_seconds = setup_seconds
        if counters.get("degraded_events"):
            # The detected base's recipe could not be fetched: the whole
            # job runs without duplicate verification.
            job.degraded = True
        job.run()
        result = job.finish()
        if self.config.ingest_pipeline:
            trace = result.ingest
            result.pipeline = simulate_backup_pipeline(
                trace.chunk_seconds,
                trace.lookup_seconds,
                lookup_rpcs=trace.lookup_rpcs,
                flush_after=trace.flush_after,
                flush_seconds=trace.flush_seconds,
                setup_seconds=trace.setup_seconds,
                finish_seconds=trace.finish_seconds,
                ingest_segments=self.config.ingest_segments,
                flush_buffers=self.config.flush_buffers,
            )
        return result

    # ------------------------------------------------------------------
    def _detect_base(
        self,
        path: str,
        data: bytes,
        boundary_set: BoundarySet,
        breakdown: TimeBreakdown,
        counters: Counters,
        fp_memo: dict[tuple[int, int], bytes] | None = None,
    ) -> tuple[RecipeHandle | None, RecipeIndex | None]:
        """Step 1: find a historical version or similar file and open it."""
        similar = self.storage.similar_index
        base: tuple[str, int] | None = None
        latest = similar.latest_version(path)
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        if latest is not None:
            base = (path, latest)
            counters.add("detect_by_name")
        else:
            base = self._probe_header(data, boundary_set, breakdown, counters, fp_memo)

        if base is None:
            counters.add("detect_none")
            return None, None

        base_path, base_version = base
        before = self.storage.oss.stats.snapshot()
        try:
            handle = self.storage.recipes.open_recipe(base_path, base_version)
            recipe_index = self.storage.recipes.get_recipe_index(base_path, base_version)
        except DEDUP_LOOKUP_FAILURES:
            # Degraded mode (Section VI-A rationale): rather than abort the
            # backup, store everything as unique and let reverse
            # deduplication reclaim the redundancy out-of-line.
            downloaded = self.storage.oss.stats.diff(before)
            breakdown.charge("download", downloaded.read_seconds)
            counters.add("degraded_events")
            return None, None
        downloaded = self.storage.oss.stats.diff(before)
        breakdown.charge("download", downloaded.read_seconds)
        counters.add("recipe_index_fetches")
        return handle, recipe_index

    def _probe_header(
        self,
        data: bytes,
        boundary_set: BoundarySet,
        breakdown: TimeBreakdown,
        counters: Counters,
        fp_memo: dict[tuple[int, int], bytes] | None = None,
    ) -> tuple[str, int] | None:
        """Sample header chunks and vote in the similar-file index."""
        limit = min(len(data), self.config.header_probe_bytes)
        view = memoryview(data)
        memo = fp_memo or {}
        samples: list[bytes] = []
        position = 0
        while position < limit:
            end = boundary_set.next_cut(position)
            chunk = view[position:end]
            breakdown.charge(
                "chunking", self.cost_model.chunking_cost(self._chunker.name, len(chunk))
            )
            breakdown.charge("fingerprinting", self.cost_model.fingerprint_cost(len(chunk)))
            fp = memo.get((position, end))
            if fp is None:
                fp = self._fingerprint(chunk)
            if is_sampled(fp, self.config.similarity_sample_ratio):
                samples.append(fp)
            position = end
        breakdown.charge("index_query", self.cost_model.cpu_index_query * max(1, len(samples)))
        counters.add("header_probes")
        found = self.storage.similar_index.find_similar(samples)
        if found is not None:
            counters.add("detect_by_similarity")
        return found


class _JobState:
    """Mutable state of one backup job; the main loop lives here."""

    def __init__(
        self,
        engine: BackupEngine,
        path: str,
        version: int,
        data: bytes,
        boundaries: BoundarySet,
        handle: RecipeHandle | None,
        recipe_index: RecipeIndex | None,
        breakdown: TimeBreakdown,
        counters: Counters,
        rewrite_containers: set[int] | None = None,
        fp_memo: dict[tuple[int, int], bytes] | None = None,
    ) -> None:
        self.engine = engine
        self.config = engine.config
        self.cost = engine.cost_model
        self.storage = engine.storage
        self.path = path
        self.version = version
        self.data = data
        #: Zero-copy window over the stream: every chunk payload below is
        #: a ``memoryview`` slice of it (hashing and container packing
        #: both consume buffer objects), so the hot loop never copies.
        self.view = memoryview(data)
        self.boundaries = boundaries
        self.handle = handle
        self.recipe_index = recipe_index
        self.breakdown = breakdown
        self.counters = counters

        self.cache = DedupCache()
        #: fp → record stored earlier in THIS job (intra-stream dedup,
        #: which is what handles self-referencing chunks).
        self.local_records: dict[bytes, ChunkRecord] = {}
        self.segments: list[list[ChunkRecord]] = []
        self.current_records: list[ChunkRecord] = []
        self.current_starts: list[int] = []
        self.current_bytes = 0
        self.builder: ContainerBuilder = self.storage.containers.new_builder(
            self.config.container_bytes
        )
        self.new_container_ids: list[int] = []
        self.stored_chunk_bytes = 0
        self.uploaded_bytes = 0
        self.referenced: Counter[int] = Counter()
        self.referenced_bytes: Counter[int] = Counter()
        self.rewrite_containers = rewrite_containers or set()
        #: Skip-chunking state: location of the last matched record.
        self.skip_from: tuple[int, int] | None = None
        #: Degraded mode: the dedup base became unreachable; chunks are
        #: stored as unique and flagged for out-of-line reclamation.
        self.degraded = False
        self.degraded_fps: list[bytes] = []
        #: Per-segment stage trace, fed by the charge helpers below.
        self.trace = IngestTrace()
        self._cur_chunk = 0.0
        self._cur_lookup = 0.0
        #: Superchunk merging runs at segment close and depends on the
        #: segment's classification, so its hashing counts as lookup-stage
        #: (spine) work rather than parallelizable chunk-stage work.
        self._in_finalize = False
        self._pipelined = self.config.ingest_pipeline
        #: Per-job fingerprint memo: fingerprints already queued for a
        #: global-index probe this job.  Intra-file duplicates hit the
        #: memo instead of re-probing the index once per occurrence.
        self._probe_memo: set[bytes] = set()
        self._pending_probes: list[bytes] = []
        #: (start, end) → digest precomputed by the parallel executor for
        #: the plain-CDC chunk walk; spans cut by skip-chunking or
        #: superchunk merging miss it and hash inline via :meth:`_fp`.
        self._fp_memo = fp_memo or {}
        self._fingerprint = engine._fingerprint
        #: Background container flush: with an active executor and no
        #: fault policy or durability tier (whose seeded RNG draws and
        #: journaled tier changes must stay in serial order), container
        #: uploads run on the IO pool, double-buffered against the next
        #: segment's CPU — for real this time, not just in the event model.
        io_pool = (
            engine._executor.io_pool
            if engine._executor is not None and engine._executor.active
            else None
        )
        self._flush_pool = (
            io_pool
            if io_pool is not None
            and getattr(self.storage.oss, "faults", None) is None
            and self.storage.durability is None
            else None
        )
        self._pending_flush = None

    def _fp(self, start: int, end: int) -> bytes:
        """Digest of ``data[start:end]`` — memoised span or inline hash."""
        digest = self._fp_memo.get((start, end))
        if digest is None:
            digest = self._fingerprint(self.view[start:end])
        return digest

    # --- cost helpers ----------------------------------------------------
    # Each helper charges the job breakdown (the paper's categories) and
    # attributes the same seconds to the current segment's pipeline stage.
    def _trace_chunk(self, seconds: float) -> None:
        if self._in_finalize:
            self._cur_lookup += seconds
        else:
            self._cur_chunk += seconds

    def _trace_lookup(self, seconds: float) -> None:
        self._cur_lookup += seconds

    def _charge_scan(self, nbytes: int) -> None:
        seconds = self.cost.chunking_cost(self.engine._chunker.name, nbytes)
        self.breakdown.charge("chunking", seconds)
        self._trace_chunk(seconds)

    def _charge_skip(self, nbytes: int) -> None:
        seconds = self.cost.chunking_cost("skip", nbytes)
        self.breakdown.charge("chunking", seconds)
        self._trace_chunk(seconds)

    def _charge_fingerprint(self, nbytes: int) -> None:
        seconds = self.cost.fingerprint_cost(nbytes)
        self.breakdown.charge("fingerprinting", seconds)
        self._trace_chunk(seconds)

    def _charge_lookup(self) -> None:
        self.breakdown.charge("index_query", self.cost.cpu_index_query)
        self._trace_lookup(self.cost.cpu_index_query)

    def _charge_compare(self) -> None:
        self.breakdown.charge("index_query", self.cost.cpu_fp_compare)
        self._trace_lookup(self.cost.cpu_fp_compare)

    def _charge_other(self, nbytes: int) -> None:
        seconds = self.cost.cpu_other_per_byte * nbytes
        self.breakdown.charge("other", seconds)
        self._trace_lookup(seconds)

    # --- main loop ---------------------------------------------------------
    def run(self) -> None:
        """Steps 2 and 3: chunk, deduplicate, segment, persist."""
        position = 0
        length = len(self.data)
        while position < length:
            consumed = False
            if self.config.skip_chunking and self.skip_from is not None:
                consumed = self._try_skip_chunking(position)
                if consumed:
                    position = self._last_end
                    continue
            position = self._cdc_step(position)
        self._finalize_segment()
        self._flush_container()

    # --- skip chunking (Section IV-B) ------------------------------------
    def _try_skip_chunking(self, position: int) -> bool:
        """Predict the next cut from history; True if a chunk was emitted."""
        successor = self.cache.successor(self.skip_from)
        if successor is None and self.handle is not None:
            ordinal = self.skip_from[0] + 1
            if ordinal < self.handle.segment_count:
                self._prefetch_segment(ordinal)
                if self.skip_from is None:
                    # Prefetch failed and flipped the job into degraded
                    # mode; fall back to CDC for the rest of the stream.
                    return False
                successor = self.cache.successor(self.skip_from)
        if successor is None:
            self.skip_from = None
            return False
        predicted, location = successor
        end = position + predicted.size
        if end > len(self.data) or not self.boundaries.is_cut(position, end):
            self.counters.add("skip_fail")
            self.skip_from = None
            return False
        chunk = self.view[position:end]
        self._charge_skip(len(chunk))
        self._charge_fingerprint(len(chunk))
        fp = self._fp(position, end)
        self._charge_compare()
        if fp != predicted.fp:
            # Boundary matched but content changed: fall back to the dedup
            # cache for this chunk, then resume CDC.
            self.counters.add("skip_fp_mismatch")
            self.skip_from = None
            self._classify_chunk(position, end, fp)
            self._last_end = end
            return True
        self.counters.add("skip_success")
        if predicted.is_superchunk:
            self.counters.add("superchunk_hits")
        self._emit_duplicate(position, end, predicted)
        self.skip_from = location
        self._last_end = end
        return True

    # --- normal CDC step ---------------------------------------------------
    def _cdc_step(self, position: int) -> int:
        """Cut one chunk with CDC and classify it; returns the new position."""
        end = self.boundaries.next_cut(position)
        self._charge_scan(end - position)
        fp = self._fp(position, end)
        self._charge_fingerprint(end - position)

        # SuperChunking (Algorithm 1): the cut chunk may be the firstChunk
        # of a known superchunk.
        if self.config.chunk_merging:
            absorbed_end = self._try_superchunking(position, end, fp)
            if absorbed_end is not None:
                return absorbed_end

        self._classify_chunk(position, end, fp)
        return end

    def _try_superchunking(self, position: int, end: int, fp: bytes) -> int | None:
        """Algorithm 1; returns the superchunk end if it matched."""
        hit = self.cache.lookup(fp)
        if hit is None:
            return None
        record, location = hit
        if not record.is_superchunk or record.first_fp != fp:
            return None
        sc_end = position + record.size
        if sc_end > len(self.data):
            return None
        self._charge_fingerprint(record.size - (end - position))
        sc_fp = self._fp(position, sc_end)
        self._charge_compare()
        if sc_fp != record.fp:
            # Failed: c^n is a plain duplicate of the firstChunk; CDC
            # resumes from the current cut point p1 (= end).
            self.counters.add("superchunk_miss")
            first_record = ChunkRecord(
                fp=record.first_fp,
                container_id=record.container_id,
                size=record.first_size,
                duplicate_times=1,
                is_duplicate=True,
            )
            self._append_record(first_record, position)
            self.skip_from = None
            return end
        self.counters.add("superchunk_hits")
        self._emit_duplicate(position, sc_end, record)
        self.skip_from = location
        return sc_end

    # --- classification ------------------------------------------------------
    def _classify_chunk(self, position: int, end: int, fp: bytes) -> None:
        """Duplicate via caches/recipe index, otherwise store as unique."""
        self._charge_lookup()
        local = self.local_records.get(fp)
        if local is not None:
            self.counters.add("local_duplicates")
            if self._pipelined and fp in self._probe_memo:
                # The memo already queued this fingerprint's index probe:
                # the repeat occurrence costs no further round trip.
                self.counters.add("intra_file_dup_hits")
            duplicate = ChunkRecord(
                fp=fp,
                container_id=local.container_id,
                size=local.size,
                duplicate_times=local.duplicate_times,
                is_duplicate=True,
            )
            self._append_record(duplicate, position)
            return

        hit = self.cache.lookup(fp)
        if hit is None and self._maybe_prefetch(fp):
            hit = self.cache.lookup(fp)
        if hit is not None:
            record, location = hit
            if record.fp == fp:
                self._emit_duplicate(position, end, record)
                self.skip_from = location
                return
            if record.is_superchunk and record.first_fp == fp:
                # Duplicate of a superchunk's firstChunk (the bytes live at
                # the head of the superchunk; an alias meta entry resolves
                # the fingerprint at restore time).
                first_record = ChunkRecord(
                    fp=fp,
                    container_id=record.container_id,
                    size=record.first_size,
                    duplicate_times=1,
                    is_duplicate=True,
                )
                self.counters.add("dup_chunks")
                self.counters.add("dup_bytes", first_record.size)
                self._append_record(first_record, position)
                return

        self._emit_unique(position, end, fp)

    def _maybe_prefetch(self, fp: bytes) -> bool:
        """Consult the recipe index; prefetch matching segment recipes.

        The index holds only sampled fingerprints (plus segment-first and
        superchunk-firstChunk entries), so the mod-R sampling bounds its
        size; the probe itself is an in-memory lookup and runs for every
        cache miss — a miss on an unsampled fingerprint costs one hash
        probe and nothing else.
        """
        if self.recipe_index is None or self.handle is None:
            return False
        self._charge_compare()
        ordinals = self.recipe_index.lookup(fp)
        fetched = False
        for ordinal in ordinals:
            # Logical locality: chunks near the match "will also appear in
            # this segment with a high probability", so prefetch a span of
            # consecutive segment recipes starting at the match.
            if self.handle is None:
                break  # a prefetch failure degraded the job mid-loop
            if not self.cache.has_segment(ordinal):
                self._prefetch_segment(ordinal)
                fetched = True
        return fetched

    def _prefetch_segment(self, ordinal: int) -> None:
        """Fetch a prefetch span of segment recipes in one ranged GET."""
        if self.handle is None:
            return
        span = max(1, self.config.prefetch_segment_span)
        span = min(span, self.handle.segment_count - ordinal)
        before = self.storage.oss.stats.snapshot()
        try:
            segments = self.handle.get_segment_range(ordinal, span)
        except DEDUP_LOOKUP_FAILURES:
            read_seconds = self.storage.oss.stats.diff(before).read_seconds
            self.breakdown.charge("download", read_seconds)
            self._trace_lookup(read_seconds)
            self._enter_degraded_mode()
            return
        downloaded = self.storage.oss.stats.diff(before)
        # Recipe prefetches block classification, so they ride the spine.
        self.breakdown.charge("download", downloaded.read_seconds)
        self._trace_lookup(downloaded.read_seconds)
        for offset, records in enumerate(segments):
            self.counters.add("segments_prefetched")
            self.cache.insert_segment(ordinal + offset, records)

    def _enter_degraded_mode(self) -> None:
        """Stop consulting the unreachable dedup base for this job.

        Chunks the cache cannot resolve are stored as unique from here
        on; the version is flagged degraded so the G-node's reverse
        deduplication reclaims whatever redundancy that introduced.
        """
        self.counters.add("degraded_events")
        self.degraded = True
        self.handle = None
        self.recipe_index = None
        self.skip_from = None

    # --- record emission --------------------------------------------------------
    def _emit_duplicate(self, position: int, end: int, base: ChunkRecord) -> None:
        if base.container_id in self.rewrite_containers:
            # HAR-style rewriting: a duplicate living in a sparse container
            # is stored again to repair physical locality.
            self.counters.add("rewritten_chunks")
            self._emit_unique(position, end, base.fp)
            return
        record = ChunkRecord(
            fp=base.fp,
            container_id=base.container_id,
            size=end - position,
            duplicate_times=base.duplicate_times + 1,
            is_superchunk=base.is_superchunk,
            first_fp=base.first_fp,
            first_size=base.first_size,
            is_duplicate=True,
        )
        self.counters.add("dup_chunks")
        self.counters.add("dup_bytes", record.size)
        self._append_record(record, position)

    def _emit_unique(self, position: int, end: int, fp: bytes) -> None:
        chunk = self.view[position:end]
        self._charge_other(len(chunk))
        if self.builder.is_full():
            self._flush_container()
        self.builder.add_chunk(fp, chunk)
        if self._pipelined:
            if fp in self._probe_memo:
                self.counters.add("intra_file_dup_hits")
            else:
                self._probe_memo.add(fp)
                self._pending_probes.append(fp)
        record = ChunkRecord(
            fp=fp,
            container_id=self.builder.container_id,
            size=len(chunk),
            duplicate_times=0,
        )
        self.counters.add("unique_chunks")
        if self.degraded:
            # Persisted without duplicate verification: possibly redundant
            # until the next reverse-dedup pass inspects it.
            self.counters.add("degraded_chunks")
            self.degraded_fps.append(fp)
        self.stored_chunk_bytes += len(chunk)
        self.local_records[fp] = record
        self._append_record(record, position)
        self.skip_from = None

    def _append_record(self, record: ChunkRecord, start: int) -> None:
        self.breakdown.charge("other", self.cost.cpu_record_handling)
        self._trace_lookup(self.cost.cpu_record_handling)
        self.current_records.append(record)
        self.current_starts.append(start)
        self.current_bytes += record.size
        self.counters.add("chunks")
        if self.current_bytes >= self.config.segment_bytes:
            self._finalize_segment()

    # --- segment finalisation & merging (Section IV-C) -----------------------------
    def _finalize_segment(self) -> None:
        if not self.current_records:
            return
        records = self.current_records
        starts = self.current_starts
        if self.config.chunk_merging:
            self._in_finalize = True
            try:
                records, starts = self._merge_superchunks(records, starts)
            finally:
                self._in_finalize = False
        self.segments.append(records)
        self.current_records = []
        self.current_starts = []
        self.current_bytes = 0
        # Close the pipeline trace for this segment: batch its pending
        # index probes (pipelined mode), then snapshot the stage clocks.
        rpcs = self._drain_probe_batch() if self._pipelined else []
        self.trace.chunk_seconds.append(self._cur_chunk)
        self.trace.lookup_seconds.append(self._cur_lookup)
        self.trace.lookup_rpcs.append(rpcs)
        self._cur_chunk = 0.0
        self._cur_lookup = 0.0

    def _drain_probe_batch(self) -> list[float]:
        """Coalesce the segment's fingerprint probes against the index.

        The Bloom prefilter runs for real — one in-memory batched pass
        over the segment's candidates ("a bloom filter is used to quickly
        filter out unique chunks").  The survivors' exact probes are
        grouped per shard and batched into ``get_many``-shaped round
        trips whose durations feed the event schedule, but the requests
        themselves are *modelled*, never issued: the authoritative exact
        dedup stays the G-node's out-of-line pass, which keeps the
        pipelined engine's OSS request stream — and therefore its fault
        and crash behaviour — identical to the serial path's.
        """
        pending, self._pending_probes = self._pending_probes, []
        if not pending:
            return []
        index = self.storage.global_index
        self.counters.add("ingest_bloom_probes", len(pending))
        probe_seconds = self.cost.cpu_fp_compare * len(pending)
        self.breakdown.charge("index_query", probe_seconds)
        self._trace_lookup(probe_seconds)
        verdicts = index.maybe_contains_many(pending)
        survivors = [fp for fp, hit in zip(pending, verdicts) if hit]
        if not survivors:
            return []
        per_shard: Counter[int] = Counter(index.shard_of(fp) for fp in survivors)
        batch = max(1, self.config.index_batch_size)
        rpcs: list[float] = []
        for shard in sorted(per_shard):
            keys = per_shard[shard]
            while keys > 0:
                take = min(batch, keys)
                keys -= take
                rpcs.append(
                    self.cost.oss_request_latency + take * self.cost.cpu_index_query
                )
        self.counters.add("ingest_index_batches", len(rpcs))
        self.counters.add("ingest_index_keys", len(survivors))
        return rpcs

    def _merge_superchunks(
        self, records: list[ChunkRecord], starts: list[int]
    ) -> tuple[list[ChunkRecord], list[int]]:
        runs = self.engine._merge_policy.plan_merge_runs(records)
        if not runs:
            return records, starts
        merged_records: list[ChunkRecord] = []
        merged_starts: list[int] = []
        run_map = {start: end for start, end in runs}
        index = 0
        while index < len(records):
            run_end = run_map.get(index)
            if run_end is None:
                merged_records.append(records[index])
                merged_starts.append(starts[index])
                index += 1
                continue
            record = self._build_superchunk(records, starts, index, run_end)
            merged_records.append(record)
            merged_starts.append(starts[index])
            index = run_end
        return merged_records, merged_starts

    def _build_superchunk(
        self, records: list[ChunkRecord], starts: list[int], begin: int, end: int
    ) -> ChunkRecord:
        """Materialise one superchunk: new payload, container, record."""
        first = records[begin]
        data_start = starts[begin]
        data_end = starts[end - 1] + records[end - 1].size
        payload = self.view[data_start:data_end]
        self._charge_fingerprint(len(payload))
        self._charge_other(len(payload))
        sc_fp = self._fp(data_start, data_end)
        if self.builder.payload_bytes + len(payload) > self.config.container_bytes:
            self._flush_container()
        offset = self.builder.payload_bytes
        self.builder.add_chunk(sc_fp, payload)
        # Alias every constituent chunk into the superchunk's bytes: the
        # firstChunk alias drives Algorithm 1, and the rest let G-node's
        # reverse deduplication find and delete the constituents' old
        # copies (the superchunk write would otherwise permanently double
        # the cold data), with old recipes redirecting here.
        relative = 0
        for position in range(begin, end):
            constituent = records[position]
            self.builder.add_alias(constituent.fp, offset + relative, constituent.size)
            relative += constituent.size
        self.counters.add("superchunks_created")
        self.counters.add("superchunk_bytes_written", len(payload))
        self.stored_chunk_bytes += len(payload)
        return ChunkRecord(
            fp=sc_fp,
            container_id=self.builder.container_id,
            size=len(payload),
            duplicate_times=self.config.merge_threshold,
            is_superchunk=True,
            first_fp=first.fp,
            first_size=first.size,
            is_duplicate=False,
        )

    # --- persistence ------------------------------------------------------------
    def _flush_container(self) -> None:
        if self.builder.is_empty():
            self.builder = self.storage.containers.new_builder(self.config.container_bytes)
            return
        builder = self.builder
        # A discrete flush event, handed off after the segment being
        # built when the container filled (the event schedule clamps the
        # end-of-stream flush to the last segment).
        self.trace.flush_after.append(len(self.segments))
        self.counters.add("containers_written")
        self.new_container_ids.append(builder.container_id)
        self.builder = self.storage.containers.new_builder(self.config.container_bytes)
        if self._flush_pool is None:
            before = self.storage.oss.stats.snapshot()
            self.storage.containers.write(builder)
            written = self.storage.oss.stats.diff(before)
            self.breakdown.charge("upload", written.write_seconds)
            self.trace.flush_seconds.append(written.write_seconds)
            self.uploaded_bytes += written.bytes_written
            return
        # Double buffering: at most one upload in flight, joined (and its
        # virtual time charged, in submit order) before the next departs.
        self._join_flush()
        self._pending_flush = self._flush_pool.submit(self._write_container, builder)

    def _write_container(self, builder: ContainerBuilder) -> tuple[float, int]:
        """IO-pool task: persist one container, return its write charges.

        Only the write-side stats fields are diffed: the main thread may
        concurrently charge *reads*, but with a single flush in flight
        this task is the only writer of ``write_seconds``/``bytes_written``.
        """
        stats = self.storage.oss.stats
        before_seconds = stats.write_seconds
        before_bytes = stats.bytes_written
        self.storage.containers.write(builder)
        return stats.write_seconds - before_seconds, stats.bytes_written - before_bytes

    def _join_flush(self) -> None:
        if self._pending_flush is None:
            return
        write_seconds, bytes_written = self._pending_flush.result()
        self._pending_flush = None
        self.breakdown.charge("upload", write_seconds)
        self.trace.flush_seconds.append(write_seconds)
        self.uploaded_bytes += bytes_written

    def finish(self) -> BackupResult:
        """Persist recipe, recipe index and similarity registration.

        Crash-consistency contract: everything written here (and the
        container writes before it) is *pre-commit* state — the version
        only becomes visible when :class:`~repro.core.system.SlimStore`
        re-publishes the catalog afterwards.  The write order (recipe →
        recipe index → similar-index registration) is what the recovery
        discard path in :mod:`repro.core.recovery` unwinds, so keep them
        in this sequence.
        """
        # The last container upload may still be in flight on the IO
        # pool; every container precedes the recipe in the write order,
        # and the write-seconds diff below must not race it.
        self._join_flush()
        recipe = Recipe(
            path=self.path,
            version=self.version,
            total_bytes=len(self.data),
            segments=self.segments,
        )
        index = RecipeIndex()
        all_fps: list[bytes] = []
        for ordinal, segment in enumerate(self.segments):
            for position, record in enumerate(segment):
                all_fps.append(record.fp)
                if position == 0 or is_sampled(record.fp, self.config.effective_sample_ratio()):
                    index.add(record.fp, ordinal)
                if record.is_superchunk:
                    # The next version's CDC cuts small chunks, which can
                    # only rendezvous with a superchunk through its
                    # firstChunk fingerprint (Algorithm 1) — so every
                    # superchunk's firstChunk is indexed.
                    index.add(record.first_fp, ordinal)

        before = self.storage.oss.stats.snapshot()
        self.storage.recipes.put_recipe(recipe)
        self.storage.recipes.put_recipe_index(self.path, self.version, index)
        representatives = [
            fp
            for fp in all_fps
            if is_sampled(fp, self.config.similarity_sample_ratio)
        ][: self.config.max_file_representatives]
        self.storage.similar_index.register(self.path, self.version, representatives)
        written = self.storage.oss.stats.diff(before)
        self.breakdown.charge("upload", written.write_seconds)
        self.trace.finish_seconds += written.write_seconds
        self.uploaded_bytes += written.bytes_written

        # Container references are computed from the *final* recipe so
        # superchunk merging (which rewrites duplicate runs into new
        # containers) is reflected in sparse-container detection.
        for record in recipe.all_records():
            if record.is_duplicate:
                self.referenced[record.container_id] += 1
                self.referenced_bytes[record.container_id] += record.size
        referenced = {
            cid: (self.referenced[cid], self.referenced_bytes[cid])
            for cid in self.referenced
        }
        self.counters.add("logical_bytes", len(self.data))
        return BackupResult(
            path=self.path,
            version=self.version,
            recipe=recipe,
            breakdown=self.breakdown,
            counters=self.counters,
            logical_bytes=len(self.data),
            stored_chunk_bytes=self.stored_chunk_bytes,
            uploaded_bytes=self.uploaded_bytes,
            new_container_ids=self.new_container_ids,
            referenced_containers=referenced,
            degraded=self.degraded,
            degraded_fps=self.degraded_fps,
            unique_fps=list(self.local_records),
            ingest=self.trace,
        )
