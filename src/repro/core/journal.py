"""The OSS-backed intent journal (crash-consistency layer).

Every multi-write job — a backup, a reverse-dedup pass, a compaction, a
container rewrite, a version or snapshot deletion — records its intent as
one small JSON object under ``journal/`` *before* touching shared state,
updates it as the job reaches durable milestones, and deletes it when the
job's last write has landed.  Each journal operation is a single atomic
object write, so the journal itself can never be torn.

An intent left open on OSS is the definition of an interrupted job: the
:class:`~repro.core.recovery.RecoveryManager` reads the surviving entries
on attach and decides, per intent kind, whether to roll the job forward
(its commit point landed) or discard its side effects (it never became
visible).  See ``docs/CRASH_RECOVERY.md`` for the full state machine.

Intent kinds and their payloads:

======================  =====================================================
``backup``              ``path``, ``watermark`` (first container id the job
                        may allocate), optionally ``snapshot_id``
``snapshot``            ``snapshot_id``, ``members`` (path → committed
                        version so far)
``reverse_dedup``       ``container_ids`` the pass was scanning
``compaction``          ``path``, ``version``, ``watermark``, ``sparse``
                        container ids; updated with ``moves`` (fp hex → new
                        container id) and ``new_cids`` before the recipe
                        repoint commits
``rewrite``             ``container_id``, ``meta`` (hex of the new metadata
                        blob), ``data_sha`` (hex SHA-1 of the new payload)
``delete_version``      ``path``, ``version``, ``collectable`` container
                        ids, ``forget_similar`` flag
``delete_snapshot``     ``snapshot_id``, ``members`` considered for deletion
``durability``          ``op`` (``tier`` or ``stripe``), the ``planned``
                        replica/parity keys, and for ``tier`` the ``cid``,
                        ``target`` class and payload ``sha``; for
                        ``stripe`` the ``sid``
``cache_flush``         write-back commit of a dirtied browse file:
                        ``path``, ``base_version``, ``version`` (the one
                        being published), ``size``, ``sha`` (SHA-256 of the
                        full file), ``blocks`` (dirty block indices),
                        ``block_bytes``; updated with ``staged=True`` once
                        every dirty block landed under its
                        ``browsecache/{seq}/`` staging prefix
======================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.oss.object_store import ObjectStorageService

#: Known intent kinds (validated on begin so typos fail fast).
INTENT_KINDS = (
    "backup",
    "snapshot",
    "reverse_dedup",
    "compaction",
    "rewrite",
    "delete_version",
    "delete_snapshot",
    "durability",
    "cache_flush",
)


@dataclass
class Intent:
    """One journal entry: a job that announced durable side effects."""

    seq: int
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class IntentJournal:
    """Sequence-numbered intent records on OSS.

    The journal is an append-mostly keyspace: ``begin`` allocates the next
    sequence number and persists the entry, ``update`` overwrites it in
    place (one atomic put), ``close`` deletes it.  Sequence numbers are
    zero-padded so recovery replays intents in the order the jobs started.
    """

    PREFIX = "journal/"
    _KEY = "journal/{seq:012d}.json"

    def __init__(self, oss: ObjectStorageService, bucket: str = "slimstore") -> None:
        self._oss = oss
        self._bucket = bucket
        self._next_seq = 0
        oss.create_bucket(bucket)

    def _key(self, seq: int) -> str:
        return self._KEY.format(seq=seq)

    # --- lifecycle ---------------------------------------------------------
    def begin(self, kind: str, **payload: Any) -> int:
        """Persist a new intent; returns its sequence number."""
        if kind not in INTENT_KINDS:
            raise ValueError(f"unknown intent kind: {kind}")
        seq = self._next_seq
        self._next_seq += 1
        self._put(seq, kind, payload)
        return seq

    def update(self, seq: int, kind: str, **payload: Any) -> None:
        """Overwrite an open intent with a richer payload (atomic)."""
        self._put(seq, kind, payload)

    def close(self, seq: int) -> None:
        """Delete a finished intent (the job's last write)."""
        self._oss.delete_object(self._bucket, self._key(seq))

    def _put(self, seq: int, kind: str, payload: dict[str, Any]) -> None:
        record = {"kind": kind, "payload": payload}
        self._oss.put_object(
            self._bucket, self._key(seq), json.dumps(record).encode()
        )

    # --- recovery ----------------------------------------------------------
    def recover(self) -> list[Intent]:
        """Load surviving intents (oldest first); resumes the sequence.

        Key enumeration is free (accounting-level peek); each surviving
        entry costs one charged read, which is the honest price of crash
        recovery.
        """
        entries: list[Intent] = []
        highest = -1
        for key in sorted(self._oss.peek_keys(self._bucket, self.PREFIX)):
            stem = key[len(self.PREFIX):]
            if not stem.endswith(".json"):
                continue
            try:
                seq = int(stem[: -len(".json")])
            except ValueError:
                continue
            highest = max(highest, seq)
            record = json.loads(self._oss.get_object(self._bucket, key).decode())
            entries.append(Intent(seq, record["kind"], record.get("payload", {})))
        self._next_seq = highest + 1
        return entries

    def open_intents(self) -> list[Intent]:
        """Surviving intents without resetting the sequence counter."""
        saved = self._next_seq
        entries = self.recover()
        self._next_seq = max(saved, self._next_seq)
        return entries

    def truncate(self) -> int:
        """Delete every surviving entry; returns how many were dropped.

        Recovery calls this after the last intent has been rolled forward
        or discarded, so a clean repository carries an empty journal.
        """
        dropped = 0
        for key in self._oss.peek_keys(self._bucket, self.PREFIX):
            if self._oss.delete_object(self._bucket, key):
                dropped += 1
        return dropped
