"""Full-vision restore planning: the container access schedule.

The recipe gives the restore job *full vision* — before any data moves,
the entire chunk-record sequence is known.  :class:`RestorePlanner` turns
that vision into an explicit read plan:

* the distinct containers the job will touch, in first-use order (this is
  the order the LAW prefetcher issues reads in);
* for ranged mode, the byte extents of the useful chunks inside each
  container, coalesced into a handful of ranged GETs, so an aged container
  holding three live chunks no longer costs a whole-container download;
* plan-time resolution of moved chunks: reverse deduplication and sparse
  container compaction relocate old versions' chunks, and the planner
  redirects through the global index *before* the pipeline starts instead
  of stalling the consumer on a surprise mid-restore.

Span coalescing merges extents whose gap is at most ``gap_bytes``: with
OSS request latency ``L`` and bandwidth ``B``, reading a gap of up to
``L x B`` bytes is cheaper than paying another round trip, which is where
the default :attr:`~repro.core.config.SlimStoreConfig.ranged_read_gap_bytes`
comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.container import ContainerMeta
from repro.core.recipe import ChunkRecord
from repro.errors import RestoreError
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown


@dataclass(frozen=True)
class ReadSpan:
    """One coalesced byte extent inside a container data object."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        """First byte past the extent."""
        return self.offset + self.length


@dataclass
class PlannedRead:
    """One scheduled container access.

    ``spans is None`` means a whole-container read (the seed access
    pattern); otherwise only the listed extents cross the wire.
    """

    container_id: int
    first_use: int
    spans: list[ReadSpan] | None
    planned_bytes: int
    container_bytes: int

    @property
    def bytes_saved(self) -> int:
        """Read-amplification bytes a ranged read avoids transferring."""
        return max(0, self.container_bytes - self.planned_bytes)


@dataclass
class RestorePlan:
    """The precomputed access schedule for one restore job."""

    ranged: bool
    #: Scheduled container reads, in first-use (= prefetch issue) order.
    reads: list[PlannedRead] = field(default_factory=list)
    #: Records with ``container_id`` rewritten to the current owner
    #: (ranged mode resolves moved chunks at plan time).
    resolved: list[ChunkRecord] = field(default_factory=list)
    #: Fresh container metadata fetched during planning (ranged mode).
    metas: dict[int, ContainerMeta] = field(default_factory=dict)
    #: Index of the planned read each record triggers (-1: already read).
    read_for_record: list[int] = field(default_factory=list)
    #: Virtual seconds spent on plan-time OSS traffic (meta pre-reads).
    plan_seconds: float = 0.0
    #: Planned reads whose primary payload is already known to be gone —
    #: with a durability tier these will be served degraded (replica or
    #: erasure decode) instead of failing.
    planned_degraded_reads: int = 0

    @property
    def planned_bytes(self) -> int:
        """Total bytes the planned reads will transfer."""
        return sum(read.planned_bytes for read in self.reads)

    @property
    def bytes_saved(self) -> int:
        """Total read-amplification bytes the plan avoids."""
        return sum(read.bytes_saved for read in self.reads)


class RestorePlanner:
    """Computes the container access schedule from a recipe's records."""

    def __init__(self, storage, cost_model: CostModel | None = None) -> None:
        self.storage = storage
        self.cost_model = cost_model or CostModel()

    def plan(
        self,
        records: list[ChunkRecord],
        ranged: bool,
        gap_bytes: int,
        breakdown: TimeBreakdown,
        counters: Counters,
        metas: dict[int, ContainerMeta] | None = None,
    ) -> RestorePlan:
        """Build the access schedule (charging plan-time traffic).

        Whole-container mode keeps the seed cost structure exactly: no
        metadata pre-reads, redirects discovered lazily at consume time.
        Ranged mode pre-reads fresh metadata for every referenced
        container (offsets may have moved since the recipe was written —
        compaction rewrites containers in place), resolves every record
        to its current owner, and coalesces the useful extents.

        ``metas`` seeds (and shares) the container-metadata memo: a
        browse session plans many small record subsets against the same
        containers, so metadata fetched by one plan is reused by the
        next instead of re-crossing the wire.
        """
        if ranged:
            return self._plan_ranged(records, gap_bytes, breakdown, counters, metas)
        return self._plan_whole(records)

    # --- whole-container schedule ------------------------------------------
    def _plan_whole(self, records: list[ChunkRecord]) -> RestorePlan:
        plan = RestorePlan(ranged=False, resolved=list(records))
        read_index: dict[int, int] = {}
        for index, record in enumerate(records):
            cid = record.container_id
            if cid in read_index:
                plan.read_for_record.append(-1)
                continue
            size = (
                self.storage.containers.container_size(cid)
                if self.storage.containers.exists(cid)
                else 0
            )
            read_index[cid] = len(plan.reads)
            plan.read_for_record.append(len(plan.reads))
            plan.reads.append(
                PlannedRead(
                    container_id=cid,
                    first_use=index,
                    spans=None,
                    planned_bytes=size,
                    container_bytes=size,
                )
            )
            if self.storage.containers.primary_missing(cid):
                plan.planned_degraded_reads += 1
        return plan

    # --- ranged schedule ------------------------------------------------------
    def _plan_ranged(
        self,
        records: list[ChunkRecord],
        gap_bytes: int,
        breakdown: TimeBreakdown,
        counters: Counters,
        metas: dict[int, ContainerMeta] | None = None,
    ) -> RestorePlan:
        plan = RestorePlan(ranged=True)
        if metas is not None:
            plan.metas = metas
        redirects_before = counters.get("global_index_redirects")
        with self.storage.meter_reads() as plan_meter:
            # Pass 1: resolve every record to the container holding it now.
            extents: dict[int, set[tuple[int, int]]] = {}
            first_use: dict[int, int] = {}
            resolution: dict[bytes, int] = {}
            for index, record in enumerate(records):
                owner = resolution.get(record.fp)
                if owner is None:
                    owner = self._resolve(record, plan.metas, breakdown, counters)
                    resolution[record.fp] = owner
                entry = plan.metas[owner].find(record.fp)
                plan.resolved.append(
                    record
                    if record.container_id == owner
                    else ChunkRecord(fp=record.fp, container_id=owner, size=record.size)
                )
                extents.setdefault(owner, set()).add((entry.offset, entry.size))
                first_use.setdefault(owner, index)

            # Pass 2: coalesce each container's extents into ranged spans.
            read_index: dict[int, int] = {}
            for cid in sorted(extents, key=lambda cid: first_use[cid]):
                spans = coalesce_spans(extents[cid], gap_bytes)
                read_index[cid] = len(plan.reads)
                plan.reads.append(
                    PlannedRead(
                        container_id=cid,
                        first_use=first_use[cid],
                        spans=spans,
                        planned_bytes=sum(span.length for span in spans),
                        container_bytes=self.storage.containers.container_size(cid),
                    )
                )
                if self.storage.containers.primary_missing(cid):
                    plan.planned_degraded_reads += 1
            for index, record in enumerate(plan.resolved):
                triggers = first_use[record.container_id] == index
                plan.read_for_record.append(
                    read_index[record.container_id] if triggers else -1
                )
        # Plan time is the metered OSS traffic plus the CPU of every
        # global-index query resolving a moved chunk.
        plan.plan_seconds = plan_meter.seconds + self.cost_model.cpu_index_query * (
            counters.get("global_index_redirects") - redirects_before
        )
        return plan

    def _resolve(
        self,
        record: ChunkRecord,
        metas: dict[int, ContainerMeta],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> int:
        """Container currently holding ``record.fp`` (redirecting if moved)."""
        entry = None
        if self.storage.containers.exists(record.container_id):
            meta = self._meta_for(record.container_id, metas, breakdown, counters)
            entry = meta.find(record.fp)
        if entry is not None and not entry.deleted:
            return record.container_id

        # Reverse dedup or SCC moved the chunk; ask the global index.
        counters.add("global_index_redirects")
        breakdown.charge("index_query", self.cost_model.cpu_index_query)
        with self.storage.meter_reads() as meter:
            owner = self.storage.global_index.lookup(record.fp)
        breakdown.charge("download", meter.seconds)
        if owner is None:
            raise RestoreError(
                f"chunk {record.fp.hex()[:12]} missing from container "
                f"{record.container_id} and unknown to the global index"
            )
        entry = None
        if self.storage.containers.exists(owner):
            meta = self._meta_for(owner, metas, breakdown, counters)
            entry = meta.find(record.fp)
        if entry is None or entry.deleted:
            raise RestoreError(
                f"global index points chunk {record.fp.hex()[:12]} at container "
                f"{owner}, which does not hold it"
            )
        return owner

    def _meta_for(
        self,
        container_id: int,
        metas: dict[int, ContainerMeta],
        breakdown: TimeBreakdown,
        counters: Counters,
    ) -> ContainerMeta:
        """Fetch (and memoise) fresh metadata for one container.

        The first metadata read pays a full round trip; subsequent reads
        are issued back-to-back on the same prefetch connection and are
        charged as piggybacked companions (bandwidth only).
        """
        meta = metas.get(container_id)
        if meta is None:
            with self.storage.meter_reads() as meter:
                meta = self.storage.containers.read_meta(
                    container_id, piggyback=bool(metas)
                )
            breakdown.charge("download", meter.seconds)
            counters.add("plan_meta_reads")
            metas[container_id] = meta
        return meta


def coalesce_spans(
    extents: set[tuple[int, int]] | list[tuple[int, int]], gap_bytes: int
) -> list[ReadSpan]:
    """Merge chunk extents into ranged GET spans.

    Extents are sorted by offset; overlapping extents (a superchunk and
    its alias) merge unconditionally, and extents separated by at most
    ``gap_bytes`` merge too — below that gap another round trip costs
    more than the dead bytes.
    """
    if gap_bytes < 0:
        raise ValueError(f"gap_bytes cannot be negative: {gap_bytes}")
    spans: list[ReadSpan] = []
    for offset, size in sorted(extents):
        if spans and offset <= spans[-1].end + gap_bytes:
            merged_end = max(spans[-1].end, offset + size)
            spans[-1] = ReadSpan(spans[-1].offset, merged_end - spans[-1].offset)
        else:
            spans.append(ReadSpan(offset, size))
    return spans
