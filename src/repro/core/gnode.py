"""Offline space management on the G-node (Sections V-B and VI).

Three jobs, all run in the backend after an online backup completes:

* **Global reverse deduplication** — filter every chunk of the newly
  written containers through the global index (Bloom-prefiltered); when a
  chunk already exists in an older container, delete the *old* copy and
  re-point the global index at the new one, preserving the new version's
  layout (Section VI-A).
* **Sparse container compaction (SCC)** — containers whose utilisation for
  the just-backed-up version fell below the threshold get their useful
  chunks copied into fresh containers; the current recipe is updated in
  place, so the benefit applies to the current version immediately, unlike
  HAR's next-version rewriting (Section V-B).
* **Container hygiene** — once a container's stale fraction crosses the
  rewrite threshold, it is read back, purged of deleted chunks and
  rewritten, shrinking what old versions pay for (Fig 9(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SlimStoreConfig
from repro.core.container import ContainerMeta
from repro.core.dedup import BackupResult
from repro.core.storage import StorageLayer
from repro.errors import ObjectNotFoundError, RetryExhaustedError, TransientOSSError
from repro.sim.cost_model import CostModel
from repro.sim.metrics import Counters, TimeBreakdown

#: Sentinel: a global-index lookup failed (OSS unreachable), which is
#: different from "fingerprint not indexed" (None).
_LOOKUP_FAILED = object()


@dataclass
class ReverseDedupReport:
    """Outcome of one global reverse deduplication pass."""

    chunks_scanned: int = 0
    duplicates_removed: int = 0
    bytes_marked_deleted: int = 0
    containers_rewritten: int = 0
    bytes_reclaimed: int = 0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    counters: Counters = field(default_factory=Counters)


@dataclass
class CompactionReport:
    """Outcome of one sparse-container compaction pass."""

    sparse_containers: list[int] = field(default_factory=list)
    chunks_moved: int = 0
    bytes_moved: int = 0
    new_container_ids: list[int] = field(default_factory=list)
    bytes_reclaimed: int = 0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: Open journal intent of this pass, closed by the caller once the
    #: catalog reference fix-up is durable (None when nothing was sparse).
    journal_seq: int | None = None


class GNode:
    """The offline space-optimisation node."""

    def __init__(
        self,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
    ) -> None:
        self.config = config
        self.storage = storage
        self.cost_model = cost_model or CostModel()

    # ------------------------------------------------------------------
    # Global reverse deduplication (Section VI-A)
    # ------------------------------------------------------------------
    def reverse_dedup(
        self,
        new_container_ids: list[int],
        watch_fps: set[bytes] | None = None,
    ) -> ReverseDedupReport:
        """Exact-deduplicate the chunks of freshly written containers.

        ``watch_fps`` names fingerprints a degraded backup stored without
        duplicate verification; every one this pass reverse-deduplicates
        is counted as ``degraded_reclaimed``, proving the out-of-line
        reclamation the degraded mode relies on.

        With ``config.gdedup_batched_lookup`` the pass groups each
        container's Bloom-surviving fingerprints into per-shard batched
        round trips (:meth:`GlobalIndex.get_many`) and drains the shards
        in parallel; otherwise it walks the index one fingerprint at a
        time, the seed behaviour the sharding ablation baselines against.
        """
        report = ReverseDedupReport()
        meta_cache: dict[int, ContainerMeta] = {}
        dirty: set[int] = set()
        # Journal the pass: a crash leaves the intent open and recovery
        # simply re-runs it — the pass is idempotent because the index is
        # re-pointed at the new copy *before* the old copy's deletion
        # mark becomes durable, so every intermediate state restores.  A
        # transient OSS failure is not a crash: the job ends degraded and
        # reclaim_degraded owns the follow-up, so the intent closes.
        journal = self.storage.journal
        seq = journal.begin(
            "reverse_dedup", container_ids=[int(cid) for cid in new_container_ids]
        )
        try:
            if self.config.gdedup_batched_lookup:
                self._reverse_dedup_batched(
                    new_container_ids, watch_fps, report, meta_cache, dirty
                )
            else:
                self._reverse_dedup_serial(
                    new_container_ids, watch_fps, report, meta_cache, dirty
                )
            self._persist_dirty_metas(meta_cache, dirty, report)
        except (TransientOSSError, RetryExhaustedError):
            journal.close(seq)
            raise
        journal.close(seq)
        return report

    def _reverse_dedup_serial(
        self,
        new_container_ids: list[int],
        watch_fps: set[bytes] | None,
        report: ReverseDedupReport,
        meta_cache: dict[int, ContainerMeta],
        dirty: set[int],
    ) -> None:
        """One Rocks-OSS round trip per fingerprint (the unbatched path)."""
        index = self.storage.global_index
        for cid in new_container_ids:
            meta = self._read_new_meta(cid, report)
            for entry in meta.entries:
                if entry.deleted:
                    continue
                report.chunks_scanned += 1
                fp = entry.fp
                if not index.maybe_contains(fp):
                    # Definitely new: register without touching Rocks-OSS
                    # for a read ("quickly filter out unique chunks").
                    index.assign(fp, cid)
                    report.counters.add("bloom_fast_inserts")
                    continue
                owner = self._index_lookup(fp, report)
                if owner is _LOOKUP_FAILED:
                    # OSS unreachable even after retries: leave the index
                    # untouched so a later pass can still dedup this chunk.
                    continue
                self._settle_owner(
                    entry, cid, owner, watch_fps, report, meta_cache, dirty
                )
                index.assign(fp, cid)

    def _reverse_dedup_batched(
        self,
        new_container_ids: list[int],
        watch_fps: set[bytes] | None,
        report: ReverseDedupReport,
        meta_cache: dict[int, ContainerMeta],
        dirty: set[int],
    ) -> None:
        """Per-shard batched lookups; one round trip serves a whole batch.

        Index writes are buffered per container and flushed with
        :meth:`GlobalIndex.put_many`, so a later container's lookups still
        observe every assignment of the containers before it — the same
        index states the serial path walks through.
        """
        index = self.storage.global_index
        batch_size = max(1, self.config.index_batch_size)
        for cid in new_container_ids:
            meta = self._read_new_meta(cid, report)
            assignments: list[tuple[bytes, int]] = []
            lookups = []
            for entry in meta.entries:
                if entry.deleted:
                    continue
                report.chunks_scanned += 1
                if not index.maybe_contains(entry.fp):
                    assignments.append((entry.fp, cid))
                    report.counters.add("bloom_fast_inserts")
                else:
                    lookups.append(entry)
            for start in range(0, len(lookups), batch_size):
                batch = lookups[start : start + batch_size]
                result = index.get_many([entry.fp for entry in batch])
                if self.config.gdedup_parallel_shards:
                    report.breakdown.charge("download", result.parallel_seconds())
                else:
                    report.breakdown.charge("download", result.serial_seconds())
                report.breakdown.charge(
                    "index_query", self.cost_model.cpu_index_query * len(batch)
                )
                report.counters.add("gdedup_batches")
                report.counters.add(
                    "gdedup_batch_shard_rpcs", len(result.shard_seconds)
                )
                if result.failed:
                    report.counters.add("gdedup_lookup_failures", len(result.failed))
                failed = set(result.failed)
                for entry in batch:
                    if entry.fp in failed:
                        # Leave the index untouched so a later pass can
                        # still dedup this chunk.
                        continue
                    self._settle_owner(
                        entry,
                        cid,
                        result.owners.get(entry.fp),
                        watch_fps,
                        report,
                        meta_cache,
                        dirty,
                    )
                    assignments.append((entry.fp, cid))
            index.put_many(assignments)

    def _read_new_meta(self, cid: int, report: ReverseDedupReport) -> ContainerMeta:
        before = self.storage.oss.stats.snapshot()
        meta = self.storage.containers.read_meta(cid)
        report.breakdown.charge(
            "download", self.storage.oss.stats.diff(before).read_seconds
        )
        return meta

    def _settle_owner(
        self,
        entry,
        cid: int,
        owner: int | None,
        watch_fps: set[bytes] | None,
        report: ReverseDedupReport,
        meta_cache: dict[int, ContainerMeta],
        dirty: set[int],
    ) -> None:
        """Reverse-deduplicate one answered fingerprint against its owner."""
        if owner is None or owner == cid:
            return
        # Exact duplicate missed online: reverse-deduplicate by deleting
        # the copy in the *old* container.
        old_meta = self._old_meta(owner, meta_cache, report)
        if old_meta is not None and old_meta.mark_deleted(entry.fp):
            report.duplicates_removed += 1
            report.bytes_marked_deleted += entry.size
            dirty.add(owner)
            if watch_fps is not None and entry.fp in watch_fps:
                report.counters.add("degraded_reclaimed")

    def _index_lookup(self, fp: bytes, report: ReverseDedupReport):
        before = self.storage.oss.stats.snapshot()
        try:
            owner = self.storage.global_index.lookup(fp)
        except (TransientOSSError, RetryExhaustedError):
            report.counters.add("gdedup_lookup_failures")
            owner = _LOOKUP_FAILED
        report.breakdown.charge(
            "download", self.storage.oss.stats.diff(before).read_seconds
        )
        report.breakdown.charge("index_query", self.cost_model.cpu_index_query)
        return owner

    def _old_meta(
        self, cid: int, meta_cache: dict[int, ContainerMeta], report: ReverseDedupReport
    ) -> ContainerMeta | None:
        """Old-container metadata, cached per pass when configured.

        "caching the meta of the old container can also reduce the access
        number of Rocks-OSS to accelerate global deduplication."
        """
        if self.config.gdedup_meta_cache and cid in meta_cache:
            report.counters.add("meta_cache_hits")
            return meta_cache[cid]
        try:
            before = self.storage.oss.stats.snapshot()
            meta = self.storage.containers.read_meta(cid)
            report.breakdown.charge(
                "download", self.storage.oss.stats.diff(before).read_seconds
            )
        except (ObjectNotFoundError, KeyError):
            # The owner container was collected; the fingerprint simply
            # moves to its new home.
            return None
        report.counters.add("meta_cache_misses")
        if self.config.gdedup_meta_cache:
            meta_cache[cid] = meta
        return meta

    def _persist_dirty_metas(
        self,
        meta_cache: dict[int, ContainerMeta],
        dirty: set[int],
        report: ReverseDedupReport,
    ) -> None:
        for cid in sorted(dirty):
            meta = meta_cache.get(cid)
            if meta is None:
                continue
            before = self.storage.oss.stats.snapshot()
            self.storage.containers.update_meta(meta)
            if meta.stale_fraction() >= self.config.container_rewrite_threshold:
                report.bytes_reclaimed += self.storage.containers.rewrite(cid)
                report.containers_rewritten += 1
            report.breakdown.charge(
                "upload", self.storage.oss.stats.diff(before).write_seconds
            )

    # ------------------------------------------------------------------
    # Sparse container compaction (Section V-B)
    # ------------------------------------------------------------------
    def compact_sparse(self, result: BackupResult) -> CompactionReport:
        """Compact containers the current version references sparsely.

        The write schedule is crash-safe and the recipe repoint is the
        commit point: (1) journal the compaction intent with a container
        watermark, (2) copy the needed chunks into fresh containers —
        the old containers stay untouched, (3) re-point the global index
        and record the planned moves in the intent, (4) overwrite the
        version's recipe (one atomic put — before it the version restores
        from the old layout, after it from the new), (5) only then mark
        the moved chunks deleted in the old metadata and collect emptied
        containers.  A crash before (4) discards: the new containers are
        orphans above the watermark and recovery garbage-collects them,
        re-pointing the index back.  A crash after (4) rolls forward:
        recovery replays the cleanup from the journaled moves.
        """
        report = CompactionReport()
        containers = self.storage.containers
        new_ids = set(result.new_container_ids)

        sparse: list[int] = []
        for cid, (ref_chunks, _ref_bytes) in sorted(result.referenced_containers.items()):
            if cid in new_ids or not containers.exists(cid):
                continue
            before = self.storage.oss.stats.snapshot()
            meta = containers.read_meta(cid)
            report.breakdown.charge(
                "download", self.storage.oss.stats.diff(before).read_seconds
            )
            live = meta.live_chunks()
            if live == 0:
                continue
            utilization = ref_chunks / live
            if utilization < self.config.sparse_utilization_threshold:
                sparse.append(cid)
        if not sparse:
            return report
        report.sparse_containers = sparse
        sparse_set = set(sparse)

        # The fingerprints the current version needs out of each sparse
        # container, in recipe order (preserving the new version's layout).
        needed: dict[int, list[bytes]] = {cid: [] for cid in sparse}
        for record in result.recipe.all_records():
            if record.container_id in sparse_set:
                fps = needed[record.container_id]
                if record.fp not in fps:
                    fps.append(record.fp)

        journal = self.storage.journal
        watermark = containers.peek_next_id()
        seq = journal.begin(
            "compaction",
            path=result.path,
            version=result.version,
            watermark=watermark,
            sparse=sparse,
        )

        # Phase 1: copy the needed chunks into fresh containers.  The old
        # containers are not touched yet — their metadata mutations are
        # planned (per-container deletion sets) and applied only after
        # the recipe repoint commits.
        builder = containers.new_builder(self.config.container_bytes)
        moved: dict[bytes, int] = {}
        old_metas: dict[int, ContainerMeta] = {}
        planned_deletes: dict[int, list[bytes]] = {cid: [] for cid in sparse}
        for cid in sparse:
            before = self.storage.oss.stats.snapshot()
            meta = containers.read_meta(cid)
            payload = containers.read_data(cid)
            report.breakdown.charge(
                "download", self.storage.oss.stats.diff(before).read_seconds
            )
            old_metas[cid] = meta
            planned = planned_deletes[cid]
            planned_set: set[bytes] = set()
            for fp in needed[cid]:
                entry = meta.find(fp)
                if entry is None or entry.deleted or fp in planned_set:
                    continue
                if (
                    not builder.is_empty()
                    and builder.payload_bytes + entry.size > self.config.container_bytes
                ):
                    builder = self._flush_compaction(builder, report)
                new_offset = builder.payload_bytes
                builder.add_chunk(fp, payload[entry.offset : entry.offset + entry.size])
                moved[fp] = builder.container_id
                report.chunks_moved += 1
                report.bytes_moved += entry.size
                planned.append(fp)
                planned_set.add(fp)
                # A moved superchunk carries its firstChunk alias along so
                # first-chunk references keep resolving in the new home.
                if not entry.alias:
                    for alias in meta.entries:
                        if (
                            alias.alias
                            and not alias.deleted
                            and alias.fp not in planned_set
                            and entry.offset <= alias.offset
                            and alias.offset + alias.size <= entry.offset + entry.size
                        ):
                            delta = alias.offset - entry.offset
                            builder.add_alias(alias.fp, new_offset + delta, alias.size)
                            moved[alias.fp] = builder.container_id
                            planned.append(alias.fp)
                            planned_set.add(alias.fp)
        if not builder.is_empty():
            builder = self._flush_compaction(builder, report)

        # Phase 2: record the planned moves (one atomic journal update),
        # then re-point the global index.  Recovery needs the moves to
        # either replay the cleanup (committed) or walk the index back
        # to the still-live old copies (discarded).
        journal.update(
            seq,
            "compaction",
            path=result.path,
            version=result.version,
            watermark=watermark,
            sparse=sparse,
            new_cids=list(report.new_container_ids),
            moves={fp.hex(): cid for fp, cid in moved.items()},
        )
        for fp, new_cid in sorted(moved.items()):
            self.storage.global_index.assign(fp, new_cid)

        # Phase 3: COMMIT.  One atomic recipe overwrite flips the version
        # from the old layout to the new one.
        for segment in result.recipe.segments:
            for record in segment:
                new_cid = moved.get(record.fp)
                if new_cid is not None and record.container_id in sparse_set:
                    record.container_id = new_cid
        before = self.storage.oss.stats.snapshot()
        self.storage.recipes.put_recipe(result.recipe)
        report.breakdown.charge(
            "upload", self.storage.oss.stats.diff(before).write_seconds
        )

        # Phase 4: cleanup — only now do the old copies die.  The intent
        # stays open (journal_seq) until the caller has re-published the
        # catalog with the new reference set: a crash before that persist
        # must still find the intent so recovery can replay the fix-up.
        self._compaction_cleanup(sparse, planned_deletes, old_metas, report)
        report.journal_seq = seq
        return report

    def _compaction_cleanup(
        self,
        sparse: list[int],
        planned_deletes: dict[int, list[bytes]],
        old_metas: dict[int, ContainerMeta],
        report: CompactionReport,
    ) -> None:
        """Mark moved chunks deleted in their old containers and collect.

        Runs after the recipe repoint committed; recovery replays it from
        the journaled moves (re-reading the metadata), so it must stay
        idempotent: marking an already-deleted chunk is a no-op, deleting
        an already-deleted container is a no-op.
        """
        containers = self.storage.containers
        for cid in sparse:
            if not containers.exists(cid):
                continue
            meta = old_metas.get(cid)
            if meta is None:
                before = self.storage.oss.stats.snapshot()
                meta = containers.read_meta(cid)
                report.breakdown.charge(
                    "download", self.storage.oss.stats.diff(before).read_seconds
                )
            for fp in planned_deletes.get(cid, []):
                meta.mark_deleted(fp)
            before = self.storage.oss.stats.snapshot()
            containers.update_meta(meta)
            if not meta.live_lookup_entries():
                report.bytes_reclaimed += containers.container_size(cid)
                containers.delete(cid)
            elif meta.stale_fraction() >= self.config.container_rewrite_threshold:
                report.bytes_reclaimed += containers.rewrite(cid)
            report.breakdown.charge(
                "upload", self.storage.oss.stats.diff(before).write_seconds
            )

    # ------------------------------------------------------------------
    # Durability re-tiering
    # ------------------------------------------------------------------
    def retier(self, refcounts: dict[int, int], container_ids: list[int] | None = None):
        """Re-tier container durability to match the live refcounts.

        Runs in the backend after a backup (and from ``repro durability
        --retier``): containers whose heat crossed a policy threshold are
        promoted to replication, grouped into erasure stripes or demoted
        to single copies.  Returns the
        :class:`~repro.core.durability.RetierReport`, or None when the
        durability tier is disabled.
        """
        durability = self.storage.durability
        if durability is None:
            return None
        return durability.retier(refcounts, container_ids)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def deep_clean(self, stale_threshold: float = 0.01) -> int:
        """Rewrite every container whose stale fraction exceeds the
        threshold; returns bytes reclaimed.

        The per-backup path only rewrites containers past the configured
        ``container_rewrite_threshold``; this offline sweep finishes the
        job during idle periods, squeezing out the remaining marked-deleted
        bytes (the long-term decline of Fig 9(b)).

        With two-phase deletion enabled this sweep is also the reaper: it
        physically collects tombstoned containers whose grace epochs have
        passed and then advances the deletion epoch, so a container
        entombed today survives ``tombstone_grace_epochs`` further
        deep_clean passes before its bytes disappear.
        """
        reclaimed = 0
        containers = self.storage.containers
        for cid in containers.container_ids():
            meta = containers.read_meta(cid)
            if not meta.live_lookup_entries():
                reclaimed += containers.container_size(cid)
                containers.delete(cid)
            elif meta.stale_fraction() > stale_threshold:
                reclaimed += containers.rewrite(cid)
        self._prune_global_index()
        reaped_bytes, _ = containers.reap_expired()
        reclaimed += reaped_bytes
        durability = self.storage.durability
        if durability is not None:
            retired_bytes, _ = durability.reap_retired()
            reclaimed += retired_bytes
        if containers.grace_epochs > 0:
            containers.advance_epoch()
        return reclaimed

    def _prune_global_index(self) -> int:
        """Drop index entries whose container no longer exists.

        Version collection sweeps containers without touching the global
        index (it has no per-container fingerprint list); this offline
        pass removes the dangling mappings so reverse dedup never chases
        collected containers.
        """
        pruned = 0
        index = self.storage.global_index
        containers = self.storage.containers
        for fp, cid in list(index.iter_items()):
            if not containers.exists(cid):
                index.remove(fp)
                pruned += 1
        return pruned

    def _flush_compaction(self, builder, report: CompactionReport):
        before = self.storage.oss.stats.snapshot()
        self.storage.containers.write(builder)
        report.breakdown.charge(
            "upload", self.storage.oss.stats.diff(before).write_seconds
        )
        report.new_container_ids.append(builder.container_id)
        return self.storage.containers.new_builder(self.config.container_bytes)
