"""Every SLIMSTORE tunable in one frozen dataclass.

Defaults follow the paper's evaluation setup: 4 KB average chunks cut by
FastCDC, history-aware skip chunking and chunk merging enabled with a merge
threshold of 5 (Fig 7), a 30% sparse-container utilisation threshold and a
20% container rewrite threshold (Sections V-B, VI-A), and six prefetch
threads (Table II).  Sizes are scaled down from production values so the
simulation runs comfortably on one machine; every experiment states its own
overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.chunking.base import ChunkerParams
from repro.chunking.superchunk import MergePolicy


@dataclass(frozen=True)
class SlimStoreConfig:
    """Configuration of one SLIMSTORE deployment."""

    # --- chunking ----------------------------------------------------------
    #: CDC algorithm on the L-node: "fastcdc", "rabin", "gear" or "fixed".
    chunker: str = "fastcdc"
    #: Average chunk size in bytes (min/max derived as avg/4 and avg*8).
    chunk_avg_size: int = 4096
    #: History-aware skip chunking (Section IV-B).
    skip_chunking: bool = True
    #: History-aware chunk merging / SuperChunking (Section IV-C).
    chunk_merging: bool = True
    #: duplicateTimes threshold that triggers merging.
    merge_threshold: int = 5
    #: Superchunk size band.
    min_superchunk_bytes: int = 64 * 1024
    max_superchunk_bytes: int = 512 * 1024

    # --- segmenting & sampling ----------------------------------------------
    #: Logical bytes per segment (a segment recipe is the prefetch unit).
    segment_bytes: int = 128 * 1024
    #: mod-R sampling ratio for recipe-index samples.
    sample_ratio: int = 16
    #: Consecutive segment recipes fetched per prefetch request (they are
    #: contiguous in the recipe object, so a span is one ranged GET).
    prefetch_segment_span: int = 4
    #: mod-R ratio for the similar-file index (coarser than segments).
    similarity_sample_ratio: int = 32
    #: Bytes of file header chunked to find a similar file when the name
    #: lookup fails (Section IV-A, step 1).
    header_probe_bytes: int = 256 * 1024
    #: Cap on representative fingerprints stored per file.
    max_file_representatives: int = 256

    # --- containers -----------------------------------------------------------
    #: Container payload capacity in bytes.
    container_bytes: int = 512 * 1024

    # --- restore ----------------------------------------------------------------
    #: Look-ahead window length in chunk records.
    law_window_records: int = 512
    #: In-memory restore cache capacity (bytes of chunk payload).
    restore_cache_bytes: int = 8 * 1024 * 1024
    #: On-disk (L-node local) second cache layer capacity.
    restore_disk_cache_bytes: int = 64 * 1024 * 1024
    #: Parallel OSS prefetch channels (0 disables prefetching).
    prefetch_threads: int = 6
    #: Verify each restored chunk against its fingerprint.
    verify_restore: bool = True
    #: Read only the planned chunk extents of each container (coalesced
    #: ranged GETs) instead of whole data objects.
    ranged_reads: bool = True
    #: Coalesce ranged-read extents across gaps up to this many bytes: at
    #: 0.5 ms request latency and 40 MiB/s per channel, re-reading up to
    #: ~latency x bandwidth ~= 20 KiB of dead bytes beats paying another
    #: round trip.
    ranged_read_gap_bytes: int = 16 * 1024

    # --- browse (write-back block cache + random-access reads) ------------------
    #: Fixed block size of the L-node browse cache.  Blocks are the unit
    #: of caching, dirty tracking and readahead; 64 KiB keeps a block a
    #: handful of average chunks so a random read touches few extents.
    browse_block_bytes: int = 64 * 1024
    #: Memory tier capacity of the browse block cache (bytes).
    browse_cache_memory_bytes: int = 4 * 1024 * 1024
    #: Disk tier capacity (L-node local) the memory tier demotes into.
    browse_cache_disk_bytes: int = 32 * 1024 * 1024
    #: Concurrent background upload channels a write-back flush stages
    #: dirty blocks over (modelled on ``sim/events``).
    browse_upload_channels: int = 4
    #: Adjacent blocks fetched alongside a missed block (FullVision-style
    #: readahead over the recipe's extent order).  0 disables readahead.
    browse_readahead_blocks: int = 2

    # --- G-node ------------------------------------------------------------------
    #: Exact (reverse) deduplication offline.
    reverse_dedup: bool = True
    #: Sparse container compaction offline.
    sparse_compaction: bool = True
    #: Container utilisation below this is "sparse" (paper: e.g. 30%).
    sparse_utilization_threshold: float = 0.30
    #: Rewrite a container once this fraction of chunks is deleted.
    container_rewrite_threshold: float = 0.20
    #: Use the global Bloom prefilter during reverse dedup.
    gdedup_bloom_filter: bool = True
    #: Cache old-container metadata during reverse dedup.
    gdedup_meta_cache: bool = True
    #: Expected chunk population for the global Bloom filter.
    global_bloom_capacity: int = 1 << 20
    #: Deletion epochs a collected container stays readable behind its
    #: tombstone before deep_clean reaps it (two-phase deletion).  0
    #: deletes immediately — the behaviour every space figure assumes —
    #: while a positive grace shields restores planned against
    #: pre-maintenance metadata from ObjectNotFoundError mid-read.
    tombstone_grace_epochs: int = 0

    # --- global index sharding & batching -------------------------------------
    #: Independent global-index shards (LSM stores keyed by fp prefix).
    index_shard_count: int = 4
    #: Fingerprints grouped into one batched index round trip.
    index_batch_size: int = 256
    #: Batch reverse-dedup index lookups per shard (off = the seed's
    #: one-fingerprint-at-a-time Rocks-OSS access, the ablation baseline).
    gdedup_batched_lookup: bool = True
    #: Drain index shards in parallel during reverse dedup (charge the
    #: slowest shard, not the sum).
    gdedup_parallel_shards: bool = True

    # --- ingest pipeline -------------------------------------------------------
    #: Event-driven segment-parallel ingest timing model: chunking runs
    #: ahead of classification, per-segment index probes are Bloom
    #: prefiltered and batched into modelled ``get_many`` round trips, and
    #: container flushes double-buffer against the next segment's CPU.
    #: Off by default: the serial accounting stays the baseline.
    ingest_pipeline: bool = False
    #: Extra segments the chunk/fingerprint stage may run ahead of the
    #: lookup stage (its look-ahead window).  0 = strictly serial: the
    #: next segment is chunked only after the previous one is classified.
    ingest_segments: int = 2
    #: Extra in-flight container upload buffers.  0 = a filling container
    #: blocks the job for its whole upload; 1 = classic double buffering.
    flush_buffers: int = 1

    # --- durability tier --------------------------------------------------------
    #: Heat-aware replication/erasure over container payloads (FASTEN-style:
    #: the most-shared containers get the most copies).  Off by default —
    #: every space figure assumes single-copy containers.
    durability_enabled: bool = False
    #: Total copies (primary included) a hot container keeps, on distinct
    #: fault domains.
    durability_replicas: int = 3
    #: Live references at or above which a container is "hot" (replicated).
    durability_hot_refs: int = 3
    #: Live references at or above which a container is "warm" (erasure
    #: coded); below it the container stays single-copy.
    durability_cold_refs: int = 2
    #: Reed–Solomon data shards per erasure stripe.
    erasure_data_shards: int = 4
    #: Reed–Solomon parity shards per erasure stripe.
    erasure_parity_shards: int = 2
    #: Simulated fault domains replica and parity placement spreads over.
    fault_domains: int = 3

    # --- wall-clock execution engine -------------------------------------------
    #: Real worker count for the parallel execution engine (chunk +
    #: fingerprint fan-out, vectorised CDC scan, threaded OSS IO).  0 keeps
    #: today's serial path; any N >= 1 is byte-identical to serial.
    workers: int = 0
    #: Compute-pool flavour: "thread" (numpy/hashlib release the GIL) or
    #: "process" (fork workers for pure-python stages).
    exec_mode: str = "thread"
    #: Chunk fingerprint algorithm: "sha1" (default) or "blake2b".  Pinned
    #: per repository — digests from different algorithms never match.
    fingerprint_algo: str = "sha1"

    # --- cluster --------------------------------------------------------------------
    #: Number of L-nodes available (paper: six ECS instances).
    lnode_count: int = 6

    def __post_init__(self) -> None:
        if self.chunk_avg_size & (self.chunk_avg_size - 1):
            raise ValueError(f"chunk_avg_size must be a power of two: {self.chunk_avg_size}")
        if self.segment_bytes < self.chunk_avg_size:
            raise ValueError("segment_bytes must be at least one average chunk")
        if self.container_bytes < self.chunk_avg_size:
            raise ValueError("container_bytes must hold at least one average chunk")
        if not 0.0 < self.sparse_utilization_threshold < 1.0:
            raise ValueError("sparse_utilization_threshold must be in (0, 1)")
        if not 0.0 < self.container_rewrite_threshold < 1.0:
            raise ValueError("container_rewrite_threshold must be in (0, 1)")
        if self.lnode_count < 1:
            raise ValueError("need at least one L-node")
        if self.prefetch_threads < 0:
            raise ValueError("prefetch_threads cannot be negative")
        if self.ranged_read_gap_bytes < 0:
            raise ValueError(
                f"ranged_read_gap_bytes cannot be negative: {self.ranged_read_gap_bytes}"
            )
        if self.index_shard_count < 1:
            raise ValueError(f"index_shard_count must be >= 1: {self.index_shard_count}")
        if self.index_batch_size < 1:
            raise ValueError(f"index_batch_size must be >= 1: {self.index_batch_size}")
        if self.ingest_segments < 0:
            raise ValueError(f"ingest_segments cannot be negative: {self.ingest_segments}")
        if self.flush_buffers < 0:
            raise ValueError(f"flush_buffers cannot be negative: {self.flush_buffers}")
        if self.workers < 0:
            raise ValueError(f"workers cannot be negative: {self.workers}")
        if self.exec_mode not in ("thread", "process"):
            raise ValueError(
                f"exec_mode must be 'thread' or 'process': {self.exec_mode!r}"
            )
        from repro.fingerprint.hashing import FINGERPRINT_ALGORITHMS

        if self.fingerprint_algo not in FINGERPRINT_ALGORITHMS:
            raise ValueError(
                f"fingerprint_algo must be one of {list(FINGERPRINT_ALGORITHMS)}: "
                f"{self.fingerprint_algo!r}"
            )
        if self.browse_block_bytes < 1:
            raise ValueError(f"browse_block_bytes must be >= 1: {self.browse_block_bytes}")
        if self.browse_cache_memory_bytes < self.browse_block_bytes:
            raise ValueError("browse_cache_memory_bytes must hold at least one block")
        if self.browse_cache_disk_bytes < 0:
            raise ValueError(
                f"browse_cache_disk_bytes cannot be negative: {self.browse_cache_disk_bytes}"
            )
        if self.browse_upload_channels < 1:
            raise ValueError(
                f"browse_upload_channels must be >= 1: {self.browse_upload_channels}"
            )
        if self.browse_readahead_blocks < 0:
            raise ValueError(
                f"browse_readahead_blocks cannot be negative: {self.browse_readahead_blocks}"
            )
        if self.tombstone_grace_epochs < 0:
            raise ValueError(
                f"tombstone_grace_epochs cannot be negative: {self.tombstone_grace_epochs}"
            )
        # Building the policy validates the durability parameters, so a
        # bad combination fails at construction instead of first use.
        self.durability_policy()

    # --- derived views ---------------------------------------------------------------
    def effective_sample_ratio(self) -> int:
        """mod-R ratio adjusted so each segment keeps a few samples.

        The paper samples "in a segment" with an adjustable R; when chunks
        grow (larger ``chunk_avg_size``), a fixed R would leave most
        segments without any sample, so R shrinks to keep roughly four
        samples per segment.
        """
        chunks_per_segment = max(1, self.segment_bytes // self.chunk_avg_size)
        return max(1, min(self.sample_ratio, chunks_per_segment // 4))

    def chunker_params(self) -> ChunkerParams:
        """Min/avg/max chunk bounds derived from the configured average."""
        return ChunkerParams(
            min_size=max(64, self.chunk_avg_size // 4),
            avg_size=self.chunk_avg_size,
            max_size=self.chunk_avg_size * 8,
        )

    def merge_policy(self) -> MergePolicy:
        """The history-aware chunk merging policy."""
        return MergePolicy(
            enabled=self.chunk_merging,
            threshold=self.merge_threshold,
            min_superchunk_bytes=self.min_superchunk_bytes,
            max_superchunk_bytes=self.max_superchunk_bytes,
        )

    def durability_policy(self):
        """The :class:`~repro.core.durability.ReplicationPolicy`, or None.

        None when the durability tier is disabled — callers use this as
        the single switch for wiring the tier in.
        """
        if not self.durability_enabled:
            return None
        from repro.core.durability import ReplicationPolicy

        return ReplicationPolicy(
            replica_count=self.durability_replicas,
            hot_refs=self.durability_hot_refs,
            cold_refs=self.durability_cold_refs,
            data_shards=self.erasure_data_shards,
            parity_shards=self.erasure_parity_shards,
            fault_domains=self.fault_domains,
        )

    def with_overrides(self, **overrides: Any) -> "SlimStoreConfig":
        """A copy with the given fields replaced (frozen-dataclass update)."""
        return replace(self, **overrides)
