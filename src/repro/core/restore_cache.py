"""The full-vision restore cache with LAW-based prefetching (Section V-A).

Three chunk statuses drive the replacement policy:

* ``S_I`` — the chunk appears inside the look-ahead window: needed soon,
  pinned in memory;
* ``S_L`` — the chunk does not appear in the LAW but the per-file counting
  Bloom filter says it is referenced again later: keep, demoting to the
  L-node disk cache under memory pressure;
* ``S_U`` — referenced neither in the LAW nor in the CBF: useless, never
  inserted and evicted first.

Because eviction only ever discards ``S_U`` chunks, every container is read
from OSS at most once — the property the paper's Fig 8 relies on ("make
sure all containers only be read once").
"""

from __future__ import annotations

from collections import Counter, OrderedDict

from repro.core.container import ContainerMeta
from repro.core.recipe import ChunkRecord
from repro.kvstore.bloom import CountingBloomFilter
from repro.sim.metrics import Counters

#: Chunk status names (exported for tests and documentation).
STATUS_IN_WINDOW = "S_I"
STATUS_LATER = "S_L"
STATUS_USELESS = "S_U"


class LookAheadWindow:
    """A sliding window over the recipe's chunk-record sequence."""

    def __init__(self, records: list[ChunkRecord], window: int) -> None:
        if window < 1:
            raise ValueError(f"LAW window must be >= 1, got {window}")
        self._records = records
        self._window = window
        self._position = 0
        self._counts: Counter[bytes] = Counter(
            record.fp for record in records[:window]
        )

    def advance_past(self, index: int) -> None:
        """Slide so the window covers ``[index+1, index+1+window)``."""
        while self._position <= index:
            leaving = self._records[self._position]
            self._counts[leaving.fp] -= 1
            if self._counts[leaving.fp] == 0:
                del self._counts[leaving.fp]
            entering_index = self._position + self._window
            if entering_index < len(self._records):
                self._counts[self._records[entering_index].fp] += 1
            self._position += 1

    def __contains__(self, fp: bytes) -> bool:
        return self._counts.get(fp, 0) > 0

    def upcoming_container_ids(self) -> list[int]:
        """Distinct container ids referenced inside the window, in order."""
        seen: list[int] = []
        for record in self._records[self._position : self._position + self._window]:
            if record.container_id not in seen:
                seen.append(record.container_id)
        return seen


class FullVisionCache:
    """Two-layer (memory + L-node disk) chunk cache with full vision."""

    def __init__(
        self,
        memory_bytes: int,
        disk_bytes: int,
        cbf: CountingBloomFilter,
        law: LookAheadWindow,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory cache must have positive capacity")
        self._memory: OrderedDict[bytes, bytes] = OrderedDict()
        self._disk: OrderedDict[bytes, bytes] = OrderedDict()
        self._memory_capacity = memory_bytes
        self._disk_capacity = disk_bytes
        self._memory_used = 0
        self._disk_used = 0
        self._cbf = cbf
        self._law = law
        self.counters = Counters()

    # --- status ------------------------------------------------------------
    def status_of(self, fp: bytes) -> str:
        """Current status of a fingerprint under the full-vision policy."""
        if fp in self._law:
            return STATUS_IN_WINDOW
        if self._cbf.count(fp) > 0:
            return STATUS_LATER
        return STATUS_USELESS

    # --- lookup / consume -----------------------------------------------------
    def lookup(self, fp: bytes) -> bytes | None:
        """Chunk payload if cached (promoting disk-resident chunks)."""
        data = self._memory.get(fp)
        if data is not None:
            self.counters.add("memory_hits")
            return data
        data = self._disk.pop(fp, None)
        if data is not None:
            self._disk_used -= len(data)
            self.counters.add("disk_promotions")
            self._insert_memory(fp, data)
            return data
        self.counters.add("cache_misses")
        return None

    def consume(self, fp: bytes) -> None:
        """One reference to ``fp`` was restored: decrement its CBF count."""
        try:
            self._cbf.remove(fp)
        except KeyError:
            # A Bloom false positive elsewhere already consumed the slots.
            self.counters.add("cbf_underflows")
        if self.status_of(fp) == STATUS_USELESS:
            self._drop(fp)

    def _drop(self, fp: bytes) -> None:
        data = self._memory.pop(fp, None)
        if data is not None:
            self._memory_used -= len(data)
        data = self._disk.pop(fp, None)
        if data is not None:
            self._disk_used -= len(data)

    # --- container insertion -----------------------------------------------------
    def insert_container(self, meta: ContainerMeta, payload: bytes) -> int:
        """Cache the useful chunks of a freshly read container.

        Returns the number of chunks cached.  Only chunks with status
        ``S_I`` or ``S_L`` are placed in the cache; useless chunks never
        occupy space (the paper's "only useful chunk is placed").
        """
        inserted = 0
        for entry in meta.entries:
            if entry.deleted or entry.fp in self._memory or entry.fp in self._disk:
                continue
            status = self.status_of(entry.fp)
            if status == STATUS_USELESS:
                continue
            data = payload[entry.offset : entry.offset + entry.size]
            self._insert_memory(entry.fp, data)
            inserted += 1
        return inserted

    # --- internal space management ---------------------------------------------------
    def _insert_memory(self, fp: bytes, data: bytes) -> None:
        self._make_room(len(data))
        self._memory[fp] = data
        self._memory_used += len(data)

    def _make_room(self, needed: int) -> None:
        if self._memory_used + needed <= self._memory_capacity:
            return
        # Pass 1: discard useless chunks (S_U).
        for fp in list(self._memory):
            if self._memory_used + needed <= self._memory_capacity:
                return
            if self.status_of(fp) == STATUS_USELESS:
                data = self._memory.pop(fp)
                self._memory_used -= len(data)
                self.counters.add("evicted_useless")
        # Pass 2: demote S_L chunks to the disk layer, oldest first.
        for fp in list(self._memory):
            if self._memory_used + needed <= self._memory_capacity:
                return
            if self.status_of(fp) == STATUS_LATER:
                data = self._memory.pop(fp)
                self._memory_used -= len(data)
                self._demote_to_disk(fp, data)
        # Pass 3 (extreme): even in-window chunks must go to disk.
        for fp in list(self._memory):
            if self._memory_used + needed <= self._memory_capacity:
                return
            data = self._memory.pop(fp)
            self._memory_used -= len(data)
            self._demote_to_disk(fp, data)
            self.counters.add("evicted_in_window")

    def _demote_to_disk(self, fp: bytes, data: bytes) -> None:
        if self._disk_used + len(data) > self._disk_capacity:
            # Disk full: drop the oldest disk-resident chunks.  These may
            # need a repeated container read later (counted, so tests can
            # assert it never happens at the configured sizes).
            while self._disk and self._disk_used + len(data) > self._disk_capacity:
                _, old = self._disk.popitem(last=False)
                self._disk_used -= len(old)
                self.counters.add("disk_evictions")
        if self._disk_used + len(data) <= self._disk_capacity:
            self._disk[fp] = data
            self._disk_used += len(data)
            self.counters.add("disk_demotions")

    # --- introspection ----------------------------------------------------------------
    @property
    def memory_used(self) -> int:
        """Bytes of chunk payload currently in the memory layer."""
        return self._memory_used

    @property
    def disk_used(self) -> int:
        """Bytes of chunk payload currently in the disk layer."""
        return self._disk_used
