"""The full-vision restore cache with LAW-based prefetching (Section V-A).

Three chunk statuses drive the replacement policy:

* ``S_I`` — the chunk appears inside the look-ahead window: needed soon,
  pinned in memory;
* ``S_L`` — the chunk does not appear in the LAW but the per-file counting
  Bloom filter says it is referenced again later: keep, demoting to the
  L-node disk cache under memory pressure;
* ``S_U`` — referenced neither in the LAW nor in the CBF: useless, never
  inserted and evicted first.

Because eviction only ever discards ``S_U`` chunks, every container is read
from OSS at most once — the property the paper's Fig 8 relies on ("make
sure all containers only be read once").

The cache keeps its memory layer in two status buckets (``S_I`` and
``S_L``) that the :class:`LookAheadWindow` maintains through transition
callbacks as it slides, so eviction pops victims directly from the right
bucket instead of re-deriving ``status_of`` for every resident chunk on
every eviction.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, deque
from collections.abc import Callable

from repro.core.container import ContainerMeta
from repro.core.recipe import ChunkRecord
from repro.kvstore.bloom import CountingBloomFilter
from repro.sim.metrics import Counters

#: Chunk status names (exported for tests and documentation).
STATUS_IN_WINDOW = "S_I"
STATUS_LATER = "S_L"
STATUS_USELESS = "S_U"


class LookAheadWindow:
    """A sliding window over the recipe's chunk-record sequence.

    Alongside per-fingerprint counts the window maintains the positions of
    each container id currently inside it, updated incrementally as it
    slides, so :meth:`upcoming_container_ids` costs O(distinct containers)
    instead of rescanning the whole window.  Optional ``on_enter`` /
    ``on_exit`` callbacks fire when a fingerprint's window membership flips,
    letting the cache keep its status buckets current without polling.
    """

    def __init__(self, records: list[ChunkRecord], window: int) -> None:
        if window < 1:
            raise ValueError(f"LAW window must be >= 1, got {window}")
        self._records = records
        self._window = window
        self._position = 0
        self._counts: Counter[bytes] = Counter(
            record.fp for record in records[:window]
        )
        self._container_positions: dict[int, deque[int]] = {}
        for index, record in enumerate(records[:window]):
            self._container_positions.setdefault(record.container_id, deque()).append(
                index
            )
        #: Fired with a fingerprint when it enters / leaves the window.
        self.on_enter: Callable[[bytes], None] | None = None
        self.on_exit: Callable[[bytes], None] | None = None

    def advance_past(self, index: int) -> None:
        """Slide so the window covers ``[index+1, index+1+window)``."""
        while self._position <= index:
            # Enter before exit: a fingerprint that leaves one position and
            # re-enters at another in the same slide never flips membership,
            # so the cache is spared a demote-then-repromote round trip.
            entering_index = self._position + self._window
            if entering_index < len(self._records):
                entering = self._records[entering_index]
                self._counts[entering.fp] += 1
                self._container_positions.setdefault(
                    entering.container_id, deque()
                ).append(entering_index)
                if self._counts[entering.fp] == 1 and self.on_enter is not None:
                    self.on_enter(entering.fp)
            leaving = self._records[self._position]
            self._counts[leaving.fp] -= 1
            if self._counts[leaving.fp] == 0:
                del self._counts[leaving.fp]
                if self.on_exit is not None:
                    self.on_exit(leaving.fp)
            positions = self._container_positions[leaving.container_id]
            positions.popleft()
            if not positions:
                del self._container_positions[leaving.container_id]
            self._position += 1

    def __contains__(self, fp: bytes) -> bool:
        return self._counts.get(fp, 0) > 0

    def upcoming_container_ids(self) -> list[int]:
        """Distinct container ids referenced inside the window, in order."""
        return sorted(
            self._container_positions, key=lambda cid: self._container_positions[cid][0]
        )


class FullVisionCache:
    """Two-layer (memory + L-node disk) chunk cache with full vision."""

    def __init__(
        self,
        memory_bytes: int,
        disk_bytes: int,
        cbf: CountingBloomFilter,
        law: LookAheadWindow,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory cache must have positive capacity")
        #: Memory layer, bucketed by status so eviction never scans.
        self._mem_window: OrderedDict[bytes, bytes] = OrderedDict()
        self._mem_later: OrderedDict[bytes, bytes] = OrderedDict()
        self._disk: OrderedDict[bytes, bytes] = OrderedDict()
        self._memory_capacity = memory_bytes
        self._disk_capacity = disk_bytes
        self._memory_used = 0
        self._disk_used = 0
        self._cbf = cbf
        self._law = law
        law.on_enter = self._fp_entered_window
        law.on_exit = self._fp_left_window
        self.counters = Counters()

    # --- status ------------------------------------------------------------
    def status_of(self, fp: bytes) -> str:
        """Current status of a fingerprint under the full-vision policy."""
        if fp in self._law:
            return STATUS_IN_WINDOW
        if self._cbf.count(fp) > 0:
            return STATUS_LATER
        return STATUS_USELESS

    # --- LAW transition hooks ----------------------------------------------
    def _fp_entered_window(self, fp: bytes) -> None:
        """A resident ``S_L`` chunk just became ``S_I``: pin it."""
        data = self._mem_later.pop(fp, None)
        if data is not None:
            self._mem_window[fp] = data

    def _fp_left_window(self, fp: bytes) -> None:
        """A chunk left the window: demote to ``S_L`` or drop as ``S_U``."""
        data = self._mem_window.pop(fp, None)
        if data is None:
            return
        if self._cbf.count(fp) > 0:
            self._mem_later[fp] = data
        else:
            self._memory_used -= len(data)
            self.counters.add("evicted_useless")

    # --- lookup / consume -----------------------------------------------------
    def lookup(self, fp: bytes) -> bytes | None:
        """Chunk payload if cached (promoting disk-resident chunks)."""
        data = self._mem_window.get(fp)
        if data is None:
            data = self._mem_later.get(fp)
        if data is not None:
            self.counters.add("memory_hits")
            return data
        data = self._disk.pop(fp, None)
        if data is not None:
            self._disk_used -= len(data)
            self.counters.add("disk_promotions")
            self._insert_memory(fp, data)
            return data
        self.counters.add("cache_misses")
        return None

    def peek(self, fp: bytes) -> bytes | None:
        """Chunk payload from any layer, without counters or promotion."""
        return (
            self._mem_window.get(fp)
            or self._mem_later.get(fp)
            or self._disk.get(fp)
        )

    def consume(self, fp: bytes) -> None:
        """One reference to ``fp`` was restored: decrement its CBF count."""
        try:
            self._cbf.remove(fp)
        except KeyError:
            # A Bloom false positive elsewhere already consumed the slots.
            self.counters.add("cbf_underflows")
        if self.status_of(fp) == STATUS_USELESS:
            self._drop(fp)

    def _drop(self, fp: bytes) -> None:
        data = self._mem_window.pop(fp, None)
        if data is None:
            data = self._mem_later.pop(fp, None)
        if data is not None:
            self._memory_used -= len(data)
        data = self._disk.pop(fp, None)
        if data is not None:
            self._disk_used -= len(data)

    # --- container insertion -----------------------------------------------------
    def insert_chunk(self, fp: bytes, data: bytes) -> bool:
        """Cache one freshly read chunk if its status makes it useful.

        A chunk already sitting in the L-node disk layer whose status is
        ``S_I`` (needed within the window) is promoted to memory here, at
        insert time, instead of paying a ``disk_promotions`` round trip
        when the consumer reaches it.
        """
        if fp in self._mem_window or fp in self._mem_later:
            return False
        status = self.status_of(fp)
        if fp in self._disk:
            if status != STATUS_IN_WINDOW:
                return False
            stored = self._disk.pop(fp)
            self._disk_used -= len(stored)
            self.counters.add("insert_promotions")
            self._insert_memory(fp, stored)
            return True
        if status == STATUS_USELESS:
            return False
        self._insert_memory(fp, data)
        return True

    def insert_container(self, meta: ContainerMeta, payload: bytes) -> int:
        """Cache the useful chunks of a freshly read container.

        Returns the number of chunks cached.  Only chunks with status
        ``S_I`` or ``S_L`` are placed in the cache; useless chunks never
        occupy space (the paper's "only useful chunk is placed").
        """
        inserted = 0
        for entry in meta.entries:
            if entry.deleted:
                continue
            if self.insert_chunk(
                entry.fp, payload[entry.offset : entry.offset + entry.size]
            ):
                inserted += 1
        return inserted

    # --- internal space management ---------------------------------------------------
    def _insert_memory(self, fp: bytes, data: bytes) -> None:
        self._make_room(len(data))
        if self.status_of(fp) == STATUS_IN_WINDOW:
            self._mem_window[fp] = data
        else:
            self._mem_later[fp] = data
        self._memory_used += len(data)

    def _make_room(self, needed: int) -> None:
        # Victims come straight off the status buckets (oldest first):
        # no per-resident status probing.  S_L chunks demote to the disk
        # layer; stragglers that turned useless since insertion (CBF
        # collisions) are dropped outright.
        while (
            self._memory_used + needed > self._memory_capacity and self._mem_later
        ):
            fp, data = self._mem_later.popitem(last=False)
            self._memory_used -= len(data)
            if self.status_of(fp) == STATUS_USELESS:
                self.counters.add("evicted_useless")
            else:
                self._demote_to_disk(fp, data)
        # Extreme pressure: even in-window chunks must go to disk.
        while (
            self._memory_used + needed > self._memory_capacity and self._mem_window
        ):
            fp, data = self._mem_window.popitem(last=False)
            self._memory_used -= len(data)
            self._demote_to_disk(fp, data)
            self.counters.add("evicted_in_window")

    def _demote_to_disk(self, fp: bytes, data: bytes) -> None:
        if self._disk_used + len(data) > self._disk_capacity:
            # Disk full: drop the oldest disk-resident chunks.  These may
            # need a repeated container read later (counted, so tests can
            # assert it never happens at the configured sizes).
            while self._disk and self._disk_used + len(data) > self._disk_capacity:
                _, old = self._disk.popitem(last=False)
                self._disk_used -= len(old)
                self.counters.add("disk_evictions")
        if self._disk_used + len(data) <= self._disk_capacity:
            self._disk[fp] = data
            self._disk_used += len(data)
            self.counters.add("disk_demotions")

    # --- introspection ----------------------------------------------------------------
    @property
    def memory_used(self) -> int:
        """Bytes of chunk payload currently in the memory layer."""
        return self._memory_used

    @property
    def disk_used(self) -> int:
        """Bytes of chunk payload currently in the disk layer."""
        return self._disk_used
