"""Random-access browsing of any backup version (the mount hot path).

A restore materialises a whole version; a *browse* opens one file at one
version and touches a few byte ranges — the dominant access pattern once
millions of users keep multi-version backups.  :class:`BrowseSession`
serves that pattern from the L-node write-back block cache
(:mod:`repro.core.blockcache`):

* ``open(path, version)`` loads the recipe once and builds a prefix-sum
  offset map over its chunk records — full vision over one file.
* ``read(offset, length)`` resolves only the **touched blocks**.  A miss
  plans the covering chunk records through
  :class:`~repro.core.restore_plan.RestorePlanner` (ranged coalesced
  GETs, plan-time global-index redirects — the same machinery as a full
  restore, applied to a record subset) and pulls a configurable window
  of adjacent blocks as readahead, so sequential browsing rides one
  coalesced span.  Container metadata is memoised across plans.
* ``write(offset, data)`` is write-back: the touched blocks are dirtied
  in cache and the write is acknowledged immediately; nothing reaches
  OSS until ``flush()``.

``flush()`` commits a dirtied file as a **new version through the
existing ingest pipeline**, crash-safe and visible-or-nothing via a
journaled ``cache_flush`` intent:

1. ``begin`` the intent (path, base version, expected new version, full
   SHA-256, dirty block indices);
2. stage every dirty block under ``browsecache/{seq}/`` — each put is
   charged serially by the endpoint, and the measured durations are
   overlapped over ``browse_upload_channels`` background channels
   (:func:`repro.sim.events.simulate_upload_channels`);
3. ``update`` the intent with ``staged=True`` — from here recovery can
   roll the upload forward;
4. run the normal ``SlimStore.backup`` over the materialised bytes (its
   own nested intent provides the single-atomic-catalog-put commit, and
   history-aware skip chunking re-derives boundaries only around the
   dirty extents);
5. delete the staging objects and ``close`` the intent.

A crash anywhere leaves an open intent for
:class:`~repro.core.recovery.RecoveryManager`: before step 3 the upload
is discarded (staging reaped, nothing visible); after it, the new
version is rolled forward from the staged blocks — no acknowledged write
is lost once ``flush`` returned, and no staging byte survives recovery.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.blockcache import BlockCache
from repro.core.recipe import ChunkRecord
from repro.core.restore_plan import RestorePlanner
from repro.errors import (
    BrowseError,
    IntegrityError,
    SimulatedCrashError,
    VersionNotFoundError,
)
from repro.sim.events import UploadStats, simulate_upload_channels
from repro.sim.metrics import BlockCacheStats, Counters, TimeBreakdown

if TYPE_CHECKING:
    from repro.core.system import SlimStore

#: OSS keyspace the write-back flush stages dirty blocks under.  Staged
#: objects are never referenced by visible state, so anything surviving
#: a crash is debris for recovery/fsck to reap.
STAGE_PREFIX = "browsecache/"
STAGE_KEY = "browsecache/{seq:012d}/{index:08d}"


def stage_key_seq(key: str) -> int | None:
    """The intent sequence a staging key belongs to (None if malformed)."""
    parts = key.split("/")
    if len(parts) != 3 or parts[0] + "/" != STAGE_PREFIX:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


@dataclass
class BrowseStat:
    """``stat()`` view of one open browse file."""

    path: str
    version: int
    size: int
    block_bytes: int
    chunk_records: int
    dirty_blocks: int
    #: True when the file carries un-flushed writes or a resize.
    dirty: bool = False


@dataclass
class FlushReport:
    """Outcome of one write-back commit."""

    path: str
    #: Version the dirtied file was published as.
    version: int
    #: Base version the edits were applied over.
    base_version: int
    #: Dirty blocks staged and committed.
    blocks_written: int
    #: Bytes those blocks staged to OSS.
    staged_bytes: int
    #: Background-upload schedule over the configured channels.
    upload: UploadStats = field(default_factory=UploadStats)
    #: The ingest pipeline's report for the published version.
    backup_report: object | None = None


class BrowseFile:
    """One open ``(path, version)`` with random-access read/write."""

    def __init__(self, session: "BrowseSession", path: str, version: int) -> None:
        self.session = session
        self.path = path
        self.version = version
        self._load_recipe()

    def _load_recipe(self) -> None:
        """Fetch the recipe and build the record offset map (one GET)."""
        storage = self.session.store.storage
        with storage.meter_reads() as meter:
            recipe = storage.recipes.get_recipe(self.path, self.version)
        self.session.breakdown.charge("download", meter.seconds)
        self.session.counters.add("browse_recipe_reads")
        self._records: list[ChunkRecord] = recipe.all_records()
        #: File offset each record starts at (prefix sums over sizes).
        self._starts: list[int] = []
        offset = 0
        for record in self._records:
            self._starts.append(offset)
            offset += record.size
        #: Committed content length of the base version.
        self.base_size = offset
        #: Current logical size (grows when writes extend the file).
        self.size = offset

    # --- geometry ----------------------------------------------------------
    @property
    def block_bytes(self) -> int:
        """Fixed cache-block size."""
        return self.session.block_bytes

    def _block_count(self) -> int:
        block = self.block_bytes
        return (self.size + block - 1) // block

    def _block_length(self, index: int) -> int:
        """Logical length of block ``index`` under the current size."""
        return min(self.block_bytes, self.size - index * self.block_bytes)

    def _key(self, index: int) -> tuple[str, int, int]:
        return (self.path, self.version, index)

    # --- reads -------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Bytes at ``[offset, offset + length)``; short at EOF.

        Reads starting at or past EOF return ``b""`` (the POSIX read
        contract); reads running past the end return the short tail.
        Negative offsets or lengths are errors.
        """
        if offset < 0 or length < 0:
            raise BrowseError(f"invalid read range: offset={offset} length={length}")
        if offset >= self.size or length == 0:
            return b""
        length = min(length, self.size - offset)
        block = self.block_bytes
        pieces: list[bytes] = []
        index = offset // block
        end = offset + length
        while index * block < end:
            data = self._load_block(index)
            block_lo = index * block
            lo = max(offset, block_lo) - block_lo
            hi = min(end, block_lo + len(data)) - block_lo
            pieces.append(data[lo:hi])
            index += 1
        self.session.counters.add("browse_reads")
        self.session.counters.add("browse_bytes_read", length)
        return b"".join(pieces)

    def _load_block(self, index: int) -> bytes:
        """The block's bytes, fetching (with readahead) on a miss.

        Always returns the block's full logical length: a block cached
        before a later write extended the file keeps its short cached
        form, so the tail is padded with the hole's zeros on the way
        out.
        """
        cached = self.session.cache.get(self._key(index))
        if cached is not None:
            needed = self._block_length(index)
            if len(cached) < needed:
                cached = cached + bytes(needed - len(cached))
            return cached
        wanted = [index]
        for ahead in range(1, self.session.readahead_blocks + 1):
            candidate = index + ahead
            if candidate >= self._block_count():
                break
            if self.session.cache.contains(self._key(candidate)):
                break
            wanted.append(candidate)
        fetched = self._fetch_blocks(wanted)
        for position, block_index in enumerate(wanted):
            self.session.cache.put(
                self._key(block_index),
                fetched[position],
                readahead=block_index != index,
            )
        return fetched[0]

    def _fetch_blocks(self, indices: list[int]) -> list[bytes]:
        """Fetch the listed blocks' bytes from OSS (ranged, planned).

        ``indices`` is a contiguous ascending run, so the covering chunk
        records are one slice of the recipe — the planner coalesces
        their extents into a handful of ranged GETs and resolves moved
        chunks through the global index, exactly as a full restore
        would, scoped to the touched bytes.
        """
        session = self.session
        block = self.block_bytes
        lo = indices[0] * block
        hi = min(indices[-1] * block + block, self.size)
        buffers = [bytearray(self._block_length(i)) for i in indices]
        # Bytes past the committed content are holes (zeros).
        covered_hi = min(hi, self.base_size)
        if lo < covered_hi and self._records:
            first = max(0, bisect_right(self._starts, lo) - 1)
            last = first
            while last < len(self._records) and self._starts[last] < covered_hi:
                last += 1
            subset = self._records[first:last]
            chunk_bytes = session.fetch_chunks(subset)
            for position, record in enumerate(subset, start=first):
                record_start = self._starts[position]
                payload = chunk_bytes[record.fp]
                for slot, block_index in enumerate(indices):
                    block_lo = block_index * block
                    block_hi = block_lo + len(buffers[slot])
                    cut_lo = max(record_start, block_lo)
                    cut_hi = min(record_start + record.size, block_hi, covered_hi)
                    if cut_lo >= cut_hi:
                        continue
                    buffers[slot][cut_lo - block_lo : cut_hi - block_lo] = payload[
                        cut_lo - record_start : cut_hi - record_start
                    ]
        return [bytes(buffer) for buffer in buffers]

    # --- writes ------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> int:
        """Write-back ``data`` at ``offset``; returns bytes accepted.

        Touched blocks are dirtied in cache (read-modify-write over the
        base content); a write past EOF extends the file, zero-filling
        any hole.  Nothing reaches OSS until :meth:`flush`.
        """
        if offset < 0:
            raise BrowseError(f"invalid write offset: {offset}")
        if not data:
            return 0
        block = self.block_bytes
        new_size = max(self.size, offset + len(data))
        cache = self.session.cache
        index = offset // block
        position = offset
        end = offset + len(data)
        while position < end:
            block_lo = index * block
            needed = min(block, new_size - block_lo)
            current = cache.peek(self._key(index))
            if current is None and block_lo < self.size:
                current = self._load_block(index)
            buffer = bytearray(needed)
            if current is not None:
                buffer[: min(len(current), needed)] = current[:needed]
            lo = max(position, block_lo)
            hi = min(end, block_lo + needed)
            buffer[lo - block_lo : hi - block_lo] = data[lo - offset : hi - offset]
            cache.put(self._key(index), bytes(buffer), dirty=True)
            position = hi
            index += 1
        self.size = new_size
        self.session.counters.add("browse_writes")
        self.session.counters.add("browse_bytes_written", len(data))
        return len(data)

    def truncate(self, new_size: int) -> None:
        """Set the file's logical size (shrink or hole-extend).

        Shrinking drops cached blocks past the new end (their bytes are
        deliberately discarded, dirty or not) and trims the boundary
        block in place so un-flushed writes inside the new size survive.
        Growing just moves EOF — the gap reads as zeros.
        """
        if new_size < 0:
            raise BrowseError(f"invalid truncate size: {new_size}")
        if new_size >= self.size:
            self.size = new_size
            return
        cache = self.session.cache
        block = self.block_bytes
        keep = (new_size + block - 1) // block
        for key in list(cache.resident_keys()):
            if key[0] == self.path and key[1] == self.version and key[2] >= keep:
                cache.drop(key, forget_dirty=True)
        if keep > 0:
            boundary = self._key(keep - 1)
            data = cache.peek(boundary)
            limit = new_size - (keep - 1) * block
            if data is not None and len(data) > limit:
                cache.put(boundary, data[:limit], dirty=cache.is_dirty(boundary))
        self.size = new_size

    def dirty_indices(self) -> list[int]:
        """Indices of blocks carrying un-flushed writes."""
        return sorted(
            key[2]
            for key in self.session.cache.dirty_keys()
            if key[0] == self.path and key[1] == self.version
        )

    @property
    def dirty(self) -> bool:
        """True when the file carries un-flushed writes or a resize."""
        return bool(self.dirty_indices()) or self.size != self.base_size

    def stat(self) -> BrowseStat:
        """Size/version/dirtiness of the open file."""
        return BrowseStat(
            path=self.path,
            version=self.version,
            size=self.size,
            block_bytes=self.block_bytes,
            chunk_records=len(self._records),
            dirty_blocks=len(self.dirty_indices()),
            dirty=self.dirty,
        )

    # --- write-back commit -------------------------------------------------
    def flush(self) -> FlushReport | None:
        """Commit un-flushed writes as a new version (None when clean).

        See the module docstring for the crash-safe state machine.  On
        return the published version is visible, the staging keys are
        gone, and the cached blocks (clean again) are re-keyed to the
        new version so the working set stays warm.
        """
        dirty = self.dirty_indices()
        if not dirty and self.size == self.base_size:
            return None
        session = self.session
        store = session.store
        full = self._materialize()
        committed = store.catalog.versions(self.path)
        expected = (committed[-1] + 1) if committed else 0
        journal = store.storage.journal
        payload = dict(
            path=self.path,
            base_version=self.version,
            version=expected,
            size=self.size,
            sha=hashlib.sha256(full).hexdigest(),
            blocks=dirty,
            block_bytes=self.block_bytes,
        )
        seq = journal.begin("cache_flush", staged=False, **payload)
        staged_keys = self._stage_blocks(seq, dirty)
        journal.update(seq, "cache_flush", staged=True, **payload)
        try:
            backup_report = store.backup(self.path, full)
        except SimulatedCrashError:
            # Node dead: the open intent is the recovery record.
            raise
        except Exception:
            # Still alive (e.g. retries exhausted): nothing committed, so
            # retire the staging and the intent before failing.  The
            # writes stay dirty in cache for a later retry.
            for key in staged_keys:
                store.storage.oss.delete_object(store.bucket, key)
            journal.close(seq)
            raise
        for key in staged_keys:
            store.storage.oss.delete_object(store.bucket, key)
        journal.close(seq)
        return self._finish_flush(dirty, backup_report)

    def _materialize(self) -> bytes:
        """The file's full current content (base restore + dirty overlay)."""
        store = self.session.store
        full = bytearray(self.size)
        if self.base_size > 0:
            base = store.restore(self.path, self.version).data
            cut = min(len(base), self.size)
            full[:cut] = base[:cut]
        cache = self.session.cache
        for index in self.dirty_indices():
            data = cache.peek(self._key(index))
            lo = index * self.block_bytes
            full[lo : lo + len(data)] = data
        return bytes(full)

    def _stage_blocks(self, seq: int, dirty: list[int]) -> list[str]:
        """Upload every dirty block under the intent's staging prefix.

        The endpoint charges each put serially; the measured durations
        feed the background-channel schedule in :meth:`_finish_flush`.
        """
        session = self.session
        oss = session.store.storage.oss
        bucket = session.store.bucket
        keys: list[str] = []
        upload_seconds: list[float] = []
        for index in dirty:
            data = session.cache.peek(self._key(index))
            key = STAGE_KEY.format(seq=seq, index=index)
            before = oss.stats.snapshot()
            oss.put_object(bucket, key, data)
            upload_seconds.append(oss.stats.diff(before).write_seconds)
            keys.append(key)
            session.cache.stats.writeback_bytes += len(data)
        session._pending_upload_seconds = upload_seconds
        return keys

    def _finish_flush(self, dirty: list[int], backup_report) -> FlushReport:
        session = self.session
        upload = simulate_upload_channels(
            session._pending_upload_seconds, session.upload_channels
        )
        session._pending_upload_seconds = []
        session.breakdown.charge("upload", upload.elapsed_seconds)
        base_version = self.version
        new_version = backup_report.version
        cache = session.cache
        staged_bytes = 0
        for index in dirty:
            staged_bytes += len(cache.peek(self._key(index)) or b"")
            cache.mark_clean(self._key(index))
            cache.stats.dirty_writebacks += 1
        # The cached blocks are byte-identical to the new version's
        # content: keep the working set warm under the new key.
        for index in range(self._block_count()):
            cache.rekey(self._key(index), (self.path, new_version, index))
        self.version = new_version
        # The published recipe supersedes the base version's offsets, and
        # G-node maintenance after the commit may have moved containers:
        # reload the recipe and drop the stale metadata memo.
        self._load_recipe()
        session.metas.clear()
        session.files.pop((self.path, base_version), None)
        session.files[(self.path, new_version)] = self
        return FlushReport(
            path=self.path,
            version=new_version,
            base_version=base_version,
            blocks_written=len(dirty),
            staged_bytes=staged_bytes,
            upload=upload,
            backup_report=backup_report,
        )

    def discard(self) -> int:
        """Throw away un-flushed writes; returns blocks discarded."""
        dirty = self.dirty_indices()
        self.session.cache.drop_version(self.path, self.version)
        self.size = self.base_size
        return len(dirty)


class BrowseSession:
    """Random-access browse facade over one :class:`SlimStore`.

    One session owns one block cache (shared across its open files), a
    container-metadata memo shared across ranged plans, and the cache
    counters the ``repro browse stats`` line reports.
    """

    def __init__(self, store: "SlimStore") -> None:
        self.store = store
        config = store.config
        self.block_bytes = config.browse_block_bytes
        self.readahead_blocks = config.browse_readahead_blocks
        self.upload_channels = config.browse_upload_channels
        self.stats = BlockCacheStats()
        self.cache = BlockCache(
            config.browse_cache_memory_bytes,
            config.browse_cache_disk_bytes,
            stats=self.stats,
        )
        self.counters = Counters()
        self.breakdown = TimeBreakdown()
        self.planner = RestorePlanner(store.storage, store.cost_model)
        #: Container metadata memo shared across ranged plans.
        self.metas: dict[int, object] = {}
        self.files: dict[tuple[str, int | None], BrowseFile] = {}
        self._pending_upload_seconds: list[float] = []

    # --- file handles ------------------------------------------------------
    def open(self, path: str, version: int | None = None) -> BrowseFile:
        """Open ``path`` at ``version`` (latest when None)."""
        live = self.store.catalog.versions(path)
        if not live:
            raise VersionNotFoundError(path)
        resolved = live[-1] if version is None else version
        if resolved not in live:
            raise VersionNotFoundError(path, resolved)
        handle = self.files.get((path, resolved))
        if handle is None:
            handle = BrowseFile(self, path, resolved)
            self.files[(path, resolved)] = handle
        return handle

    def read(self, path: str, offset: int, length: int, version: int | None = None) -> bytes:
        """Convenience: open + ranged read."""
        return self.open(path, version).read(offset, length)

    def write(self, path: str, offset: int, data: bytes) -> int:
        """Convenience: open latest + write-back write."""
        return self.open(path).write(offset, data)

    def flush(self, path: str | None = None) -> list[FlushReport]:
        """Commit dirty files (all open files when ``path`` is None)."""
        reports = []
        for handle in list(self.files.values()):
            if path is not None and handle.path != path:
                continue
            report = handle.flush()
            if report is not None:
                reports.append(report)
        return reports

    # --- shared chunk fetch ------------------------------------------------
    def fetch_chunks(self, records: list[ChunkRecord]) -> dict[bytes, bytes]:
        """Fetch the records' payloads (ranged, coalesced, redirected).

        Plans the subset through :class:`RestorePlanner` (sharing the
        session metadata memo), issues the coalesced ranged GETs, and
        returns fingerprint → payload for every requested record.
        """
        storage = self.store.storage
        config = self.store.config
        plan = self.planner.plan(
            records,
            ranged=True,
            gap_bytes=config.ranged_read_gap_bytes,
            breakdown=self.breakdown,
            counters=self.counters,
            metas=self.metas,
        )
        chunk_bytes: dict[bytes, bytes] = {}
        for planned in plan.reads:
            cid = planned.container_id
            spans = [(span.offset, span.length) for span in planned.spans]
            with storage.meter_reads() as meter:
                payloads = [
                    data for _, data in storage.containers.read_spans(cid, spans)
                ]
            self.breakdown.charge("download", meter.seconds)
            self.counters.add("containers_read")
            self.counters.add("container_bytes_read", planned.planned_bytes)
            self.counters.add("ranged_reads", len(spans))
            self.counters.add("ranged_bytes_saved", planned.bytes_saved)
            starts = [span.offset for span in planned.spans]
            for entry in plan.metas[cid].live_lookup_entries():
                position = bisect_right(starts, entry.offset) - 1
                if position < 0:
                    continue
                span = planned.spans[position]
                if entry.offset + entry.size > span.end:
                    continue
                base = entry.offset - span.offset
                chunk_bytes[entry.fp] = payloads[position][base : base + entry.size]
        verify = config.verify_restore
        fingerprinter = getattr(storage, "fingerprinter", None)
        out: dict[bytes, bytes] = {}
        for record in records:
            data = chunk_bytes.get(record.fp)
            if data is None:
                raise BrowseError(
                    f"planned spans did not cover chunk {record.fp.hex()[:12]}"
                )
            if verify and fingerprinter is not None and fingerprinter(data) != record.fp:
                raise IntegrityError(
                    f"browse read of chunk {record.fp.hex()[:12]} failed verification"
                )
            out[record.fp] = data
        return out

    # --- observability -----------------------------------------------------
    def stats_line(self) -> str:
        """One-line cache summary (the ``repro browse stats`` line)."""
        stats = self.stats
        return (
            f"blockcache: hits={stats.hits} (mem {stats.memory_hits} / "
            f"disk {stats.disk_hits}) misses={stats.misses} "
            f"hit_ratio={stats.hit_ratio:.1%} readahead={stats.readahead_blocks} "
            f"demotions={stats.demotions} evictions={stats.evictions} "
            f"writebacks={stats.dirty_writebacks} "
            f"writeback_bytes={stats.writeback_bytes}"
        )
