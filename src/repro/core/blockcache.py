"""The L-node write-back block cache behind browse sessions.

Browsing a backup — open one file at one version, read a byte range,
maybe edit and re-save — has none of the full-vision structure the
restore cache exploits, so this cache is the classic s3ql arrangement
instead: fixed-size blocks keyed by ``(path, version, block index)``,
a bounded **memory tier** over a larger **disk tier** (the L-node's
local scratch), LRU in both, and **write-back** semantics — a write
dirties the block in cache and is acknowledged immediately; the bytes
reach OSS later, when a flush stages them under a journaled
``cache_flush`` intent (see :mod:`repro.core.browse`).

Two invariants make write-back safe:

* **Dirty blocks are pinned.**  Eviction under pressure may demote a
  dirty block from memory to disk, but never drops it; when every
  resident block is dirty and both tiers are full the cache refuses the
  insert with :class:`~repro.errors.CacheFullError` instead of losing an
  acknowledged write.
* **Clean blocks evict in LRU order.**  Victims are taken from the cold
  end of each tier, skipping pinned dirty blocks, so the hot browse set
  stays resident.

All counters land in :class:`~repro.sim.metrics.BlockCacheStats` so the
bench can report hit ratios next to latencies.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import CacheFullError
from repro.sim.metrics import BlockCacheStats

#: Cache key: (logical file path, catalog version, block index).
BlockKey = tuple[str, int, int]


class BlockCache:
    """Two-tier LRU block cache with dirty-block pinning."""

    def __init__(
        self,
        memory_bytes: int,
        disk_bytes: int,
        stats: BlockCacheStats | None = None,
    ) -> None:
        if memory_bytes < 1:
            raise ValueError(f"memory tier needs at least one byte: {memory_bytes}")
        if disk_bytes < 0:
            raise ValueError(f"disk tier cannot be negative: {disk_bytes}")
        self.memory_capacity = memory_bytes
        self.disk_capacity = disk_bytes
        self.stats = stats or BlockCacheStats()
        # OrderedDicts keep LRU order: oldest (coldest) entry first.
        self._memory: OrderedDict[BlockKey, bytes] = OrderedDict()
        self._disk: OrderedDict[BlockKey, bytes] = OrderedDict()
        self._dirty: set[BlockKey] = set()
        self._memory_used = 0
        self._disk_used = 0

    # --- introspection -----------------------------------------------------
    @property
    def memory_used(self) -> int:
        """Bytes resident in the memory tier."""
        return self._memory_used

    @property
    def disk_used(self) -> int:
        """Bytes resident in the disk tier."""
        return self._disk_used

    def resident_keys(self) -> set[BlockKey]:
        """Keys currently held in either tier."""
        return set(self._memory) | set(self._disk)

    def contains(self, key: BlockKey) -> bool:
        """Residency probe; touches no LRU state and no counters."""
        return key in self._memory or key in self._disk

    def is_dirty(self, key: BlockKey) -> bool:
        """True if the block holds un-uploaded writes."""
        return key in self._dirty

    def dirty_keys(self) -> list[BlockKey]:
        """Every dirty key, sorted for deterministic flush order."""
        return sorted(self._dirty)

    @property
    def dirty_bytes(self) -> int:
        """Total size of un-uploaded dirty blocks."""
        return sum(len(self._block_data(key)) for key in self._dirty)

    def _block_data(self, key: BlockKey) -> bytes:
        data = self._memory.get(key)
        if data is None:
            data = self._disk[key]
        return data

    # --- lookups -----------------------------------------------------------
    def get(self, key: BlockKey) -> bytes | None:
        """The block's bytes, or None on a miss (counted).

        A disk-tier hit promotes the block back to memory when room can
        be made without dropping dirty data; otherwise it is served from
        disk in place — a read never fails on cache pressure.
        """
        data = self._memory.get(key)
        if data is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return data
        data = self._disk.get(key)
        if data is not None:
            self.stats.disk_hits += 1
            # Making memory room can demote blocks *into* the disk tier,
            # whose own eviction may claim this very (clean) block — so
            # re-check residency after the dust settles.
            if self._make_memory_room(len(data)):
                if key in self._disk:
                    del self._disk[key]
                    self._disk_used -= len(data)
                self._memory[key] = data
                self._memory_used += len(data)
            elif key in self._disk:
                self._disk.move_to_end(key)
            return data
        self.stats.misses += 1
        return None

    def peek(self, key: BlockKey) -> bytes | None:
        """The block's bytes without touching LRU order or counters."""
        if key in self._memory:
            return self._memory[key]
        return self._disk.get(key)

    # --- inserts -----------------------------------------------------------
    def put(
        self, key: BlockKey, data: bytes, dirty: bool = False, readahead: bool = False
    ) -> None:
        """Insert or replace a block (most-recently-used position).

        ``dirty`` pins the block until :meth:`mark_clean`; ``readahead``
        only affects accounting.  Raises :class:`CacheFullError` when
        room cannot be made without dropping an un-uploaded dirty block.
        """
        self.drop(key, forget_dirty=True)
        if not self._make_memory_room(len(data)):
            raise CacheFullError(
                f"block cache full of dirty blocks; flush before caching {key}"
            )
        self._memory[key] = data
        self._memory_used += len(data)
        if dirty:
            self._dirty.add(key)
        if readahead:
            self.stats.readahead_blocks += 1

    def mark_clean(self, key: BlockKey) -> None:
        """Unpin a dirty block once its write-back upload committed."""
        self._dirty.discard(key)

    def rekey(self, old: BlockKey, new: BlockKey) -> None:
        """Move a block to a new key (same tier, hot end of its LRU).

        A committed write-back publishes the dirtied file as a *new*
        version; the cached blocks are byte-identical to that version's
        content, so they stay warm under the new key instead of being
        refetched.
        """
        if old == new or not self.contains(old):
            return
        self.drop(new, forget_dirty=True)
        tier = self._memory if old in self._memory else self._disk
        tier[new] = tier.pop(old)
        if old in self._dirty:
            self._dirty.discard(old)
            self._dirty.add(new)

    def drop(self, key: BlockKey, forget_dirty: bool = False) -> None:
        """Remove a block outright (no eviction accounting).

        Refuses to drop a dirty block unless ``forget_dirty`` — only the
        flush/discard paths, which have already handled the bytes, may
        forget un-uploaded data.
        """
        if key in self._dirty and not forget_dirty:
            raise CacheFullError(f"refusing to drop un-uploaded dirty block {key}")
        data = self._memory.pop(key, None)
        if data is not None:
            self._memory_used -= len(data)
        data = self._disk.pop(key, None)
        if data is not None:
            self._disk_used -= len(data)
        self._dirty.discard(key)

    def drop_version(self, path: str, version: int) -> None:
        """Forget every block of one (path, version); dirty included.

        Used when a browse session discards its uncommitted edits.
        """
        for key in list(self._memory) + list(self._disk):
            if key[0] == path and key[1] == version:
                self.drop(key, forget_dirty=True)

    # --- eviction ----------------------------------------------------------
    def _make_memory_room(self, needed: int) -> bool:
        """Free memory-tier space; False if dirty pinning forbids it."""
        if needed > self.memory_capacity:
            return False
        while self._memory_used + needed > self.memory_capacity:
            if not self._evict_one_from_memory():
                return False
        return True

    def _evict_one_from_memory(self) -> bool:
        """Demote or drop one memory block, coldest first, dirty pinned."""
        for key in list(self._memory):
            data = self._memory[key]
            if key in self._dirty:
                # Dirty: may move to disk, never vanish.
                if not self._make_disk_room(len(data)):
                    continue
                self._demote(key, data)
                return True
            if self._make_disk_room(len(data)):
                self._demote(key, data)
            else:
                del self._memory[key]
                self._memory_used -= len(data)
                self.stats.evictions += 1
            return True
        return False

    def _demote(self, key: BlockKey, data: bytes) -> None:
        del self._memory[key]
        self._memory_used -= len(data)
        self._disk[key] = data
        self._disk_used += len(data)
        self.stats.demotions += 1

    def _make_disk_room(self, needed: int) -> bool:
        """Free disk-tier space by evicting cold *clean* blocks."""
        if needed > self.disk_capacity:
            return False
        while self._disk_used + needed > self.disk_capacity:
            victim = next((key for key in self._disk if key not in self._dirty), None)
            if victim is None:
                return False
            self._disk_used -= len(self._disk.pop(victim))
            self.stats.evictions += 1
        return True
