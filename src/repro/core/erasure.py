"""Pure-python Reed–Solomon erasure coding over GF(2^8).

The durability tier stripes cold container payloads across simulated
fault domains: ``k`` data shards (the container payloads themselves,
zero-padded to a common length) plus ``m`` parity shards, any ``k`` of
the ``k+m`` sufficing to rebuild every data shard.

The code is systematic with a Cauchy generator: parity row ``i`` uses
coefficients ``1 / (x_i ^ y_j)`` with ``x_i = k + i`` and ``y_j = j``,
whose square submatrices are all invertible, so the code is MDS — it
tolerates the loss of *any* ``m`` shards.

Byte-level arithmetic stays fast without numpy by expressing each
coefficient multiplication as a 256-entry ``bytes.translate`` table and
shard accumulation as one big-int XOR.
"""

from __future__ import annotations

#: The AES field polynomial x^8 + x^4 + x^3 + x + 1.
_PRIMITIVE_POLY = 0x11D

_EXP = [0] * 512
_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for power in range(255):
        _EXP[power] = value
        _LOG[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLY
    for power in range(255, 512):
        _EXP[power] = _EXP[power - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse; ``a`` must be non-zero."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^8)")
    return _EXP[255 - _LOG[a]]


#: coefficient -> 256-byte translation table, built lazily (a stripe only
#: ever touches a handful of the 255 possible coefficients).
_MUL_TABLES: dict[int, bytes] = {}


def _mul_table(coeff: int) -> bytes:
    table = _MUL_TABLES.get(coeff)
    if table is None:
        table = bytes(gf_mul(coeff, value) for value in range(256))
        _MUL_TABLES[coeff] = table
    return table


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def _scale(coeff: int, shard: bytes) -> bytes:
    if coeff == 0:
        return bytes(len(shard))
    if coeff == 1:
        return shard
    return shard.translate(_mul_table(coeff))


class ReedSolomon:
    """A systematic ``(k + m, k)`` Reed–Solomon code.

    ``encode`` turns ``k`` equal-length data shards into ``m`` parity
    shards; ``decode`` rebuilds all ``k`` data shards from any ``k``
    surviving shards (data or parity), indexed ``0..k-1`` for data and
    ``k..k+m-1`` for parity.
    """

    def __init__(self, data_shards: int, parity_shards: int) -> None:
        if data_shards < 1:
            raise ValueError("data_shards must be >= 1")
        if parity_shards < 1:
            raise ValueError("parity_shards must be >= 1")
        if data_shards + parity_shards > 255:
            raise ValueError("k + m must be <= 255 in GF(2^8)")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        # Cauchy rows: x_i = k + i for parity row i, y_j = j for data
        # column j.  x and y sets are disjoint so every entry is defined.
        self._parity_rows = [
            [gf_inv((data_shards + i) ^ j) for j in range(data_shards)]
            for i in range(parity_shards)
        ]

    @property
    def total_shards(self) -> int:
        return self.data_shards + self.parity_shards

    def encode(self, shards: list[bytes]) -> list[bytes]:
        """Parity shards for ``k`` equal-length data shards."""
        if len(shards) != self.data_shards:
            raise ValueError(
                f"expected {self.data_shards} data shards, got {len(shards)}"
            )
        length = len(shards[0])
        if any(len(shard) != length for shard in shards):
            raise ValueError("data shards must all have the same length")
        parity = []
        for row in self._parity_rows:
            acc = bytes(length)
            for coeff, shard in zip(row, shards):
                acc = _xor_bytes(acc, _scale(coeff, shard))
            parity.append(acc)
        return parity

    def _row(self, shard_index: int) -> list[int]:
        """Generator-matrix row producing shard ``shard_index``."""
        if shard_index < self.data_shards:
            return [
                1 if j == shard_index else 0 for j in range(self.data_shards)
            ]
        return list(self._parity_rows[shard_index - self.data_shards])

    def decode(self, available: dict[int, bytes], shard_len: int) -> list[bytes]:
        """Rebuild all ``k`` data shards from any ``k`` available shards.

        ``available`` maps shard index (``0..k+m-1``) to its bytes.  Extra
        entries beyond ``k`` are ignored (the first ``k`` in index order
        are used).
        """
        if any(
            index < 0 or index >= self.total_shards for index in available
        ):
            raise ValueError("shard index out of range")
        if any(len(shard) != shard_len for shard in available.values()):
            raise ValueError("available shards must all be shard_len long")
        chosen = sorted(available)[: self.data_shards]
        if len(chosen) < self.data_shards:
            raise ValueError(
                f"need {self.data_shards} shards to decode, "
                f"have {len(available)}"
            )
        # Fast path: all data shards present.
        if chosen == list(range(self.data_shards)):
            return [available[index] for index in chosen]
        matrix = [self._row(index) for index in chosen]
        inverse = _invert(matrix)
        data = []
        for row in inverse:
            acc = bytes(shard_len)
            for coeff, index in zip(row, chosen):
                acc = _xor_bytes(acc, _scale(coeff, available[index]))
            data.append(acc)
        return data


def _invert(matrix: list[list[int]]) -> list[list[int]]:
    """Invert a square GF(2^8) matrix via Gauss–Jordan elimination."""
    size = len(matrix)
    work = [list(row) + [1 if j == i else 0 for j in range(size)]
            for i, row in enumerate(matrix)]
    for col in range(size):
        pivot = next(
            (row for row in range(col, size) if work[row][col] != 0), None
        )
        if pivot is None:
            raise ValueError("matrix is singular")
        work[col], work[pivot] = work[pivot], work[col]
        inv = gf_inv(work[col][col])
        work[col] = [gf_mul(inv, value) for value in work[col]]
        for row in range(size):
            if row != col and work[row][col]:
                factor = work[row][col]
                work[row] = [
                    value ^ gf_mul(factor, work[col][j])
                    for j, value in enumerate(work[row])
                ]
    return [row[size:] for row in work]
