"""The stateless online processing node (Section III-B).

"L-node does not save any state, all the information required in backup
and restore is loaded during the job execution."  Accordingly, an
:class:`LNode` constructs a fresh engine per job — everything durable lives
in the shared storage layer, which is what lets the cluster scale L-nodes
elastically (Fig 10).

Statelessness is also the crash-recovery contract: an L-node that dies
mid-job leaves nothing behind except its uncommitted OSS writes, which
the facade's intent journal brackets and attach-time recovery discards
(see ``docs/CRASH_RECOVERY.md``).  A replacement node needs no handoff —
it attaches to the same storage layer and carries on, exactly what the
crash matrix (``tests/integration/test_crash_matrix.py``) replays at
every write index.
"""

from __future__ import annotations

from repro.core.config import SlimStoreConfig
from repro.core.dedup import BackupEngine, BackupResult
from repro.core.restore import RestoreEngine, RestoreResult
from repro.core.storage import StorageLayer
from repro.sim.cost_model import CostModel


class LNode:
    """One elastic compute node serving online backup and restore jobs."""

    def __init__(
        self,
        node_id: int,
        config: SlimStoreConfig,
        storage: StorageLayer,
        cost_model: CostModel | None = None,
        executor=None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.storage = storage
        self.cost_model = cost_model or CostModel()
        #: Shared wall-clock executor (None below ``workers=1``); engines
        #: are per-job, but worker pools are warm, so they live here.
        self.executor = executor
        self.jobs_executed = 0

    def backup(
        self,
        path: str,
        data: bytes,
        rewrite_containers: set[int] | None = None,
    ) -> BackupResult:
        """Run one backup job (a fresh engine per job: no node state)."""
        engine = BackupEngine(
            self.config, self.storage, self.cost_model, executor=self.executor
        )
        self.jobs_executed += 1
        return engine.backup(path, data, rewrite_containers=rewrite_containers)

    def restore(
        self,
        path: str,
        version: int,
        prefetch_threads: int | None = None,
        verify: bool | None = None,
        ranged: bool | None = None,
    ) -> RestoreResult:
        """Run one restore job."""
        engine = RestoreEngine(self.config, self.storage, self.cost_model)
        self.jobs_executed += 1
        return engine.restore(path, version, prefetch_threads, verify, ranged)
