"""Heat-aware durability tier: replication and erasure over containers.

Deduplication maximizes the blast radius of a lost object: one corrupt
container damages every version sharing its chunks.  Following FASTEN's
insight — balance replication *against* deduplication, giving the most
shared chunks the most copies — a :class:`ReplicationPolicy` assigns each
container a durability class from its live reference count:

* **replicated** (hot, ``refs >= hot_refs``) — ``replica_count`` full
  copies (primary included), each on a distinct simulated fault domain;
* **erasure** (warm, ``refs >= cold_refs``) — the payload joins a
  Reed–Solomon stripe: ``k`` container payloads plus ``m`` parity shards
  spread so no fault domain holds more than ``m`` shards of one stripe,
  making any single-domain outage decodable;
* **single** (singletons) — primary copy only, as before.

The :class:`DurabilityManager` owns the extra objects under the
``durability/`` keyspace: per-container records, stripe manifests,
replica copies and parity shards.  Every tier change is journaled as a
``durability`` intent *before* its side-effect writes, with the record
(or stripe manifest) put as the single atomic commit — so the crash
matrix's visible-or-nothing contract extends over replica and parity
writes, and recovery can always roll an interrupted tier change forward
or sweep its planned keys without leaving orphaned replica bytes.

The read path falls over in a fixed order — primary → replica → erasure
decode → give up (quarantine stays the caller's last resort) — with every
degraded read issued through the charged OSS API so the virtual cost
model keeps paying for failover traffic.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.container import ContainerStore
from repro.core.erasure import ReedSolomon
from repro.errors import (
    ContainerError,
    ObjectNotFoundError,
    RetryExhaustedError,
    TransientOSSError,
)
from repro.fingerprint.hashing import fingerprint

if TYPE_CHECKING:
    from repro.core.journal import IntentJournal

#: Durability classes, coldest to hottest.
CLASS_SINGLE = "single"
CLASS_ERASURE = "erasure"
CLASS_REPLICATED = "replicated"
#: A container mid two-phase deletion: no live class, retired copies only.
CLASS_DELETED = "deleted"

#: Read failures the failover path absorbs (a crash is terminal and is
#: deliberately absent: it must propagate).
_READ_ERRORS = (ObjectNotFoundError, TransientOSSError, RetryExhaustedError)


def _sha(payload: bytes) -> str:
    return hashlib.sha1(payload).hexdigest()


def _pad(payload: bytes, length: int) -> bytes:
    return payload if len(payload) == length else payload + bytes(length - len(payload))


@dataclass(frozen=True)
class ReplicationPolicy:
    """Heat thresholds and layout parameters of the durability tier.

    ``replica_count`` counts the primary, so hot containers store
    ``replica_count - 1`` extra copies.  Erasure stripes are
    ``(data_shards + parity_shards, data_shards)`` Reed–Solomon codes;
    the constructor proves every stripe survives any single fault-domain
    outage (no domain may ever hold more than ``parity_shards`` shards
    of one stripe, which requires ``k + m <= domains * m``).
    """

    replica_count: int = 3
    hot_refs: int = 3
    cold_refs: int = 2
    data_shards: int = 4
    parity_shards: int = 2
    fault_domains: int = 3

    def __post_init__(self) -> None:
        if self.fault_domains < 2:
            raise ValueError("fault_domains must be >= 2")
        if not 1 <= self.cold_refs <= self.hot_refs:
            raise ValueError("need 1 <= cold_refs <= hot_refs")
        if not 2 <= self.replica_count <= self.fault_domains:
            raise ValueError("need 2 <= replica_count <= fault_domains")
        if self.data_shards < 1 or self.parity_shards < 1:
            raise ValueError("data_shards and parity_shards must be >= 1")
        if self.data_shards + self.parity_shards > 255:
            raise ValueError("k + m must be <= 255 in GF(2^8)")
        if self.data_shards + self.parity_shards > self.fault_domains * self.parity_shards:
            raise ValueError(
                "k + m must be <= fault_domains * m, or a stripe could "
                "lose more than m shards to one domain outage"
            )

    def classify(self, refs: int) -> str:
        """The durability class of a container with ``refs`` references."""
        if refs >= self.hot_refs:
            return CLASS_REPLICATED
        if refs >= self.cold_refs:
            return CLASS_ERASURE
        return CLASS_SINGLE

    def primary_domain(self, container_id: int) -> int:
        """The fault domain a container's primary ``.data`` lives in."""
        return container_id % self.fault_domains

    def to_dict(self) -> dict[str, int]:
        """JSON-friendly form for ``repro.json`` persistence."""
        return {
            "replica_count": self.replica_count,
            "hot_refs": self.hot_refs,
            "cold_refs": self.cold_refs,
            "data_shards": self.data_shards,
            "parity_shards": self.parity_shards,
            "fault_domains": self.fault_domains,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ReplicationPolicy":
        return cls(**{key: int(value) for key, value in raw.items()})


@dataclass
class RetierReport:
    """Outcome of one re-tiering pass over the live containers."""

    examined: int = 0
    #: Containers whose class changed, with ``(cid, old or None, new)``.
    transitions: list[tuple[int, str | None, str]] = field(default_factory=list)
    stripes_built: int = 0
    stripes_retired: int = 0
    copies_written: int = 0
    parity_written: int = 0
    bytes_written: int = 0
    retired_keys: int = 0
    #: Containers whose primary could not be read for tiering (left as-is).
    unreadable: list[int] = field(default_factory=list)
    classes: dict[str, int] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return bool(self.transitions or self.stripes_built or self.stripes_retired)


@dataclass
class DurabilityAudit:
    """fsck findings for the durability tier."""

    records: int = 0
    #: Live containers with no durability record yet (awaiting retier).
    untiered: list[int] = field(default_factory=list)
    #: ``(cid, recorded class, policy class)`` where the tier drifted.
    class_mismatches: list[tuple[int, str, str]] = field(default_factory=list)
    #: Copy/parity objects whose payload hash disagrees with the record.
    divergent_copies: list[tuple[int | None, str]] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """No copy disagrees on bytes (class drift is repairable, not rot)."""
        return not self.divergent_copies


class DurabilityManager:
    """Replica/parity bookkeeping and failover reads for one repository."""

    RECORD_KEY = "durability/records/{cid:012d}.json"
    STRIPE_KEY = "durability/stripes/{sid:08d}.json"
    COPY_KEY = "durability/d{dom}/{cid:012d}.copy{i}"
    PARITY_KEY = "durability/d{dom}/stripe{sid:08d}.p{i}"
    PREFIX = "durability/"

    def __init__(
        self,
        containers: ContainerStore,
        policy: ReplicationPolicy,
        journal: "IntentJournal | None" = None,
        fingerprinter=None,
    ) -> None:
        self._containers = containers
        self._oss = containers.oss
        self._bucket = containers._bucket
        self.policy = policy
        self.journal = journal
        self._fingerprint = fingerprinter or fingerprint
        self._records: dict[int, dict[str, Any]] = {}
        self._stripes: dict[int, dict[str, Any]] = {}
        self._next_sid = 0
        #: Failover counters (cumulative, mirrored into reports by callers).
        self.replica_failovers = 0
        self.erasure_decodes = 0
        self.degraded_chunk_reads = 0

    # ------------------------------------------------------------------
    # JSON object helpers
    # ------------------------------------------------------------------
    def _get_json(self, key: str) -> dict[str, Any]:
        import json

        return json.loads(self._oss.get_object(self._bucket, key).decode())

    def _put_json(self, key: str, obj: dict[str, Any]) -> None:
        import json

        self._oss.put_object(self._bucket, key, json.dumps(obj).encode())

    def _save_record(self, record: dict[str, Any]) -> None:
        """Persist a container record — the atomic commit of a tier change."""
        self._put_json(self.RECORD_KEY.format(cid=record["cid"]), record)
        self._records[record["cid"]] = record

    def _drop_record(self, cid: int) -> None:
        self._oss.delete_object(self._bucket, self.RECORD_KEY.format(cid=cid))
        self._records.pop(cid, None)

    def _save_stripe(self, stripe: dict[str, Any]) -> None:
        self._put_json(self.STRIPE_KEY.format(sid=stripe["sid"]), stripe)
        self._stripes[stripe["sid"]] = stripe

    def _drop_stripe(self, sid: int) -> None:
        self._oss.delete_object(self._bucket, self.STRIPE_KEY.format(sid=sid))
        self._stripes.pop(sid, None)

    # ------------------------------------------------------------------
    # Attach / recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Reload records and stripe manifests from OSS; returns the count.

        Key enumeration is free; each surviving manifest costs one
        charged read (the honest price of attaching).
        """
        self._records.clear()
        self._stripes.clear()
        highest_sid = -1
        for key in sorted(self._oss.peek_keys(self._bucket, "durability/records/")):
            try:
                record = self._get_json(key)
                self._records[int(record["cid"])] = record
            except (ValueError, KeyError, TypeError):
                continue  # malformed manifest: orphan sweep collects it
        for key in sorted(self._oss.peek_keys(self._bucket, "durability/stripes/")):
            try:
                stripe = self._get_json(key)
                self._stripes[int(stripe["sid"])] = stripe
                highest_sid = max(highest_sid, int(stripe["sid"]))
            except (ValueError, KeyError, TypeError):
                continue
        self._next_sid = highest_sid + 1
        return len(self._records)

    def resolve_intent(self, payload: dict[str, Any]) -> str:
        """Roll a ``durability`` intent forward or sweep its side effects.

        The commit point of a tier change is its record (or stripe
        manifest) put.  If the primary payload still matches the intent's
        SHA the change is deterministically re-applied (idempotent: the
        planned keys are fixed in the intent); otherwise the planned keys
        that no committed record references are deleted, restoring the
        exact pre-intent state.
        """
        op = payload.get("op")
        if op == "stripe":
            return self._resolve_stripe_intent(payload)
        if op == "tier":
            return self._resolve_tier_intent(payload)
        self._sweep_planned(payload.get("planned", []))
        return "discarded"

    def _resolve_tier_intent(self, payload: dict[str, Any]) -> str:
        cid = int(payload["cid"])
        target = payload["target"]
        sha = payload["sha"]
        planned = list(payload.get("planned", []))
        if not self._containers.exists(cid):
            self._sweep_planned(planned)
            return "discarded"
        primary = self._stable_read(ContainerStore.DATA_KEY.format(cid=cid))
        if primary is None or _sha(primary) != sha:
            # The payload the intent tiered never settled (or changed
            # under a rolled-back rewrite): sweep anything unreferenced.
            self._sweep_planned(planned)
            return "discarded"
        for key in planned:
            self._oss.put_object(self._bucket, key, primary)
        copies = [
            {"key": key, "domain": self._key_domain(key)} for key in planned
        ]
        self._commit_record(cid, target, _sha(primary), len(primary), copies, None)
        return "rolled_forward"

    def _resolve_stripe_intent(self, payload: dict[str, Any]) -> str:
        sid = int(payload["sid"])
        stripe = self._stripes.get(sid)
        if stripe is None:
            # Crash before the manifest commit: nothing references the
            # parity writes, so they are pure debris.
            self._sweep_planned(payload.get("planned", []))
            return "discarded"
        for member in stripe["members"]:
            cid = int(member["cid"])
            if not member.get("live", True) or not self._containers.exists(cid):
                continue
            record = self._records.get(cid)
            if record is not None and record.get("stripe") == sid:
                continue
            self._commit_record(
                cid, CLASS_ERASURE, member["sha"], member["length"], [], sid
            )
        return "rolled_forward"

    def _key_domain(self, key: str) -> int:
        """The fault domain a ``durability/d<N>/...`` key is placed in."""
        head, _, _ = key[len(self.PREFIX) + 1 :].partition("/")
        return int(head)

    def _sweep_planned(self, planned: list[str]) -> int:
        referenced = self._referenced_keys()
        swept = 0
        for key in planned:
            if key in referenced:
                continue
            if self._oss.delete_object(self._bucket, key):
                swept += 1
        return swept

    def _referenced_keys(self) -> set[str]:
        """Every durability key a committed record or stripe points at."""
        keys: set[str] = set()
        for cid, record in self._records.items():
            keys.add(self.RECORD_KEY.format(cid=cid))
            for copy in record.get("copies", []):
                keys.add(copy["key"])
            for retired in record.get("retired", []):
                keys.add(retired["key"])
        for sid, stripe in self._stripes.items():
            keys.add(self.STRIPE_KEY.format(sid=sid))
            for parity in stripe.get("parity", []):
                keys.add(parity["key"])
            for retired in stripe.get("retired", []):
                keys.add(retired["key"])
        return keys

    def collect_orphans(self) -> list[str]:
        """Delete durability objects nothing references; returns their keys.

        Run by attach-time recovery after intents resolve: together with
        the journaled tier changes this is the "no orphaned replica
        bytes" guarantee the crash matrix asserts.
        """
        referenced = self._referenced_keys()
        orphans = [
            key
            for key in self._oss.peek_keys(self._bucket, self.PREFIX)
            if key not in referenced
        ]
        for key in orphans:
            self._oss.delete_object(self._bucket, key)
        return sorted(orphans)

    # ------------------------------------------------------------------
    # Tiering
    # ------------------------------------------------------------------
    def classes(self) -> dict[int, str]:
        """Current durability class per recorded container."""
        return {
            cid: record["class"]
            for cid, record in self._records.items()
            if record["class"] != CLASS_DELETED
        }

    def record_for(self, cid: int) -> dict[str, Any] | None:
        return self._records.get(cid)

    def retier(
        self,
        refcounts: dict[int, int],
        container_ids: list[int] | None = None,
    ) -> RetierReport:
        """Promote/demote containers whose heat drifted from their class.

        Runs as part of G-node maintenance.  Each tier change is its own
        journaled, atomically-committed step, so a crash mid-pass leaves
        every container either fully re-tiered or untouched; the next
        pass converges the rest.
        """
        report = RetierReport()
        ids = sorted(
            container_ids
            if container_ids is not None
            else self._containers.container_ids()
        )
        report.examined = len(ids)
        targets = {cid: self.policy.classify(refcounts.get(cid, 0)) for cid in ids}
        erasure_targets = {cid for cid, cls in targets.items() if cls == CLASS_ERASURE}

        # Stripes stay canonical: every member must still be a live
        # erasure-class target recorded against this stripe, else the
        # stripe is rebuilt from its surviving erasure members.
        settled: set[int] = set()
        stale_stripes: list[int] = []
        for sid, stripe in sorted(self._stripes.items()):
            members = [m for m in stripe["members"] if m.get("live", True)]
            cids = [int(m["cid"]) for m in members]
            if members and all(
                cid in erasure_targets
                and self._records.get(cid) is not None
                and self._records[cid].get("stripe") == sid
                for cid in cids
            ):
                settled.update(cids)
            else:
                stale_stripes.append(sid)

        for cid in ids:
            target = targets[cid]
            if target == CLASS_ERASURE:
                continue  # striped below
            record = self._records.get(cid)
            if record is not None and record["class"] == target:
                continue
            self._apply_simple(cid, target, report)

        pending = sorted(erasure_targets - settled)
        if pending:
            self._apply_stripes(pending, report)
        for sid in stale_stripes:
            self._retire_stripe(sid, report)

        for record in self._records.values():
            if record["class"] != CLASS_DELETED:
                report.classes[record["class"]] = (
                    report.classes.get(record["class"], 0) + 1
                )
        return report

    def _apply_simple(self, cid: int, target: str, report: RetierReport) -> None:
        """Tier one container to ``single`` or ``replicated`` (journaled)."""
        record = self._records.get(cid)
        payload = self._stable_read(
            ContainerStore.DATA_KEY.format(cid=cid),
            expect_sha=record["sha"] if record else None,
        )
        if payload is None:
            report.unreadable.append(cid)
            return
        copies: list[dict[str, Any]] = []
        if target == CLASS_REPLICATED:
            primary_dom = self.policy.primary_domain(cid)
            domains = [
                dom
                for dom in range(self.policy.fault_domains)
                if dom != primary_dom
            ][: self.policy.replica_count - 1]
            copies = [
                {"key": self.COPY_KEY.format(dom=dom, cid=cid, i=i), "domain": dom}
                for i, dom in enumerate(domains)
            ]
        planned = [copy["key"] for copy in copies]
        seq = None
        if self.journal is not None:
            seq = self.journal.begin(
                "durability",
                op="tier",
                cid=cid,
                target=target,
                sha=_sha(payload),
                planned=planned,
            )
        for copy in copies:
            self._oss.put_object(self._bucket, copy["key"], payload)
            report.copies_written += 1
            report.bytes_written += len(payload)
        old_class = record["class"] if record else None
        self._commit_record(cid, target, _sha(payload), len(payload), copies, None)
        if seq is not None:
            self.journal.close(seq)
        report.transitions.append((cid, old_class, target))

    def _commit_record(
        self,
        cid: int,
        target: str,
        sha: str,
        length: int,
        copies: list[dict[str, Any]],
        stripe_sid: int | None,
    ) -> None:
        """Atomically publish a container's new class, retiring old copies."""
        old = self._records.get(cid)
        epoch = self._containers.current_epoch
        retired = list(old.get("retired", [])) if old else []
        keep = {copy["key"] for copy in copies}
        if old is not None:
            for copy in old.get("copies", []):
                if copy["key"] not in keep and not any(
                    r["key"] == copy["key"] for r in retired
                ):
                    retired.append({"key": copy["key"], "epoch": epoch})
        self._save_record(
            {
                "cid": cid,
                "class": target,
                "sha": sha,
                "length": length,
                "copies": copies,
                "stripe": stripe_sid,
                "retired": retired,
            }
        )

    # --- stripes -------------------------------------------------------
    def _apply_stripes(self, cids: list[int], report: RetierReport) -> None:
        items: list[tuple[int, bytes]] = []
        for cid in cids:
            record = self._records.get(cid)
            payload = self._stable_read(
                ContainerStore.DATA_KEY.format(cid=cid),
                expect_sha=record["sha"] if record else None,
            )
            if payload is None:
                report.unreadable.append(cid)
                continue
            items.append((cid, payload))
        for group in self._group_for_stripes(items):
            self._write_stripe(group, report)

    def _group_for_stripes(
        self, items: list[tuple[int, bytes]]
    ) -> list[list[tuple[int, bytes]]]:
        """Pack members so no fault domain holds more than ``m`` shards.

        Greedy: a member joins the current stripe unless it would exceed
        ``k`` members, put more than ``m`` member shards in its primary's
        domain, or squeeze out the ``m`` parity slots the total capacity
        ``domains * m`` must still hold.
        """
        policy = self.policy
        domains, k, m = policy.fault_domains, policy.data_shards, policy.parity_shards
        groups: list[list[tuple[int, bytes]]] = []
        current: list[tuple[int, bytes]] = []
        counts = [0] * domains
        for cid, payload in items:
            dom = policy.primary_domain(cid)
            if (
                len(current) >= k
                or counts[dom] >= m
                or len(current) + 1 > (domains - 1) * m
            ):
                groups.append(current)
                current, counts = [], [0] * domains
                dom = policy.primary_domain(cid)
            current.append((cid, payload))
            counts[dom] += 1
        if current:
            groups.append(current)
        return groups

    def _write_stripe(
        self, group: list[tuple[int, bytes]], report: RetierReport
    ) -> None:
        """Encode and commit one stripe (journaled; manifest is the commit)."""
        policy = self.policy
        k, m = policy.data_shards, policy.parity_shards
        sid = self._next_sid
        self._next_sid += 1
        shard_len = max(len(payload) for _, payload in group)
        shards = [_pad(payload, shard_len) for _, payload in group]
        shards += [bytes(shard_len)] * (k - len(shards))
        parity_blobs = ReedSolomon(k, m).encode(shards)

        counts = [0] * policy.fault_domains
        for cid, _ in group:
            counts[policy.primary_domain(cid)] += 1
        parity: list[dict[str, Any]] = []
        for i, blob in enumerate(parity_blobs):
            dom = min(range(policy.fault_domains), key=lambda d: (counts[d], d))
            counts[dom] += 1
            parity.append(
                {
                    "key": self.PARITY_KEY.format(dom=dom, sid=sid, i=i),
                    "domain": dom,
                    "shard": k + i,
                    "sha": _sha(blob),
                }
            )
        members = [
            {
                "cid": cid,
                "shard": index,
                "length": len(payload),
                "sha": _sha(payload),
                "live": True,
            }
            for index, (cid, payload) in enumerate(group)
        ]
        planned = [entry["key"] for entry in parity] + [
            self.STRIPE_KEY.format(sid=sid)
        ]
        seq = None
        if self.journal is not None:
            seq = self.journal.begin(
                "durability", op="stripe", sid=sid, planned=planned
            )
        for entry, blob in zip(parity, parity_blobs):
            self._oss.put_object(self._bucket, entry["key"], blob)
            report.parity_written += 1
            report.bytes_written += len(blob)
        self._save_stripe(
            {
                "sid": sid,
                "k": k,
                "m": m,
                "shard_len": shard_len,
                "members": members,
                "parity": parity,
                "retired": [],
            }
        )
        for member, (cid, payload) in zip(members, group):
            old = self._records.get(cid)
            old_class = old["class"] if old else None
            self._commit_record(
                cid, CLASS_ERASURE, member["sha"], member["length"], [], sid
            )
            report.transitions.append((cid, old_class, CLASS_ERASURE))
        if seq is not None:
            self.journal.close(seq)
        report.stripes_built += 1

    def _retire_stripe(self, sid: int, report: RetierReport) -> None:
        """Retire a stale stripe's parity into the two-phase grace window."""
        stripe = self._stripes.get(sid)
        if stripe is None:
            return
        epoch = self._containers.current_epoch
        retired = list(stripe.get("retired", []))
        for parity in stripe.get("parity", []):
            retired.append({"key": parity["key"], "epoch": epoch})
            report.retired_keys += 1
        if not retired:
            self._drop_stripe(sid)
        else:
            self._save_stripe(
                {**stripe, "members": [], "parity": [], "retired": retired}
            )
        report.stripes_retired += 1

    # ------------------------------------------------------------------
    # Container-store hooks
    # ------------------------------------------------------------------
    def on_payload_changed(self, cid: int, payload: bytes) -> None:
        """Refresh copies/parity after a rewrite or in-place repair."""
        record = self._records.get(cid)
        if record is None or record["class"] == CLASS_DELETED:
            return
        sha, length = _sha(payload), len(payload)
        if record["sha"] == sha and record["length"] == length:
            return
        if record["class"] == CLASS_REPLICATED:
            planned = [copy["key"] for copy in record["copies"]]
            seq = None
            if self.journal is not None:
                seq = self.journal.begin(
                    "durability",
                    op="tier",
                    cid=cid,
                    target=CLASS_REPLICATED,
                    sha=sha,
                    planned=planned,
                )
            for copy in record["copies"]:
                self._oss.put_object(self._bucket, copy["key"], payload)
            self._commit_record(
                cid, CLASS_REPLICATED, sha, length, record["copies"], None
            )
            if seq is not None:
                self.journal.close(seq)
        elif record["class"] == CLASS_ERASURE and record.get("stripe") is not None:
            self._restripe(record["stripe"], overrides={cid: payload})
        else:
            self._commit_record(cid, record["class"], sha, length, [], None)

    def _restripe(self, sid: int, overrides: dict[int, bytes]) -> None:
        """Re-encode a stripe into a fresh sid (never overwrite parity in
        place: the old stripe stays decodable until the new one commits)."""
        stripe = self._stripes.get(sid)
        if stripe is None:
            return
        report = RetierReport()
        group: list[tuple[int, bytes]] = []
        for member in stripe["members"]:
            cid = int(member["cid"])
            if not member.get("live", True) or not self._containers.exists(cid):
                continue
            if cid in overrides:
                group.append((cid, overrides[cid]))
                continue
            payload = self._stable_read(
                ContainerStore.DATA_KEY.format(cid=cid), expect_sha=member["sha"]
            )
            if payload is None:
                decoded = self._decode_member_payload(self._records.get(cid))
                if decoded is None:
                    continue  # unreadable member drops out of the stripe
                payload = decoded
            group.append((cid, payload))
        for subgroup in self._group_for_stripes(group):
            self._write_stripe(subgroup, report)
        self._retire_stripe(sid, report)

    def on_deleted(self, cid: int, immediate: bool = False) -> None:
        """Container left the live set: retire (or drop) its extra copies.

        ``immediate`` deletion (purge, reap) removes the copies and the
        record outright; an entomb retires the copies into the same grace
        window as the container's tombstone, reaped by
        :meth:`reap_retired` alongside two-phase deletion.
        """
        record = self._records.get(cid)
        if record is None:
            return
        stripe_sid = record.get("stripe")
        if stripe_sid is not None:
            stripe = self._stripes.get(stripe_sid)
            if stripe is not None:
                members = [dict(m) for m in stripe["members"]]
                for member in members:
                    if int(member["cid"]) == cid:
                        member["live"] = False
                self._save_stripe({**stripe, "members": members})
        if immediate:
            for copy in record.get("copies", []):
                self._oss.delete_object(self._bucket, copy["key"])
            for retired in record.get("retired", []):
                self._oss.delete_object(self._bucket, retired["key"])
            self._drop_record(cid)
            return
        epoch = self._containers.current_epoch
        retired = list(record.get("retired", []))
        for copy in record.get("copies", []):
            retired.append({"key": copy["key"], "epoch": epoch})
        self._save_record(
            {
                "cid": cid,
                "class": CLASS_DELETED,
                "sha": record["sha"],
                "length": record["length"],
                "copies": [],
                "stripe": None,
                "retired": retired,
            }
        )

    def reap_retired(self) -> tuple[int, int]:
        """Physically delete retired copies past their grace window.

        Joins ``deep_clean``'s two-phase deletion sweep.  Returns
        ``(bytes reclaimed, keys deleted)``.
        """
        grace = self._containers.grace_epochs
        epoch = self._containers.current_epoch
        reclaimed = 0
        deleted = 0

        def expired(entry: dict[str, Any]) -> bool:
            return int(entry["epoch"]) + grace <= epoch

        for cid, record in sorted(self._records.items()):
            retired = record.get("retired", [])
            if not any(expired(entry) for entry in retired):
                continue
            keep = []
            for entry in retired:
                if not expired(entry):
                    keep.append(entry)
                    continue
                size = self._oss.peek_size(self._bucket, entry["key"])
                if self._oss.delete_object(self._bucket, entry["key"]):
                    reclaimed += size or 0
                    deleted += 1
            if record["class"] == CLASS_DELETED and not keep:
                self._drop_record(cid)
            else:
                self._save_record({**record, "retired": keep})
        for sid, stripe in sorted(self._stripes.items()):
            retired = stripe.get("retired", [])
            if not any(expired(entry) for entry in retired):
                if not retired and not stripe.get("members") and not stripe.get("parity"):
                    self._drop_stripe(sid)
                continue
            keep = []
            for entry in retired:
                if not expired(entry):
                    keep.append(entry)
                    continue
                size = self._oss.peek_size(self._bucket, entry["key"])
                if self._oss.delete_object(self._bucket, entry["key"]):
                    reclaimed += size or 0
                    deleted += 1
            if not keep and not stripe.get("members") and not stripe.get("parity"):
                self._drop_stripe(sid)
            else:
                self._save_stripe({**stripe, "retired": keep})
        return reclaimed, deleted

    # ------------------------------------------------------------------
    # Failover reads
    # ------------------------------------------------------------------
    def _try_get(self, key: str) -> bytes | None:
        try:
            return self._oss.get_object(self._bucket, key)
        except _READ_ERRORS:
            return None

    def _stable_read(self, key: str, expect_sha: str | None = None) -> bytes | None:
        """A read trusted against in-flight bit flips.

        If an expected SHA is known, reads retry (bounded) until it
        matches.  Otherwise, under a corrupting fault policy, two
        consecutive identical reads are required — independent single-bit
        flips cannot produce the same wrong payload twice in a row.
        """
        faults = getattr(self._oss, "faults", None)
        corrupting = faults is not None and faults.corrupt_read_rate > 0
        previous = None
        for _ in range(4):
            payload = self._try_get(key)
            if payload is None:
                return None
            if expect_sha is not None:
                if _sha(payload) == expect_sha:
                    return payload
                if not corrupting:
                    return payload  # genuinely changed, not in-flight rot
                continue
            if not corrupting:
                return payload
            if previous is not None and payload == previous:
                return payload
            previous = payload
        return previous

    def primary_missing(self, cid: int) -> bool:
        """True when the primary ``.data`` object is gone (free peek)."""
        return (
            self._oss.peek_size(
                self._bucket, ContainerStore.DATA_KEY.format(cid=cid)
            )
            is None
        )

    def recorded_length(self, cid: int) -> int | None:
        """The payload length the durability record vouches for."""
        record = self._records.get(cid)
        if record is None or record["class"] == CLASS_DELETED:
            return None
        return int(record["length"])

    def verified_payload(self, cid: int) -> bytes | None:
        """SHA-verified container payload: primary → replica → decode.

        Every attempt is a charged OSS read, so degraded reads pay their
        honest virtual-time price.  Returns None only when no source can
        produce bytes matching the recorded hash — the caller's
        quarantine path stays the last resort.
        """
        record = self._records.get(cid)
        if record is None or record["class"] == CLASS_DELETED:
            return None
        sha = record["sha"]
        for _ in range(2):
            payload = self._try_get(ContainerStore.DATA_KEY.format(cid=cid))
            if payload is None:
                break
            if _sha(payload) == sha:
                return payload
        for copy in record.get("copies", []):
            for _ in range(2):
                payload = self._try_get(copy["key"])
                if payload is None:
                    break
                if _sha(payload) == sha:
                    self.replica_failovers += 1
                    return payload
        payload = self._decode_member_payload(record)
        if payload is not None:
            self.erasure_decodes += 1
        return payload

    def _decode_member_payload(self, record: dict[str, Any] | None) -> bytes | None:
        """Rebuild one member's payload from its stripe's surviving shards."""
        if record is None or record.get("stripe") is None:
            return None
        stripe = self._stripes.get(int(record["stripe"]))
        if stripe is None:
            return None
        k, m = int(stripe["k"]), int(stripe["m"])
        shard_len = int(stripe["shard_len"])
        my_shard = None
        available: dict[int, bytes] = {}
        # Slots never occupied by a member are known zero shards.
        occupied = {int(member["shard"]) for member in stripe["members"]}
        for index in range(k):
            if index not in occupied:
                available[index] = bytes(shard_len)
        for member in stripe["members"]:
            cid = int(member["cid"])
            if cid == int(record["cid"]):
                my_shard = int(member["shard"])
                continue
            if len(available) >= k:
                continue
            payload = self._stable_read(
                ContainerStore.DATA_KEY.format(cid=cid), expect_sha=member["sha"]
            )
            if payload is not None and _sha(payload) == member["sha"]:
                available[int(member["shard"])] = _pad(payload, shard_len)
        if my_shard is None:
            return None
        for parity in stripe["parity"]:
            if len(available) >= k:
                break
            blob = self._stable_read(parity["key"], expect_sha=parity["sha"])
            if blob is not None and _sha(blob) == parity["sha"]:
                available[int(parity["shard"])] = blob
        if len(available) < k:
            return None
        shards = ReedSolomon(k, m).decode(available, shard_len)
        payload = shards[my_shard][: int(record["length"])]
        return payload if _sha(payload) == record["sha"] else None

    def fetch_chunk(self, cid: int, fp: bytes) -> bytes | None:
        """A verified chunk payload served through the failover path.

        Used by restore verification and scrub repair when the primary
        bytes fail their fingerprint: the whole-container payload is
        fetched from the healthiest source, then sliced by a (re-read
        until sane) metadata entry and fingerprint-checked.
        """
        payload = self.verified_payload(cid)
        if payload is None:
            return None
        for _ in range(3):
            try:
                meta = self._containers.read_meta(cid)
            except _READ_ERRORS:
                return None
            except (ContainerError, struct.error):
                continue  # bit-flipped metadata: re-read
            entry = meta.find(fp)
            if entry is None:
                continue
            chunk = payload[entry.offset : entry.offset + entry.size]
            if len(chunk) == entry.size and self._fingerprint(chunk) == fp:
                self.degraded_chunk_reads += 1
                return chunk
        return None

    # ------------------------------------------------------------------
    # Audit / accounting
    # ------------------------------------------------------------------
    def audit(self, refcounts: dict[int, int]) -> DurabilityAudit:
        """fsck pass: class-matches-policy and copies-agree-on-hash."""
        audit = DurabilityAudit()
        live = set(self._containers.container_ids())
        audit.records = sum(
            1 for r in self._records.values() if r["class"] != CLASS_DELETED
        )
        audit.untiered = sorted(cid for cid in live if cid not in self._records)
        for cid in sorted(live & set(self._records)):
            record = self._records[cid]
            if record["class"] == CLASS_DELETED:
                continue
            target = self.policy.classify(refcounts.get(cid, 0))
            if record["class"] != target:
                audit.class_mismatches.append((cid, record["class"], target))
            for copy in record.get("copies", []):
                payload = self._stable_read(copy["key"], expect_sha=record["sha"])
                if payload is None or _sha(payload) != record["sha"]:
                    audit.divergent_copies.append((cid, copy["key"]))
        for sid, stripe in sorted(self._stripes.items()):
            for parity in stripe.get("parity", []):
                blob = self._stable_read(parity["key"], expect_sha=parity["sha"])
                if blob is None or _sha(blob) != parity["sha"]:
                    audit.divergent_copies.append((None, parity["key"]))
        return audit

    def repair_divergent(self, audit: DurabilityAudit) -> int:
        """Re-sync the divergent copies an :meth:`audit` found.

        Replica copies are re-put from the SHA-verified payload of any
        healthy source; a divergent parity shard re-encodes its whole
        stripe into a fresh one (parity is never overwritten in place).
        Returns the number of keys repaired.
        """
        repaired = 0
        restriped: set[int] = set()
        for cid, key in audit.divergent_copies:
            if cid is None:
                for sid, stripe in sorted(self._stripes.items()):
                    if sid in restriped:
                        continue
                    if any(p["key"] == key for p in stripe.get("parity", [])):
                        self._restripe(sid, {})
                        restriped.add(sid)
                        repaired += 1
                        break
                continue
            payload = self.verified_payload(cid)
            if payload is None:
                continue
            self._oss.put_object(self._bucket, key, payload)
            repaired += 1
        return repaired

    def stored_bytes(self) -> int:
        """Bytes held by the durability keyspace (accounting only, free)."""
        return sum(
            self._oss.peek_size(self._bucket, key) or 0
            for key in self._oss.peek_keys(self._bucket, self.PREFIX)
        )
