"""The simulated Object Storage Service.

Mirrors the API shape of Alibaba OSS / Amazon S3 at the granularity the
paper's system needs: buckets holding immutable objects, whole and ranged
reads, and multi-channel parallel GETs.  Every request charges virtual time
(latency + size/bandwidth) through the cost model and records traffic in
:class:`OssStats`, which is where the read-amplification and bandwidth
numbers in the restore experiments come from.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass

from repro.errors import BucketNotFoundError, ObjectNotFoundError, TransientOSSError
from repro.oss.backend import InMemoryBackend, StorageBackend
from repro.oss.faults import FaultPolicy
from repro.sim.clock import SimClock
from repro.sim.cost_model import CostModel


@dataclass
class OssStats:
    """Cumulative traffic accounting for one OSS endpoint."""

    get_requests: int = 0
    put_requests: int = 0
    delete_requests: int = 0
    list_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_seconds: float = 0.0
    write_seconds: float = 0.0
    faults_injected: int = 0
    retries_attempted: int = 0

    def snapshot(self) -> "OssStats":
        """An independent copy, for before/after diffing in experiments."""
        return OssStats(**vars(self))

    def diff(self, earlier: "OssStats") -> "OssStats":
        """Traffic accrued since ``earlier`` was snapshotted."""
        return OssStats(
            **{name: getattr(self, name) - getattr(earlier, name) for name in vars(self)}
        )


class ObjectStorageService:
    """Bucketed object storage with a virtual-time cost model.

    Parameters
    ----------
    cost_model:
        Prices for request latency and bandwidth.  Defaults to the
        calibrated model in :mod:`repro.sim.cost_model`.
    clock:
        Virtual clock charged by every request.  A private clock is created
        when none is supplied, so the store is usable standalone.
    backend_factory:
        Callable creating the byte storage for each new bucket.
    faults:
        Optional :class:`~repro.oss.faults.FaultPolicy` injecting
        transient errors, latency spikes, torn writes and corrupt reads
        into every object operation.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        clock: SimClock | None = None,
        backend_factory=InMemoryBackend,
        faults: FaultPolicy | None = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.clock = clock or SimClock()
        self.stats = OssStats()
        self.faults = faults
        #: Optional :class:`~repro.exec.iopool.IOPool` for concurrent
        #: backend reads; attached by the system when ``workers > 0``.
        #: Virtual-time charging stays serial (and identical) either way.
        self.io_pool = None
        self._backend_factory = backend_factory
        self._factory_takes_name = self._accepts_bucket_name(backend_factory)
        self._buckets: dict[str, StorageBackend] = {}
        # Clock advances and stats mutations are read-modify-write; the
        # async container flusher runs PUTs on a worker thread, so every
        # charge section serialises on this lock.
        self._mutex = threading.Lock()

    def set_fault_policy(self, faults: FaultPolicy | None) -> None:
        """Install (or remove, with None) the fault-injection policy."""
        self.faults = faults

    @staticmethod
    def _accepts_bucket_name(factory) -> bool:
        """True if ``factory`` can take the bucket name positionally.

        Inspected up front instead of probing with ``try/except
        TypeError`` so a ``TypeError`` raised *inside* the factory
        propagates instead of being silently retried without arguments.
        """
        try:
            signature = inspect.signature(factory)
        except (TypeError, ValueError):
            # Builtins without introspectable signatures: assume no-arg.
            return False
        return any(
            parameter.kind
            in (
                inspect.Parameter.POSITIONAL_ONLY,
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.VAR_POSITIONAL,
            )
            for parameter in signature.parameters.values()
        )

    # --- bucket management -------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        """Create ``bucket``; creating an existing bucket is a no-op.

        The backend factory may accept the bucket name (so durable
        backends can give each bucket its own directory) or no arguments.
        """
        if bucket not in self._buckets:
            if self._factory_takes_name:
                backend = self._backend_factory(bucket)
            else:
                backend = self._backend_factory()
            self._buckets[bucket] = backend

    def bucket_names(self) -> list[str]:
        """Names of all buckets, sorted."""
        return sorted(self._buckets)

    def _backend(self, bucket: str) -> StorageBackend:
        backend = self._buckets.get(bucket)
        if backend is None:
            raise BucketNotFoundError(bucket)
        return backend

    # --- object operations ---------------------------------------------------
    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        channels: int = 1,
        piggyback: bool = False,
    ) -> None:
        """Upload ``data``; charges latency + size/bandwidth.

        ``piggyback`` marks a small companion object written on the same
        connection as the preceding PUT (e.g. container metadata next to
        its payload): only bandwidth is charged, not another round trip.
        """
        backend = self._backend(bucket)
        extra = self._fault_gate("put", bucket, key)
        torn = self.faults.torn_write_prefix(data) if self.faults is not None else None
        payload = data if torn is None else torn
        backend.put(key, payload)
        seconds = extra + len(payload) / min(
            self.cost_model.oss_write_bandwidth * channels,
            self.cost_model.node_nic_bandwidth,
        )
        if not piggyback:
            seconds += self.cost_model.oss_request_latency
        with self._mutex:
            self.clock.advance(seconds)
            self.stats.put_requests += 1
            self.stats.bytes_written += len(payload)
            self.stats.write_seconds += seconds
        if torn is not None:
            # The connection dropped mid-upload: a truncated object was
            # persisted and the client sees a retryable failure.
            self.stats.faults_injected += 1
            raise TransientOSSError("put", bucket, key, reason="torn write")

    def get_object(
        self, bucket: str, key: str, channels: int = 1, piggyback: bool = False
    ) -> bytes:
        """Download a whole object; raises ObjectNotFoundError if missing.

        ``piggyback`` marks a small companion read on the same connection
        as the preceding GET (bandwidth cost only, no extra round trip).
        """
        backend = self._backend(bucket)
        extra = self._fault_gate("get", bucket, key)
        data = backend.get(key)
        if data is None:
            raise ObjectNotFoundError(bucket, key)
        data = self._filter_read(data)
        self._charge_read(len(data), channels, piggyback, extra)
        return data

    @staticmethod
    def _check_bounds(
        bucket: str, key: str, offset: int, length: int, size: int | None
    ) -> None:
        if size is None:
            raise ObjectNotFoundError(bucket, key)
        if offset < 0 or length < 0 or offset + length > size:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside object of "
                f"{size} bytes: oss://{bucket}/{key}"
            )

    def get_range(
        self, bucket: str, key: str, offset: int, length: int, channels: int = 1
    ) -> bytes:
        """Ranged GET of ``length`` bytes starting at ``offset``."""
        backend = self._backend(bucket)
        extra = self._fault_gate("get", bucket, key)
        self._check_bounds(bucket, key, offset, length, backend.size(key))
        chunk = backend.get_range(key, offset, length)
        if chunk is None:
            raise ObjectNotFoundError(bucket, key)
        chunk = self._filter_read(chunk)
        self._charge_read(length, channels, extra=extra)
        return chunk

    def get_ranges(
        self, bucket: str, key: str, spans: list[tuple[int, int]], channels: int = 1
    ) -> list[bytes]:
        """Several ranged GETs against one object, issued back-to-back.

        Each span ``(offset, length)`` is its own request (OSS serves one
        byte range per GET) and charges its own round-trip latency plus
        bandwidth — coalescing adjacent chunk extents *before* calling
        this is what makes ranged restore reads cheaper than one GET per
        chunk.  Returns the span payloads in call order.

        With an IO pool attached and no fault policy, the backend reads
        run concurrently on the pool; the virtual-time charges stay serial
        and in span order, so accounting is identical to the serial path.
        A fault policy forces the serial path — its seeded RNG draws must
        happen in span order.
        """
        backend = self._backend(bucket)
        if self.io_pool is not None and self.faults is None and len(spans) > 1:
            size = backend.size(key)
            for offset, length in spans:
                self._check_bounds(bucket, key, offset, length, size)
            futures = [
                self.io_pool.submit(backend.get_range, key, offset, length)
                for offset, length in spans
            ]
            results = []
            for (offset, length), future in zip(spans, futures):
                chunk = future.result()
                if chunk is None:
                    raise ObjectNotFoundError(bucket, key)
                self._charge_read(length, channels)
                results.append(chunk)
            return results
        results = []
        for offset, length in spans:
            extra = self._fault_gate("get", bucket, key)
            self._check_bounds(bucket, key, offset, length, backend.size(key))
            chunk = backend.get_range(key, offset, length)
            if chunk is None:
                raise ObjectNotFoundError(bucket, key)
            chunk = self._filter_read(chunk)
            self._charge_read(length, channels, extra=extra)
            results.append(chunk)
        return results

    def delete_object(self, bucket: str, key: str) -> bool:
        """Delete ``key``; returns True if it existed."""
        backend = self._backend(bucket)
        extra = self._fault_gate("delete", bucket, key)
        existed = backend.delete(key)
        with self._mutex:
            self.clock.advance(self.cost_model.oss_request_latency + extra)
            self.stats.delete_requests += 1
        return existed

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        """Sorted keys in ``bucket`` starting with ``prefix``."""
        backend = self._backend(bucket)
        extra = self._fault_gate("list", bucket, prefix)
        with self._mutex:
            self.clock.advance(self.cost_model.oss_request_latency + extra)
            self.stats.list_requests += 1
        return [key for key in backend.keys() if key.startswith(prefix)]

    def head_object(self, bucket: str, key: str) -> int | None:
        """Size of ``key`` in bytes, or None if absent (no payload cost)."""
        backend = self._backend(bucket)
        extra = self._fault_gate("head", bucket, key)
        with self._mutex:
            self.clock.advance(self.cost_model.oss_request_latency + extra)
        return backend.size(key)

    def object_exists(self, bucket: str, key: str) -> bool:
        """True if ``key`` holds an object (charges one request latency)."""
        return self.head_object(bucket, key) is not None

    # --- accounting ---------------------------------------------------------
    def peek_size(self, bucket: str, key: str) -> int | None:
        """Object size without charging any virtual time (accounting only)."""
        return self._backend(bucket).size(key)

    def peek_keys(self, bucket: str, prefix: str = "") -> list[str]:
        """Keys under ``prefix`` without charging time (accounting only)."""
        backend = self._backend(bucket)
        return [key for key in backend.keys() if key.startswith(prefix)]

    def bucket_bytes(self, bucket: str) -> int:
        """Total stored bytes in ``bucket`` (accounting only, free)."""
        backend = self._backend(bucket)
        return sum(backend.size(key) or 0 for key in backend.keys())

    def total_bytes(self) -> int:
        """Total stored bytes across all buckets (accounting only, free)."""
        return sum(self.bucket_bytes(name) for name in self._buckets)

    def _charge_read(
        self, nbytes: int, channels: int, piggyback: bool = False, extra: float = 0.0
    ) -> None:
        seconds = extra + nbytes / min(
            self.cost_model.oss_read_bandwidth * channels,
            self.cost_model.node_nic_bandwidth,
        )
        if not piggyback:
            seconds += self.cost_model.oss_request_latency
        with self._mutex:
            self.clock.advance(seconds)
            self.stats.get_requests += 1
            self.stats.bytes_read += nbytes
            self.stats.read_seconds += seconds

    # --- fault injection -----------------------------------------------------
    def _fault_gate(self, op: str, bucket: str, key: str) -> float:
        """Consult the fault policy; returns extra latency to charge.

        A request scheduled to fail transiently still costs one round
        trip of virtual time (a timeout is not free) before the
        :class:`TransientOSSError` propagates.
        """
        if self.faults is None:
            return 0.0
        before = self.faults.stats.faults_injected
        try:
            extra = self.faults.before_request(op, bucket, key)
        except TransientOSSError:
            self.clock.advance(self.cost_model.oss_request_latency)
            raise
        finally:
            # Mirror every injected fault into the endpoint stats — a
            # SimulatedCrashError propagates through here too (the node
            # died; no virtual time is charged for a request that never
            # left it).
            self.stats.faults_injected += self.faults.stats.faults_injected - before
        return extra

    def _filter_read(self, data: bytes) -> bytes:
        """Apply read-corruption faults, mirroring counts into OssStats.

        The single corruption path for every GET payload: whole-object
        reads and each ranged span all pass through here, so bit-flip
        injection coverage is identical regardless of access pattern.
        """
        if self.faults is None:
            return data
        before = self.faults.stats.corrupt_reads
        data = self.faults.filter_read(data)
        self.stats.faults_injected += self.faults.stats.corrupt_reads - before
        return data
