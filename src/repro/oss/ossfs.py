"""OSSFS: file-system facades over the object store and over backups.

The paper's restic comparison mounts OSS "like the local file system" with
the OSSFS tool.  :class:`OssFileSystem` reproduces that arrangement:
path-style reads/writes translate one-to-one into OSS requests, so a system
written against a local filesystem (the restic model) inherits OSS latency
for every file touch — which is precisely why its shared index serialises
so badly.

:class:`BrowseFileSystem` is the same mount-like shape pointed at *backup
versions* instead of raw objects: paths name logical files in a SlimStore
catalog, reads go through the L-node write-back block cache
(:mod:`repro.core.browse`) with ranged-GET planning and readahead, and
writes are write-back — acknowledged in cache, committed as a new version
on ``flush``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ObjectNotFoundError
from repro.oss.object_store import ObjectStorageService

if TYPE_CHECKING:
    from repro.core.browse import BrowseSession, BrowseStat, FlushReport


class OssFileSystem:
    """File-like operations, each backed by one or more OSS requests."""

    def __init__(self, oss: ObjectStorageService, bucket: str) -> None:
        self._oss = oss
        self._bucket = bucket
        oss.create_bucket(bucket)

    def write_file(self, path: str, data: bytes) -> None:
        """Write a whole file (one OSS PUT)."""
        self._oss.put_object(self._bucket, self._normalize(path), data)

    def read_file(self, path: str) -> bytes:
        """Read a whole file (one OSS GET); FileNotFoundError if absent."""
        try:
            return self._oss.get_object(self._bucket, self._normalize(path))
        except ObjectNotFoundError as exc:
            raise FileNotFoundError(path) from exc

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Ranged read (one HEAD + one OSS ranged GET).

        POSIX ``pread`` semantics at the end of the object: a read that
        starts inside it but runs past the end returns the short tail,
        and a read starting exactly at EOF returns ``b""``.  A read
        starting *past* EOF is a caller bug and raises ``ValueError``
        (fully out-of-range), as does a negative offset or length.
        """
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range: offset={offset} length={length}")
        key = self._normalize(path)
        size = self._oss.head_object(self._bucket, key)
        if size is None:
            raise FileNotFoundError(path)
        if offset > size:
            raise ValueError(
                f"read offset {offset} past EOF of {path} ({size} bytes)"
            )
        length = min(length, size - offset)
        if length == 0:
            return b""
        try:
            return self._oss.get_range(self._bucket, key, offset, length)
        except ObjectNotFoundError as exc:
            raise FileNotFoundError(path) from exc

    def delete_file(self, path: str) -> bool:
        """Delete a file; True if it existed."""
        return self._oss.delete_object(self._bucket, self._normalize(path))

    def exists(self, path: str) -> bool:
        """True if the file exists (one OSS HEAD)."""
        return self._oss.object_exists(self._bucket, self._normalize(path))

    def list_dir(self, path: str) -> list[str]:
        """Sorted paths under the directory ``path`` (one OSS LIST)."""
        prefix = self._normalize(path)
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        return self._oss.list_objects(self._bucket, prefix)

    def file_size(self, path: str) -> int:
        """Size in bytes; FileNotFoundError if absent."""
        size = self._oss.head_object(self._bucket, self._normalize(path))
        if size is None:
            raise FileNotFoundError(path)
        return size

    @staticmethod
    def _normalize(path: str) -> str:
        return path.lstrip("/")


class BrowseFileSystem:
    """Mount-like file operations over backup versions.

    The browse analogue of :class:`OssFileSystem`: the same method shape,
    but each path names a logical backup file (optionally pinned to a
    version) and every access rides one
    :class:`~repro.core.browse.BrowseSession` — cached random-access
    reads, write-back writes, and a ``flush`` that commits dirtied files
    as new versions through the ingest pipeline.
    """

    def __init__(self, session: "BrowseSession") -> None:
        self._session = session

    def read_file(self, path: str, version: int | None = None) -> bytes:
        """The file's whole content at ``version`` (latest when None)."""
        handle = self._open(path, version)
        return handle.read(0, handle.size)

    def read_range(
        self, path: str, offset: int, length: int, version: int | None = None
    ) -> bytes:
        """Ranged read with the same EOF contract as :class:`OssFileSystem`:
        short tail inside the file, ``b""`` at EOF, ``ValueError`` past it.
        """
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range: offset={offset} length={length}")
        handle = self._open(path, version)
        if offset > handle.size:
            raise ValueError(
                f"read offset {offset} past EOF of {path} ({handle.size} bytes)"
            )
        return handle.read(offset, length)

    def write_file(self, path: str, data: bytes) -> None:
        """Replace the file's content (write-back; commit on ``flush``)."""
        handle = self._open(path, None)
        if data:
            handle.write(0, data)
        handle.truncate(len(data))

    def write_range(self, path: str, offset: int, data: bytes) -> int:
        """Write-back ``data`` at ``offset`` in the latest version."""
        return self._open(path, None).write(offset, data)

    def flush(self, path: str | None = None) -> list["FlushReport"]:
        """Commit dirtied files as new versions; returns their reports."""
        return self._session.flush(path)

    def exists(self, path: str) -> bool:
        """True if the catalog holds any version of ``path``."""
        return bool(self._session.store.catalog.versions(self._normalize(path)))

    def list_dir(self, path: str) -> list[str]:
        """Sorted catalog paths under the directory ``path``."""
        prefix = self._normalize(path)
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        return sorted(
            p for p in self._session.store.catalog.paths() if p.startswith(prefix)
        )

    def file_size(self, path: str, version: int | None = None) -> int:
        """Logical size in bytes (un-flushed writes included)."""
        return self._open(path, version).size

    def versions(self, path: str) -> list[int]:
        """Live backup versions of ``path``."""
        return self._session.store.catalog.versions(self._normalize(path))

    def stat(self, path: str, version: int | None = None) -> "BrowseStat":
        """Size/version/dirtiness of one file."""
        return self._open(path, version).stat()

    def _open(self, path: str, version: int | None):
        try:
            return self._session.open(self._normalize(path), version)
        except KeyError as exc:  # VersionNotFoundError subclasses KeyError
            raise FileNotFoundError(path) from exc

    @staticmethod
    def _normalize(path: str) -> str:
        return path.lstrip("/")
