"""OSSFS: a file-system facade over the object store.

The paper's restic comparison mounts OSS "like the local file system" with
the OSSFS tool.  This adapter reproduces that arrangement: path-style
reads/writes translate one-to-one into OSS requests, so a system written
against a local filesystem (the restic model) inherits OSS latency for every
file touch — which is precisely why its shared index serialises so badly.
"""

from __future__ import annotations

from repro.errors import ObjectNotFoundError
from repro.oss.object_store import ObjectStorageService


class OssFileSystem:
    """File-like operations, each backed by one or more OSS requests."""

    def __init__(self, oss: ObjectStorageService, bucket: str) -> None:
        self._oss = oss
        self._bucket = bucket
        oss.create_bucket(bucket)

    def write_file(self, path: str, data: bytes) -> None:
        """Write a whole file (one OSS PUT)."""
        self._oss.put_object(self._bucket, self._normalize(path), data)

    def read_file(self, path: str) -> bytes:
        """Read a whole file (one OSS GET); FileNotFoundError if absent."""
        try:
            return self._oss.get_object(self._bucket, self._normalize(path))
        except ObjectNotFoundError as exc:
            raise FileNotFoundError(path) from exc

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Ranged read (one OSS ranged GET)."""
        try:
            return self._oss.get_range(
                self._bucket, self._normalize(path), offset, length
            )
        except ObjectNotFoundError as exc:
            raise FileNotFoundError(path) from exc

    def delete_file(self, path: str) -> bool:
        """Delete a file; True if it existed."""
        return self._oss.delete_object(self._bucket, self._normalize(path))

    def exists(self, path: str) -> bool:
        """True if the file exists (one OSS HEAD)."""
        return self._oss.object_exists(self._bucket, self._normalize(path))

    def list_dir(self, path: str) -> list[str]:
        """Sorted paths under the directory ``path`` (one OSS LIST)."""
        prefix = self._normalize(path)
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        return self._oss.list_objects(self._bucket, prefix)

    def file_size(self, path: str) -> int:
        """Size in bytes; FileNotFoundError if absent."""
        size = self._oss.head_object(self._bucket, self._normalize(path))
        if size is None:
            raise FileNotFoundError(path)
        return size

    @staticmethod
    def _normalize(path: str) -> str:
        return path.lstrip("/")
