"""Byte-storage backends behind the simulated OSS.

The object store itself only deals in keys and byte strings; where those
bytes physically live is a backend concern.  ``InMemoryBackend`` is the
default for tests and benchmarks, ``FilesystemBackend`` persists objects
under a directory for the examples that want durable state.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterator
from pathlib import Path


class StorageBackend(ABC):
    """Minimal key → bytes storage contract used by the object store."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, overwriting any previous value."""

    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """Return the bytes stored under ``key`` or None if absent."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return True if it existed."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over all stored keys in sorted order."""

    @abstractmethod
    def size(self, key: str) -> int | None:
        """Byte length of the object under ``key`` or None if absent."""

    def contains(self, key: str) -> bool:
        """True if ``key`` currently holds an object."""
        return self.size(key) is not None

    def total_bytes(self) -> int:
        """Sum of all stored object sizes (handy for space accounting).

        Backends with cheaper bookkeeping (e.g. an in-memory dict) should
        override this key-by-key default.
        """
        return sum(self.size(key) or 0 for key in self.keys())


class InMemoryBackend(StorageBackend):
    """Dictionary-backed storage; the default for simulation runs."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)

    def get(self, key: str) -> bytes | None:
        return self._objects.get(key)

    def delete(self, key: str) -> bool:
        return self._objects.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._objects))

    def size(self, key: str) -> int | None:
        data = self._objects.get(key)
        return None if data is None else len(data)

    def total_bytes(self) -> int:
        """Sum of all stored object sizes, without per-key stat calls."""
        return sum(len(data) for data in self._objects.values())


class FilesystemBackend(StorageBackend):
    """Stores each object as a file under a root directory.

    Keys may contain ``/`` which map to subdirectories.  Used by examples
    that want backups to survive process restarts.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/") or ".." in key.split("/"):
            raise ValueError(f"unsafe object key: {key!r}")
        path = self._root / key
        if path == self._root:
            # Keys like "." normalise to the root directory itself.
            raise ValueError(f"unsafe object key: {key!r}")
        return path

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        try:
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        if not path.is_file():
            return None
        return path.read_bytes()

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if not path.is_file():
            return False
        path.unlink()
        return True

    def keys(self) -> Iterator[str]:
        found = []
        for path in self._root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                found.append(path.relative_to(self._root).as_posix())
        return iter(sorted(found))

    def size(self, key: str) -> int | None:
        path = self._path(key)
        if not path.is_file():
            return None
        return path.stat().st_size
