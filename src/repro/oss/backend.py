"""Byte-storage backends behind the simulated OSS.

The object store itself only deals in keys and byte strings; where those
bytes physically live is a backend concern.  ``InMemoryBackend`` is the
default for tests and benchmarks, ``FilesystemBackend`` persists objects
under a directory for the examples that want durable state.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path


class StorageBackend(ABC):
    """Minimal key → bytes storage contract used by the object store."""

    @abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, overwriting any previous value."""

    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """Return the bytes stored under ``key`` or None if absent."""

    def get_range(self, key: str, offset: int, length: int) -> bytes | None:
        """``length`` bytes at ``offset`` of the object, or None if absent.

        The default slices a whole :meth:`get`; backends with real random
        access (files) override it to read only the requested span, which
        is also what makes concurrent ranged reads cheap.
        """
        data = self.get(key)
        if data is None:
            return None
        return data[offset : offset + length]

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return True if it existed."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over all stored keys in sorted order."""

    @abstractmethod
    def size(self, key: str) -> int | None:
        """Byte length of the object under ``key`` or None if absent."""

    def contains(self, key: str) -> bool:
        """True if ``key`` currently holds an object."""
        return self.size(key) is not None

    def total_bytes(self) -> int:
        """Sum of all stored object sizes (handy for space accounting).

        Backends with cheaper bookkeeping (e.g. an in-memory dict) should
        override this key-by-key default.
        """
        return sum(self.size(key) or 0 for key in self.keys())


class InMemoryBackend(StorageBackend):
    """Dictionary-backed storage; the default for simulation runs."""

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}

    def put(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)

    def get(self, key: str) -> bytes | None:
        return self._objects.get(key)

    def delete(self, key: str) -> bool:
        return self._objects.pop(key, None) is not None

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._objects))

    def size(self, key: str) -> int | None:
        data = self._objects.get(key)
        return None if data is None else len(data)

    def total_bytes(self) -> int:
        """Sum of all stored object sizes, without per-key stat calls."""
        return sum(len(data) for data in self._objects.values())


class FilesystemBackend(StorageBackend):
    """Stores each object as a file under a root directory.

    Keys may contain ``/`` which map to subdirectories.  Used by examples
    that want backups to survive process restarts.

    Ranged reads go through :func:`os.pread` on a small LRU cache of open
    descriptors: pread carries its own offset, so any number of IO-pool
    threads can read the same container concurrently with no seek state to
    race on.  ``put``/``delete`` swap the inode (atomic ``os.replace``),
    so both invalidate the cached descriptor under the lock.
    """

    _FD_CACHE_SIZE = 128

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._fds: OrderedDict[str, int] = OrderedDict()
        self._fd_lock = threading.Lock()

    def _fd(self, key: str, path: Path) -> int | None:
        with self._fd_lock:
            fd = self._fds.get(key)
            if fd is not None:
                self._fds.move_to_end(key)
                return fd
        try:
            fd = os.open(path, os.O_RDONLY)
        except FileNotFoundError:
            return None
        with self._fd_lock:
            raced = self._fds.get(key)
            if raced is not None:
                # Another thread opened it first; keep theirs.
                self._fds.move_to_end(key)
                os.close(fd)
                return raced
            self._fds[key] = fd
            while len(self._fds) > self._FD_CACHE_SIZE:
                _, old = self._fds.popitem(last=False)
                os.close(old)
        return fd

    def _drop_fd(self, key: str) -> None:
        with self._fd_lock:
            fd = self._fds.pop(key, None)
        if fd is not None:
            os.close(fd)

    def close(self) -> None:
        """Release every cached descriptor."""
        with self._fd_lock:
            fds, self._fds = list(self._fds.values()), OrderedDict()
        for fd in fds:
            os.close(fd)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/") or ".." in key.split("/"):
            raise ValueError(f"unsafe object key: {key!r}")
        path = self._root / key
        if path == self._root:
            # Keys like "." normalise to the root directory itself.
            raise ValueError(f"unsafe object key: {key!r}")
        return path

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        try:
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise
        self._drop_fd(key)

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        if not path.is_file():
            return None
        return path.read_bytes()

    def get_range(self, key: str, offset: int, length: int) -> bytes | None:
        fd = self._fd(key, self._path(key))
        if fd is None:
            return None
        chunks = []
        remaining = length
        while remaining > 0:
            piece = os.pread(fd, remaining, offset + length - remaining)
            if not piece:
                break
            chunks.append(piece)
            remaining -= len(piece)
        return b"".join(chunks)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if not path.is_file():
            return False
        path.unlink()
        self._drop_fd(key)
        return True

    def keys(self) -> Iterator[str]:
        found = []
        for path in self._root.rglob("*"):
            if path.is_file() and not path.name.endswith(".tmp"):
                found.append(path.relative_to(self._root).as_posix())
        return iter(sorted(found))

    def size(self, key: str) -> int | None:
        path = self._path(key)
        if not path.is_file():
            return None
        return path.stat().st_size
