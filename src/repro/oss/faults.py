"""Fault injection for the simulated OSS.

Real object stores throttle, time out, tear writes and rot bits; the seed
simulation was perfectly reliable.  :class:`FaultPolicy` decides — from a
seeded RNG, so every run is deterministic — whether each request fails
transiently, suffers a latency spike, persists only a prefix (torn write)
or returns bit-flipped payload (silent read corruption).  The policy is
installed on an :class:`~repro.oss.object_store.ObjectStorageService` and
consulted from inside every object operation; injected latency is charged
through the virtual clock so simulated time stays honest.

Two deterministic schedule controls exist beyond the per-operation rates:

* ``kill_after_requests`` — after N requests the endpoint is "down": every
  request raises :class:`~repro.errors.TransientOSSError` until
  :meth:`FaultPolicy.revive` is called (models a full outage);
* :meth:`FaultPolicy.outage` / :meth:`FaultPolicy.revive` — force the
  failure rate of selected operations to 1.0 and back (models a partial
  outage, e.g. reads failing while writes drain);  with ``domain=`` the
  outage is scoped to one simulated fault domain: only keys placed in
  that domain (container payloads by ``cid % fault_domains``, durability
  copies/parity by their ``durability/d<N>/`` prefix) fail, which is how
  the durability tier's replica placement is tested;
* :meth:`FaultPolicy.crash_after_writes` — process death: the N-th write
  request (PUT or DELETE, zero-based) raises
  :class:`~repro.errors.SimulatedCrashError` *before* the backend is
  touched, so exactly N writes landed when the node died.  Unlike a
  transient error the crash is terminal: every subsequent request on the
  endpoint also raises, modeling a dead node, until
  :meth:`FaultPolicy.clear_crash` (a fresh node attaching).  Iterating N
  over ``[0, writes_seen)`` of an uncrashed probe run visits every
  intermediate on-OSS state a job can leave behind — the crash-matrix
  harness in the tests is built on exactly this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulatedCrashError, TransientOSSError
from repro.sim.metrics import FaultStats

#: Operations a policy can inject faults into.
FAULT_OPS = ("get", "put", "delete", "list", "head")


def key_fault_domain(key: str, domains: int) -> int | None:
    """The simulated fault domain an object key is placed in, or None.

    Data-plane placement mirrors the durability tier's layout:

    * container payloads ``containers/<cid>.data`` land on ``cid % domains``;
    * durability copies and parity under ``durability/d<N>/...`` land on
      domain ``N``.

    Everything else (metadata, journal, recipes, indexes, durability
    manifests) is control plane — replicated out-of-band in a real
    deployment — and returns None: a domain-scoped outage never touches
    it.
    """
    if domains <= 0:
        return None
    if key.startswith("containers/") and key.endswith(".data"):
        stem = key[len("containers/"):-len(".data")]
        if stem.isdigit():
            return int(stem) % domains
        return None
    if key.startswith("durability/d"):
        stem = key[len("durability/d"):]
        head, _, rest = stem.partition("/")
        if head.isdigit() and rest:
            return int(head) % domains
    return None


@dataclass
class FaultPolicy:
    """Seeded, per-operation fault schedule for one OSS endpoint.

    All ``*_error_rate`` fields are independent per-request probabilities
    in ``[0, 1]``.  The RNG is private and seeded, so a policy replayed
    against the same request sequence injects the same faults.
    """

    seed: int = 0
    #: Transient failure probability per operation type.
    get_error_rate: float = 0.0
    put_error_rate: float = 0.0
    delete_error_rate: float = 0.0
    list_error_rate: float = 0.0
    head_error_rate: float = 0.0
    #: Probability that a failing PUT first persists a prefix of the data
    #: (a torn write), leaving a corrupt object behind until retried.
    torn_write_rate: float = 0.0
    #: Probability that a successful GET returns bit-flipped payload.
    corrupt_read_rate: float = 0.0
    #: Probability of an added latency spike on an otherwise good request.
    latency_spike_rate: float = 0.0
    #: Virtual seconds one latency spike adds.
    latency_spike_seconds: float = 0.25
    #: After this many requests the endpoint fails everything until
    #: :meth:`revive` (None disables the kill switch).
    kill_after_requests: int | None = None
    #: Simulated fault domains for :meth:`outage`'s ``domain=`` scoping
    #: (0 disables domain mapping; see :func:`key_fault_domain`).
    fault_domains: int = 0

    stats: FaultStats = field(default_factory=FaultStats, repr=False)

    #: Operations that count as writes for crash-point scheduling.
    WRITE_OPS = ("put", "delete")

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._requests_seen = 0
        self._outage_ops: set[str] = set()
        self._domain_outages: dict[int, set[str]] = {}
        if self.fault_domains < 0:
            raise ValueError(f"fault_domains cannot be negative: {self.fault_domains}")
        self._writes_seen = 0
        self._crash_at_write: int | None = None
        self._crashed_at: int | None = None
        for op in FAULT_OPS:
            rate = getattr(self, f"{op}_error_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{op}_error_rate out of [0, 1]: {rate}")
        for name in ("torn_write_rate", "corrupt_read_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {rate}")

    # --- schedule controls -------------------------------------------------
    def outage(self, ops: set[str] | None = None, domain: int | None = None) -> None:
        """Fail every request of the given operations (default: all).

        With ``domain=`` the outage only hits requests whose key maps to
        that fault domain (see :func:`key_fault_domain`); ``fault_domains``
        must be set on the policy.  Endpoint-wide and per-domain outages
        stack independently.
        """
        bad = (ops or set(FAULT_OPS)) - set(FAULT_OPS)
        if bad:
            raise ValueError(f"unknown fault operations: {sorted(bad)}")
        affected = set(ops) if ops is not None else set(FAULT_OPS)
        if domain is None:
            self._outage_ops = affected
            return
        if self.fault_domains <= 0:
            raise ValueError("domain-scoped outage needs fault_domains > 0")
        if not 0 <= domain < self.fault_domains:
            raise ValueError(
                f"domain out of range [0, {self.fault_domains}): {domain}"
            )
        self._domain_outages[domain] = affected

    def revive(self, domain: int | None = None) -> None:
        """End an outage; with no ``domain``, everything is revived.

        ``revive()`` ends the endpoint-wide outage, every per-domain
        outage and the kill switch; ``revive(domain=n)`` lifts only that
        domain's outage.
        """
        if domain is not None:
            self._domain_outages.pop(domain, None)
            return
        self._outage_ops = set()
        self._domain_outages = {}
        self.kill_after_requests = None

    def crash_after_writes(self, surviving_writes: int) -> None:
        """Arm a crash point: the write with this zero-based index dies.

        ``crash_after_writes(n)`` lets the first ``n`` write requests
        (PUTs and DELETEs) persist and raises
        :class:`~repro.errors.SimulatedCrashError` on write ``n`` before
        it reaches the backend — the on-OSS state is exactly "n writes
        landed, then the node died".  Arming resets the write counter.
        """
        if surviving_writes < 0:
            raise ValueError(f"surviving_writes cannot be negative: {surviving_writes}")
        self._writes_seen = 0
        self._crash_at_write = surviving_writes
        self._crashed_at = None

    def clear_crash(self) -> None:
        """Disarm the crash point and resurrect a crashed endpoint."""
        self._crash_at_write = None
        self._crashed_at = None

    @property
    def writes_seen(self) -> int:
        """Write requests (PUT/DELETE) observed since the last arm/reset.

        A probe run with no crash point armed measures a job's total
        write count — the matrix the crash harness iterates over.
        """
        return self._writes_seen

    @property
    def has_crashed(self) -> bool:
        """True once the armed crash point fired (until cleared)."""
        return self._crashed_at is not None

    @property
    def is_killed(self) -> bool:
        """True once the kill switch has tripped (and until revived)."""
        return (
            self.kill_after_requests is not None
            and self._requests_seen > self.kill_after_requests
        )

    # --- hooks consulted by the object store -------------------------------
    def before_request(self, op: str, bucket: str, key: str) -> float:
        """Gate one request; returns extra latency seconds to charge.

        Raises :class:`TransientOSSError` when the request is scheduled to
        fail.  Called before the backend is touched, so a plain transient
        failure leaves storage untouched (torn writes are separate, see
        :meth:`torn_write_prefix`).
        """
        self._requests_seen += 1
        if self._crashed_at is not None:
            # The node is dead: nothing gets through until a new node
            # attaches (clear_crash).  Raising the crash error (not a
            # transient) keeps retry layers from resurrecting the job.
            self.stats.faults_injected += 1
            self.stats.crash_faults += 1
            raise SimulatedCrashError(op, bucket, key, self._crashed_at)
        if op in self.WRITE_OPS:
            write_index = self._writes_seen
            self._writes_seen += 1
            if self._crash_at_write is not None and write_index >= self._crash_at_write:
                self._crashed_at = write_index
                self.stats.faults_injected += 1
                self.stats.crash_faults += 1
                raise SimulatedCrashError(op, bucket, key, write_index)
        if self.is_killed or op in self._outage_ops:
            self.stats.faults_injected += 1
            if self.is_killed:
                self.stats.killed_requests += 1
            else:
                self.stats.transient_errors += 1
            raise TransientOSSError(op, bucket, key, reason="endpoint down")
        if self._domain_outages:
            domain = key_fault_domain(key, self.fault_domains)
            if domain is not None and op in self._domain_outages.get(domain, ()):
                self.stats.faults_injected += 1
                self.stats.transient_errors += 1
                raise TransientOSSError(
                    op, bucket, key, reason=f"fault domain {domain} down"
                )
        extra = 0.0
        if self.latency_spike_rate and self._rng.random() < self.latency_spike_rate:
            self.stats.faults_injected += 1
            self.stats.latency_spikes += 1
            self.stats.latency_injected_seconds += self.latency_spike_seconds
            extra = self.latency_spike_seconds
        rate = getattr(self, f"{op}_error_rate", 0.0)
        if rate and self._rng.random() < rate:
            self.stats.faults_injected += 1
            self.stats.transient_errors += 1
            raise TransientOSSError(op, bucket, key)
        return extra

    def torn_write_prefix(self, data: bytes) -> bytes | None:
        """Length-truncated payload if this PUT should tear, else None.

        The caller persists the returned prefix and then raises a
        :class:`TransientOSSError`; a retried PUT overwrites the torn
        object with the full payload.
        """
        if len(data) < 2 or not self.torn_write_rate:
            return None
        if self._rng.random() >= self.torn_write_rate:
            return None
        self.stats.faults_injected += 1
        self.stats.torn_writes += 1
        cut = self._rng.randrange(1, len(data))
        return data[:cut]

    def filter_read(self, data: bytes) -> bytes:
        """Possibly bit-flip one byte of a GET payload (bit rot in flight)."""
        if not data or not self.corrupt_read_rate:
            return data
        if self._rng.random() >= self.corrupt_read_rate:
            return data
        self.stats.faults_injected += 1
        self.stats.corrupt_reads += 1
        flipped = bytearray(data)
        position = self._rng.randrange(len(flipped))
        flipped[position] ^= 1 << self._rng.randrange(8)
        return bytes(flipped)
