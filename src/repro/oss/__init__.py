"""Simulated Object Storage Service (OSS).

The paper stores everything — containers, recipes, indexes — on Alibaba
OSS.  This package provides an in-process object store with the same API
surface (buckets, whole-object and ranged GET, PUT, DELETE, LIST) and a
cost-model hook so every request charges realistic virtual latency and
bandwidth.  ``OssFileSystem`` layers a file-like API on top, mirroring the
OSSFS tool the paper uses to point restic at OSS.
"""

from repro.oss.backend import FilesystemBackend, InMemoryBackend, StorageBackend
from repro.oss.faults import FAULT_OPS, FaultPolicy
from repro.oss.object_store import ObjectStorageService, OssStats
from repro.oss.ossfs import OssFileSystem
from repro.oss.retry import RetryingObjectStore, RetryPolicy

__all__ = [
    "StorageBackend",
    "InMemoryBackend",
    "FilesystemBackend",
    "ObjectStorageService",
    "OssStats",
    "OssFileSystem",
    "FaultPolicy",
    "FAULT_OPS",
    "RetryPolicy",
    "RetryingObjectStore",
]
