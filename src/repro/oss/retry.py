"""A retrying client over the object store.

Transient OSS failures (throttles, timeouts, connection resets) are the
normal case at cloud scale, so every component of the storage layer talks
to OSS through :class:`RetryingObjectStore`: a thin wrapper exposing the
same operation surface as :class:`~repro.oss.object_store.ObjectStorageService`
that absorbs :class:`~repro.errors.TransientOSSError` with capped
exponential backoff and decorrelated jitter (the AWS architecture-blog
scheme: each delay is drawn uniformly from ``[base, prev * 3]``, capped).

Backoff sleeps are charged to the virtual clock, so availability
experiments see retry storms as real elapsed time.  Every operation also
carries a backoff *budget*: once its cumulative sleep reaches the budget
the operation fails with :class:`~repro.errors.RetryExhaustedError` even
if attempts remain, bounding worst-case latency under a full outage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import RetryExhaustedError, TransientOSSError
from repro.sim.metrics import RetryStats


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient OSS failures."""

    #: Total tries per operation (first attempt included).
    max_attempts: int = 6
    #: Smallest backoff sleep in virtual seconds.
    base_delay: float = 0.05
    #: Cap on any single backoff sleep.
    max_delay: float = 2.0
    #: Cap on the *cumulative* backoff per operation (the retry budget).
    backoff_budget_seconds: float = 30.0
    #: Seed for the decorrelated jitter (deterministic runs).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}, {self.max_delay}"
            )
        if self.backoff_budget_seconds < 0:
            raise ValueError(
                f"backoff budget cannot be negative: {self.backoff_budget_seconds}"
            )


class RetryBudget:
    """A shared token bucket bounding fleet-wide retry amplification.

    When N concurrent jobs all hit the same degraded OSS endpoint, each
    one's private backoff schedule is individually polite but their
    *sum* is a retry storm: N× the offered load against a service that is
    already failing.  A RetryBudget is shared across every
    :class:`RetryingObjectStore` of a fleet: each retry attempt spends
    one token, tokens refill at ``refill_per_second`` of virtual time,
    and once the bucket runs dry further retries fail fast with
    :class:`~repro.errors.RetryExhaustedError` — pushing callers into
    degraded mode (which the dedup engine already survives) instead of
    amplifying the outage.
    """

    def __init__(self, capacity: float = 64.0, refill_per_second: float = 4.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        if refill_per_second < 0:
            raise ValueError(
                f"refill_per_second cannot be negative: {refill_per_second}"
            )
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._tokens = float(capacity)
        self._last_refill: float | None = None
        #: Retry attempts denied because the bucket was dry.
        self.denied = 0
        #: Retry attempts granted a token.
        self.granted = 0

    def _refill(self, now: float) -> None:
        if self._last_refill is None:
            self._last_refill = now
            return
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_second
            )
            self._last_refill = now

    def available(self, now: float) -> float:
        """Tokens available at virtual time ``now`` (refills first)."""
        self._refill(now)
        return self._tokens

    def try_spend(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False (and counted) otherwise."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.granted += 1
            return True
        self.denied += 1
        return False


class RetryingObjectStore:
    """Retry facade with the ObjectStorageService operation surface.

    Non-operation attributes (``stats``, ``clock``, ``cost_model``,
    bucket management, the ``peek_*`` accounting helpers) delegate to the
    wrapped endpoint, so the storage-layer components can use a
    RetryingObjectStore anywhere they used the raw service.

    With a shared :class:`RetryBudget`, every backoff sleep first spends
    a budget token; a dry budget turns the retry into an immediate
    :class:`~repro.errors.RetryExhaustedError` (degraded mode) so that a
    whole fleet's retries against a failing endpoint stay bounded.
    """

    def __init__(
        self,
        oss,
        policy: RetryPolicy | None = None,
        budget: "RetryBudget | None" = None,
    ) -> None:
        self._oss = oss
        self.policy = policy or RetryPolicy()
        self.budget = budget
        self.retry_stats = RetryStats()
        self._rng = random.Random(self.policy.seed)

    def __getattr__(self, name: str):
        return getattr(self._oss, name)

    # --- retried operations ----------------------------------------------
    def put_object(
        self,
        bucket: str,
        key: str,
        data: bytes,
        channels: int = 1,
        piggyback: bool = False,
    ) -> None:
        """Retrying PUT; a torn write is healed by the next attempt."""
        return self._call(
            "put", lambda: self._oss.put_object(bucket, key, data, channels, piggyback)
        )

    def get_object(
        self, bucket: str, key: str, channels: int = 1, piggyback: bool = False
    ) -> bytes:
        """Retrying whole-object GET."""
        return self._call(
            "get", lambda: self._oss.get_object(bucket, key, channels, piggyback)
        )

    def get_range(
        self, bucket: str, key: str, offset: int, length: int, channels: int = 1
    ) -> bytes:
        """Retrying ranged GET."""
        return self._call(
            "get", lambda: self._oss.get_range(bucket, key, offset, length, channels)
        )

    def get_ranges(
        self, bucket: str, key: str, spans: list[tuple[int, int]], channels: int = 1
    ) -> list[bytes]:
        """Retrying multi-span ranged GET (each span retried on its own)."""
        return [
            self.get_range(bucket, key, offset, length, channels)
            for offset, length in spans
        ]

    def delete_object(self, bucket: str, key: str) -> bool:
        """Retrying DELETE."""
        return self._call("delete", lambda: self._oss.delete_object(bucket, key))

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        """Retrying LIST."""
        return self._call("list", lambda: self._oss.list_objects(bucket, prefix))

    def head_object(self, bucket: str, key: str) -> int | None:
        """Retrying HEAD."""
        return self._call("head", lambda: self._oss.head_object(bucket, key))

    def object_exists(self, bucket: str, key: str) -> bool:
        """Retrying existence probe."""
        return self.head_object(bucket, key) is not None

    # --- the retry loop ----------------------------------------------------
    def _call(self, op: str, request):
        """Run ``request``, absorbing transient failures per the policy."""
        policy = self.policy
        self.retry_stats.operations += 1
        delay = policy.base_delay
        slept = 0.0
        attempts = 0
        while True:
            attempts += 1
            try:
                result = request()
            except TransientOSSError as error:
                if (
                    attempts >= policy.max_attempts
                    or slept >= policy.backoff_budget_seconds
                ):
                    self.retry_stats.exhausted_operations += 1
                    raise RetryExhaustedError(op, attempts, error) from error
                if self.budget is not None and not self.budget.try_spend(
                    self._oss.clock.now
                ):
                    self.retry_stats.exhausted_operations += 1
                    self.retry_stats.budget_denied += 1
                    raise RetryExhaustedError(op, attempts, error) from error
                delay = min(
                    policy.max_delay,
                    self._rng.uniform(policy.base_delay, max(policy.base_delay, delay * 3)),
                )
                delay = min(delay, policy.backoff_budget_seconds - slept)
                slept += delay
                self._oss.clock.advance(delay)
                self.retry_stats.retries += 1
                self.retry_stats.backoff_seconds += delay
                self._oss.stats.retries_attempted += 1
                continue
            if attempts > 1:
                self.retry_stats.recovered_operations += 1
            return result
