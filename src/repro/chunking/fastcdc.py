"""FastCDC: gear hashing with normalized chunking.

FastCDC (Xia et al., ATC'16) accelerates CDC two ways: the cheap gear hash,
and *normalized chunking* — a strict mask (more condition bits) before the
average size and a permissive mask (fewer bits) after it, which squeezes
the chunk-size distribution toward the average and lets the scan skip the
min-size region entirely.  The strict/permissive pair maps directly onto
:class:`~repro.chunking.base.BoundarySet`'s two candidate sets.
"""

from __future__ import annotations

import numpy as np

from repro.chunking.base import BoundarySet, Chunker, ChunkerParams
from repro.chunking.gear import WINDOW, gear_hash_positions, top_bits_mask

#: Normalization level: strict mask has +NC bits, permissive has -NC bits.
NORMALIZATION = 2


class FastCDCChunker(Chunker):
    """FastCDC with two-level normalized chunking."""

    name = "fastcdc"

    def __init__(self, params: ChunkerParams | None = None) -> None:
        super().__init__(params)
        if self.params.min_size <= WINDOW:
            raise ValueError(
                f"min chunk size {self.params.min_size} must exceed the "
                f"{WINDOW}-byte gear window"
            )
        avg_bits = self.params.avg_size.bit_length() - 1
        strict_bits = min(avg_bits + NORMALIZATION, 31)
        permissive_bits = max(avg_bits - NORMALIZATION, 1)
        self._strict_mask = top_bits_mask(strict_bits)
        self._permissive_mask = top_bits_mask(permissive_bits)

    @property
    def strict_mask(self) -> np.uint64:
        """Strict cut mask applied before the average size."""
        return self._strict_mask

    @property
    def permissive_mask(self) -> np.uint64:
        """Permissive cut mask applied after the average size."""
        return self._permissive_mask

    def boundaries(self, data: bytes) -> BoundarySet:
        hashes = gear_hash_positions(data)
        permissive_hits = np.nonzero((hashes & self._permissive_mask) == 0)[0]
        permissive = permissive_hits.astype(np.int64) + WINDOW
        strict_hits = np.nonzero((hashes & self._strict_mask) == 0)[0]
        strict = strict_hits.astype(np.int64) + WINDOW
        return BoundarySet(len(data), self.params, permissive, strict)
