"""Chunker contracts and the precomputed boundary set.

A chunker turns a byte buffer into content-defined cut points.  The API is
incremental — ``next_cut(start)`` / ``is_cut(start, end)`` — because the
dedup engine interleaves normal CDC with history-aware skip chunking, which
jumps ahead and only *verifies* that the landing position satisfies the cut
condition (Section IV-B of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.errors import ChunkingError


@dataclass(frozen=True)
class ChunkerParams:
    """Min/average/max chunk size bounds shared by all CDC algorithms."""

    min_size: int = 1024
    avg_size: int = 4096
    max_size: int = 32768

    def __post_init__(self) -> None:
        if not 0 < self.min_size <= self.avg_size <= self.max_size:
            raise ChunkingError(
                f"invalid chunk sizes: min={self.min_size} "
                f"avg={self.avg_size} max={self.max_size}"
            )
        if self.avg_size & (self.avg_size - 1):
            raise ChunkingError(f"avg_size must be a power of two: {self.avg_size}")

    def scaled(self, avg_size: int) -> "ChunkerParams":
        """The same shape (min=avg/4, max=avg*8) at a different average."""
        return ChunkerParams(
            min_size=max(64, avg_size // 4),
            avg_size=avg_size,
            max_size=avg_size * 8,
        )


@dataclass(frozen=True)
class RawChunk:
    """One cut chunk: its position in the stream and its payload view.

    ``data`` is a zero-copy :class:`memoryview` slice of the chunked
    buffer (hashing, container packing and ``bytes.join`` all accept
    buffer objects directly); call :meth:`tobytes` only when an owning
    copy is genuinely needed.
    """

    start: int
    end: int
    data: bytes | memoryview

    @property
    def size(self) -> int:
        """Chunk length in bytes."""
        return self.end - self.start

    def tobytes(self) -> bytes:
        """An owning ``bytes`` copy of the payload."""
        return bytes(self.data)


class BoundarySet:
    """Hash-condition positions for one buffer, cut-point queries on top.

    ``positions`` are stream offsets ``p`` where the rolling hash of the
    window ending at ``p`` satisfies the (permissive) cut condition;
    ``strict`` marks the subset that also satisfies the strict condition
    (FastCDC's small mask).  For single-mask algorithms both sets coincide.
    """

    def __init__(
        self,
        length: int,
        params: ChunkerParams,
        positions: np.ndarray,
        strict_positions: np.ndarray | None = None,
    ) -> None:
        self.length = length
        self.params = params
        self._positions = np.asarray(positions, dtype=np.int64)
        self._strict = (
            self._positions
            if strict_positions is None
            else np.asarray(strict_positions, dtype=np.int64)
        )
        self._strict_set = set(int(p) for p in self._strict)
        self._permissive_set = set(int(p) for p in self._positions)

    def next_cut(self, start: int) -> int:
        """The CDC cut position for a chunk starting at ``start``.

        Semantics follow FastCDC's normalized chunking: look for a strict
        (small-mask) boundary in ``(start+min, start+avg]``, then a
        permissive (large-mask) boundary in ``(start+avg, start+max)``,
        else cut at ``start+max``.  End of buffer is always a boundary.
        For single-mask chunkers the two phases collapse into "first
        boundary in ``(start+min, start+max)``".
        """
        if start < 0 or start >= self.length:
            raise ChunkingError(f"cut start {start} outside buffer of {self.length}")
        min_pos = start + self.params.min_size
        avg_pos = start + self.params.avg_size
        max_pos = start + self.params.max_size
        if min_pos >= self.length:
            return self.length

        candidate = self._first_in(self._strict, min_pos, min(avg_pos, self.length))
        if candidate is None:
            candidate = self._first_in(
                self._positions, min(avg_pos, self.length), min(max_pos, self.length)
            )
        if candidate is not None:
            return candidate
        return min(max_pos, self.length)

    def is_cut(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` is an admissible chunk ending on a cut.

        This is the skip-chunking probe: "if the position after skipping
        meets the cut condition, the skip chunking is successful".  The end
        of the buffer is always admissible (a final partial chunk).
        """
        size = end - start
        if size <= 0 or size > self.params.max_size:
            return False
        if end == self.length:
            return True
        if size < self.params.min_size:
            return False
        if size == self.params.max_size:
            return True
        if size <= self.params.avg_size:
            return end in self._strict_set
        return end in self._permissive_set

    def _first_in(self, positions: np.ndarray, lo: int, hi: int) -> int | None:
        """Smallest position ``p`` with ``lo < p <= hi``, or None."""
        index = bisect_left(positions, lo + 1)
        if index < len(positions) and positions[index] <= hi:
            return int(positions[index])
        return None


class Chunker(ABC):
    """A content-defined (or fixed) chunking algorithm."""

    #: Cost-model algorithm key ("rabin", "gear", "fastcdc", "fixed").
    name: str = "abstract"

    def __init__(self, params: ChunkerParams | None = None) -> None:
        self.params = params or ChunkerParams()

    @abstractmethod
    def boundaries(self, data: bytes) -> BoundarySet:
        """Precompute every hash-condition position in ``data``."""

    def chunk(self, data: bytes) -> list[RawChunk]:
        """Cut ``data`` into chunks by repeatedly applying ``next_cut``.

        Payloads are zero-copy ``memoryview`` slices of ``data`` — the
        hot loop never duplicates the stream (the per-chunk ``bytes``
        copy used to dominate allocation; see the zero-copy
        microbenchmark under ``benchmarks/``).
        """
        boundary_set = self.boundaries(data)
        view = memoryview(data)
        chunks: list[RawChunk] = []
        start = 0
        while start < len(data):
            end = boundary_set.next_cut(start)
            chunks.append(RawChunk(start, end, view[start:end]))
            start = end
        return chunks


def make_chunker(name: str, params: ChunkerParams | None = None) -> Chunker:
    """Factory mapping config strings to chunker instances."""
    from repro.chunking.fastcdc import FastCDCChunker
    from repro.chunking.fixed import FixedChunker
    from repro.chunking.gear import GearChunker
    from repro.chunking.rabin import RabinChunker

    registry = {
        "rabin": RabinChunker,
        "gear": GearChunker,
        "fastcdc": FastCDCChunker,
        "fixed": FixedChunker,
    }
    cls = registry.get(name)
    if cls is None:
        raise ChunkingError(f"unknown chunker: {name!r} (choose from {sorted(registry)})")
    return cls(params)
