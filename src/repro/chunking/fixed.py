"""Fixed-size chunking.

The simplest baseline: cut every ``size`` bytes.  It suffers from the
boundary-shift problem (one inserted byte re-aligns every later chunk),
which is exactly why the deduplication-ratio experiments need it as a
contrast to CDC.
"""

from __future__ import annotations

import numpy as np

from repro.chunking.base import BoundarySet, Chunker, ChunkerParams


class FixedChunker(Chunker):
    """Cuts the stream at fixed multiples of the configured size."""

    name = "fixed"

    def __init__(self, params: ChunkerParams | None = None) -> None:
        params = params or ChunkerParams()
        size = params.avg_size
        # Fixed chunking admits exactly one size; collapse the bounds.
        super().__init__(ChunkerParams(size, size, size))

    def boundaries(self, data: bytes) -> BoundarySet:
        # No hash condition: next_cut falls through to start+max, which is
        # exactly the fixed-size semantics, and EOF stays admissible.
        return BoundarySet(len(data), self.params, np.empty(0, dtype=np.int64))
