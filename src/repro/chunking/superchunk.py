"""History-aware chunk merging policy (Section IV-C).

Chunks that keep being duplicates version after version sit in data that
rarely changes, so they can be merged into *superchunks* — large chunks
that are matched wholesale by Algorithm 1 (SuperChunking) in later backups.
The policy below decides which runs of records qualify; the dedup engine
owns the mechanics (re-cutting bytes, writing the merged payload, recipe
records with the ``firstChunk`` attribute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class MergeCandidate(Protocol):
    """What the policy needs to know about one emitted chunk record."""

    size: int
    duplicate_times: int
    is_superchunk: bool
    is_duplicate: bool


@dataclass(frozen=True)
class MergePolicy:
    """Tunables of history-aware chunk merging.

    ``threshold`` is the paper's merge trigger: a chunk joins a superchunk
    once its ``duplicateTimes`` reaches this value (default 5, the setting
    used in Fig 7).  Superchunk sizes are bounded to the 256 KB – 2 MB band
    the paper quotes for the restic comparison.
    """

    enabled: bool = True
    threshold: int = 5
    min_superchunk_bytes: int = 256 * 1024
    max_superchunk_bytes: int = 2 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"merge threshold must be >= 1: {self.threshold}")
        if not 0 < self.min_superchunk_bytes <= self.max_superchunk_bytes:
            raise ValueError(
                f"invalid superchunk size band: "
                f"[{self.min_superchunk_bytes}, {self.max_superchunk_bytes}]"
            )

    def record_qualifies(self, record: MergeCandidate) -> bool:
        """A plain duplicate chunk whose duplicate run is long enough."""
        return (
            self.enabled
            and record.is_duplicate
            and not record.is_superchunk
            and record.duplicate_times >= self.threshold
        )

    def plan_merge_runs(self, records: list[MergeCandidate]) -> list[tuple[int, int]]:
        """Index ranges ``[i, j)`` of records to merge into superchunks.

        Maximal runs of qualifying records are located, then each run is
        split so every resulting superchunk fits the size band; remainders
        below ``min_superchunk_bytes`` stay as plain chunks.
        """
        if not self.enabled:
            return []
        runs: list[tuple[int, int]] = []
        index = 0
        while index < len(records):
            if not self.record_qualifies(records[index]):
                index += 1
                continue
            run_end = index
            while run_end < len(records) and self.record_qualifies(records[run_end]):
                run_end += 1
            runs.extend(self._split_run(records, index, run_end))
            index = run_end
        return runs

    def _split_run(
        self, records: list[MergeCandidate], start: int, end: int
    ) -> list[tuple[int, int]]:
        pieces: list[tuple[int, int]] = []
        piece_start = start
        piece_bytes = 0
        for position in range(start, end):
            size = records[position].size
            if piece_bytes and piece_bytes + size > self.max_superchunk_bytes:
                if piece_bytes >= self.min_superchunk_bytes:
                    pieces.append((piece_start, position))
                piece_start = position
                piece_bytes = 0
            piece_bytes += size
        if piece_bytes >= self.min_superchunk_bytes and piece_start < end:
            pieces.append((piece_start, end))
        return pieces
