"""Rabin-style rolling-hash CDC.

The classic chunker of LBFS lineage: a polynomial rolling hash over a
48-byte sliding window, cutting where the hash satisfies a modulus
condition.  We use the Rabin–Karp polynomial form ``h = Σ b[i]·P^k mod
2^64`` (an odd multiplier over a power-of-two ring), which preserves the
properties that matter here — content-defined boundaries, window locality,
uniform cut density — while admitting a fully vectorised evaluation.

Its virtual-time cost ("rabin" in the cost model) reflects the real
algorithm's expensive per-byte work, which is what Fig 2 of the paper is
about.
"""

from __future__ import annotations

import numpy as np

from repro.chunking.base import BoundarySet, Chunker, ChunkerParams

#: Sliding-window width in bytes.
WINDOW = 48
#: Odd multiplier of the rolling polynomial.
PRIME = np.uint64(0x3B9ACA07)


def _window_coefficients() -> np.ndarray:
    """coef[t] = PRIME^(WINDOW-1-t) mod 2^64 for window offset t."""
    coefficients = np.empty(WINDOW, dtype=np.uint64)
    power = 1
    for exponent in range(WINDOW):
        coefficients[WINDOW - 1 - exponent] = power
        power = (power * int(PRIME)) % (1 << 64)
    return coefficients


_COEFFICIENTS = _window_coefficients()


class RabinChunker(Chunker):
    """Rabin rolling-hash content-defined chunking."""

    name = "rabin"

    def __init__(self, params: ChunkerParams | None = None) -> None:
        super().__init__(params)
        if self.params.min_size <= WINDOW:
            raise ValueError(
                f"min chunk size {self.params.min_size} must exceed the "
                f"{WINDOW}-byte rolling window"
            )
        # Cut when the low log2(avg) bits are all ones: density 1/avg.
        self._mask = np.uint64(self.params.avg_size - 1)

    @property
    def cut_mask(self) -> np.uint64:
        """The cut-condition mask (a hash is a cut when ``h & mask == mask``)."""
        return self._mask

    def boundaries(self, data: bytes) -> BoundarySet:
        length = len(data)
        if length <= WINDOW:
            return BoundarySet(length, self.params, np.empty(0, dtype=np.int64))
        stream = np.frombuffer(data, dtype=np.uint8).astype(np.uint64)
        window_count = length - WINDOW + 1
        with np.errstate(over="ignore"):
            acc = np.zeros(window_count, dtype=np.uint64)
            for t in range(WINDOW):
                acc += stream[t : t + window_count] * _COEFFICIENTS[t]
        hits = np.nonzero((acc & self._mask) == self._mask)[0]
        positions = hits.astype(np.int64) + WINDOW
        return BoundarySet(length, self.params, positions)
