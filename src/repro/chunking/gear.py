"""Gear-hash CDC (DDelta).

Gear replaces Rabin's multiply-heavy window roll with one table lookup,
one shift and one add per byte: ``h = (h << 1) + gear[b]``.  Contributions
shift out of a 32-bit hash after 32 bytes, giving an implicit 32-byte
window.  The cut condition tests the *high* bits of the hash, where the
most history is mixed in.
"""

from __future__ import annotations

import numpy as np

from repro.chunking.base import BoundarySet, Chunker, ChunkerParams

#: Implicit window: how many trailing bytes influence a 32-bit gear hash.
WINDOW = 32
#: Hash width in bits.
HASH_BITS = 32
_HASH_MASK = np.uint64((1 << HASH_BITS) - 1)


def _gear_table(seed: int = 0x5EED) -> np.ndarray:
    """The 256-entry random table shared by Gear and FastCDC."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << HASH_BITS, size=256, dtype=np.uint64)


GEAR_TABLE = _gear_table()


def gear_hash_positions(data: bytes) -> np.ndarray:
    """Gear hash of the window ending at each position (length-WINDOW+1 values).

    Entry ``j`` is the hash for stream position ``p = j + WINDOW``, i.e.
    the window ``data[p-WINDOW:p]``.
    """
    length = len(data)
    if length < WINDOW:
        return np.empty(0, dtype=np.uint64)
    mapped = GEAR_TABLE[np.frombuffer(data, dtype=np.uint8)]
    window_count = length - WINDOW + 1
    with np.errstate(over="ignore"):
        acc = np.zeros(window_count, dtype=np.uint64)
        for t in range(WINDOW):
            shift = np.uint64(WINDOW - 1 - t)
            acc += mapped[t : t + window_count] << shift
    return acc & _HASH_MASK


def top_bits_mask(bits: int) -> np.uint64:
    """A mask selecting the ``bits`` most significant hash bits."""
    if not 0 < bits < HASH_BITS:
        raise ValueError(f"mask bits must be in (0, {HASH_BITS}): {bits}")
    return np.uint64(((1 << bits) - 1) << (HASH_BITS - bits))


class GearChunker(Chunker):
    """Plain gear-hash CDC with a single cut condition."""

    name = "gear"

    def __init__(self, params: ChunkerParams | None = None) -> None:
        super().__init__(params)
        if self.params.min_size <= WINDOW:
            raise ValueError(
                f"min chunk size {self.params.min_size} must exceed the "
                f"{WINDOW}-byte gear window"
            )
        avg_bits = self.params.avg_size.bit_length() - 1
        self._mask = top_bits_mask(min(avg_bits, HASH_BITS - 1))

    @property
    def cut_mask(self) -> np.uint64:
        """The cut-condition mask (a hash is a cut when ``h & mask == 0``)."""
        return self._mask

    def boundaries(self, data: bytes) -> BoundarySet:
        hashes = gear_hash_positions(data)
        hits = np.nonzero((hashes & self._mask) == 0)[0]
        positions = hits.astype(np.int64) + WINDOW
        return BoundarySet(len(data), self.params, positions)
