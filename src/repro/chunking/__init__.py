"""Content-defined chunking.

Implements the chunking landscape the paper builds on: fixed-size chunking,
Rabin-style rolling-hash CDC, Gear hashing, and FastCDC with normalized
chunking, plus the two history-aware accelerations SLIMSTORE contributes
(skip chunking and SuperChunking — the latter lives with the dedup engine
that owns recipe history, its policy types are defined here).

Implementation note: each chunker precomputes every hash-condition position
in a buffer with vectorised numpy arithmetic (``BoundarySet``), and chunk
cutting walks those candidates under min/avg/max rules.  The *virtual-time
cost* of chunking is charged per byte scanned via the cost model, so the
simulation still reflects byte-by-byte scanning even though the Python
implementation is vectorised.
"""

from repro.chunking.base import (
    BoundarySet,
    Chunker,
    ChunkerParams,
    RawChunk,
    make_chunker,
)
from repro.chunking.fixed import FixedChunker
from repro.chunking.rabin import RabinChunker
from repro.chunking.gear import GearChunker
from repro.chunking.fastcdc import FastCDCChunker
from repro.chunking.superchunk import MergePolicy

__all__ = [
    "BoundarySet",
    "Chunker",
    "ChunkerParams",
    "RawChunk",
    "make_chunker",
    "FixedChunker",
    "RabinChunker",
    "GearChunker",
    "FastCDCChunker",
    "MergePolicy",
]
