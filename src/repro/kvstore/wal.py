"""Write-ahead log for the LSM store.

Writes are appended to an in-memory log segment and persisted to OSS when
the segment rotates (at memtable flush).  Replay restores any writes that
were logged but not yet flushed into an SSTable — exercised by the crash
recovery tests.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.errors import KVStoreError
from repro.oss.object_store import ObjectStorageService

_RECORD_HEADER = struct.Struct(">BII")  # op, key length, value length
_OP_PUT = 1
_OP_DELETE = 2


def encode_record(op: int, key: bytes, value: bytes) -> bytes:
    """Binary encoding of one WAL record."""
    return _RECORD_HEADER.pack(op, len(key), len(value)) + key + value


def decode_records(payload: bytes) -> Iterator[tuple[int, bytes, bytes]]:
    """Decode a WAL segment back into (op, key, value) records."""
    offset = 0
    while offset < len(payload):
        if offset + _RECORD_HEADER.size > len(payload):
            raise KVStoreError("truncated WAL record header")
        op, key_len, value_len = _RECORD_HEADER.unpack_from(payload, offset)
        offset += _RECORD_HEADER.size
        end = offset + key_len + value_len
        if end > len(payload):
            raise KVStoreError("truncated WAL record body")
        key = payload[offset : offset + key_len]
        value = payload[offset + key_len : end]
        offset = end
        yield op, key, value


class WriteAheadLog:
    """Per-store WAL with durable records.

    Rotated segments become numbered OSS objects; the *active* segment is
    mirrored to an ``active.wal`` object on every append, modelling the
    node-local WAL file RocksDB keeps (the mirror write is charged as a
    piggybacked, latency-free append).  A fresh instance therefore replays
    every record a crashed predecessor logged.
    """

    ACTIVE_KEY = "active.wal"

    def __init__(self, oss: ObjectStorageService, bucket: str, name: str) -> None:
        self._oss = oss
        self._bucket = bucket
        self._prefix = f"wal/{name}/"
        self._segment = bytearray()
        self._sequence = 0
        oss.create_bucket(bucket)

    def log_put(self, key: bytes, value: bytes) -> None:
        """Append a put record to the active segment (durably)."""
        self._segment += encode_record(_OP_PUT, key, value)
        self._mirror_active()

    def log_delete(self, key: bytes) -> None:
        """Append a delete record to the active segment (durably)."""
        self._segment += encode_record(_OP_DELETE, key, b"")
        self._mirror_active()

    def _mirror_active(self) -> None:
        self._oss.put_object(
            self._bucket,
            self._prefix + self.ACTIVE_KEY,
            bytes(self._segment),
            piggyback=True,
        )

    def persist_segment(self) -> str | None:
        """Rotate the active segment to a numbered OSS object."""
        if not self._segment:
            return None
        key = f"{self._prefix}{self._sequence:012d}.wal"
        self._oss.put_object(self._bucket, key, bytes(self._segment))
        self._segment.clear()
        self._oss.delete_object(self._bucket, self._prefix + self.ACTIVE_KEY)
        self._sequence += 1
        return key

    def discard_persisted(self) -> int:
        """Delete all rotated segments (their writes reached SSTables)."""
        removed = 0
        for key in self._oss.list_objects(self._bucket, self._prefix):
            if key.endswith(self.ACTIVE_KEY):
                continue
            if self._oss.delete_object(self._bucket, key):
                removed += 1
        return removed

    def replay(self) -> Iterator[tuple[int, bytes, bytes]]:
        """Yield every durable record: rotated segments, then the active
        mirror (or the in-memory segment for the live instance)."""
        active_key = self._prefix + self.ACTIVE_KEY
        for key in self._oss.list_objects(self._bucket, self._prefix):
            if key == active_key:
                continue
            yield from decode_records(self._oss.get_object(self._bucket, key))
        if self._segment:
            yield from decode_records(bytes(self._segment))
        elif self._oss.peek_size(self._bucket, active_key) is not None:
            yield from decode_records(self._oss.get_object(self._bucket, active_key))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered in the not-yet-persisted active segment."""
        return len(self._segment)


#: Re-exported opcodes for replay consumers.
OP_PUT = _OP_PUT
OP_DELETE = _OP_DELETE
