"""In-memory write buffer of the LSM store.

A memtable absorbs writes until it crosses its size budget, then flushes to
an immutable SSTable.  Deletes are recorded as tombstones so they shadow
older SSTable entries until compaction drops them.
"""

from __future__ import annotations

from collections.abc import Iterator

#: Sentinel marking a deleted key until compaction reclaims it.
TOMBSTONE = b"\x00__repro_tombstone__\x00"


class MemTable:
    """A size-bounded, sorted-on-flush write buffer."""

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: dict[bytes, bytes] = {}
        self._bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        previous = self._entries.get(key)
        if previous is not None:
            self._bytes -= len(key) + len(previous)
        self._entries[key] = value
        self._bytes += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key``; the tombstone sentinel if deleted here."""
        return self._entries.get(key)

    def is_full(self) -> bool:
        """True once buffered bytes reach the capacity budget."""
        return self._bytes >= self.capacity_bytes

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def byte_size(self) -> int:
        """Approximate buffered payload size in bytes."""
        return self._bytes

    def sorted_items(self) -> Iterator[tuple[bytes, bytes]]:
        """All entries in key order (tombstones included), for flushing."""
        return iter(sorted(self._entries.items()))

    def clear(self) -> None:
        """Drop every entry (called after a successful flush)."""
        self._entries.clear()
        self._bytes = 0
