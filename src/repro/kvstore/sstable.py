"""Immutable sorted string tables persisted as OSS objects.

Layout of one SSTable object::

    [data records][sparse index][bloom filter][footer]

Data records are ``key_len(4) value_len(4) key value`` in key order.  The
sparse index holds every Nth key with its byte offset, so a point lookup
does one ranged GET covering a single index block — the access pattern that
makes an LSM tree viable on high-latency object storage.  The bloom filter
and sparse index are loaded once at open time and then served from node
memory, mirroring RocksDB's block cache.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator
from bisect import bisect_right

from repro.errors import KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.oss.object_store import ObjectStorageService

_RECORD = struct.Struct(">II")
_INDEX_ENTRY = struct.Struct(">IQ")
_FOOTER = struct.Struct(">QQQQQ8s")
_MAGIC = b"SSTABLE1"

#: A sparse index entry every this many records.
INDEX_INTERVAL = 16


def _encode_records(items: Iterable[tuple[bytes, bytes]]) -> tuple[bytes, list[tuple[bytes, int]], int]:
    data = bytearray()
    sparse: list[tuple[bytes, int]] = []
    count = 0
    previous_key: bytes | None = None
    for key, value in items:
        if previous_key is not None and key <= previous_key:
            raise KVStoreError(
                f"sstable input not strictly sorted: {key!r} after {previous_key!r}"
            )
        if count % INDEX_INTERVAL == 0:
            sparse.append((key, len(data)))
        data += _RECORD.pack(len(key), len(value))
        data += key
        data += value
        previous_key = key
        count += 1
    return bytes(data), sparse, count


class SSTable:
    """Read-side handle to one persisted SSTable."""

    def __init__(
        self,
        oss: ObjectStorageService,
        bucket: str,
        object_key: str,
        bloom: BloomFilter,
        index_keys: list[bytes],
        index_offsets: list[int],
        data_length: int,
        entry_count: int,
    ) -> None:
        self._oss = oss
        self._bucket = bucket
        self.object_key = object_key
        self._bloom = bloom
        self._index_keys = index_keys
        self._index_offsets = index_offsets
        self._data_length = data_length
        self.entry_count = entry_count

    # --- construction -----------------------------------------------------
    @classmethod
    def write(
        cls,
        oss: ObjectStorageService,
        bucket: str,
        object_key: str,
        items: Iterable[tuple[bytes, bytes]],
        false_positive_rate: float = 0.01,
    ) -> "SSTable":
        """Serialise sorted ``items`` into a new OSS object and open it."""
        data, sparse, count = _encode_records(items)
        if count == 0:
            raise KVStoreError("refusing to write an empty sstable")

        bloom = BloomFilter(count, false_positive_rate)
        for key, _value in _iter_records(data):
            bloom.add(key)

        index_blob = bytearray()
        for key, offset in sparse:
            index_blob += _INDEX_ENTRY.pack(len(key), offset)
            index_blob += key
        bloom_blob = bloom.to_bytes()

        footer = _FOOTER.pack(
            len(data), len(index_blob), len(data) + len(index_blob), len(bloom_blob), count, _MAGIC
        )
        oss.create_bucket(bucket)
        oss.put_object(bucket, object_key, data + bytes(index_blob) + bloom_blob + footer)
        return cls(
            oss,
            bucket,
            object_key,
            bloom,
            [key for key, _ in sparse],
            [offset for _, offset in sparse],
            len(data),
            count,
        )

    @classmethod
    def open(cls, oss: ObjectStorageService, bucket: str, object_key: str) -> "SSTable":
        """Open an existing SSTable, loading footer, index and bloom."""
        total = oss.head_object(bucket, object_key)
        if total is None:
            raise KVStoreError(f"sstable object missing: {bucket}/{object_key}")
        footer = oss.get_range(bucket, object_key, total - _FOOTER.size, _FOOTER.size)
        data_len, index_len, bloom_off, bloom_len, count, magic = _FOOTER.unpack(footer)
        if magic != _MAGIC:
            raise KVStoreError(f"bad sstable magic in {bucket}/{object_key}")

        index_blob = oss.get_range(bucket, object_key, data_len, index_len)
        bloom_blob = oss.get_range(bucket, object_key, bloom_off, bloom_len)

        index_keys: list[bytes] = []
        index_offsets: list[int] = []
        pos = 0
        while pos < len(index_blob):
            key_len, offset = _INDEX_ENTRY.unpack_from(index_blob, pos)
            pos += _INDEX_ENTRY.size
            index_keys.append(index_blob[pos : pos + key_len])
            index_offsets.append(offset)
            pos += key_len

        return cls(
            oss,
            bucket,
            object_key,
            BloomFilter.from_bytes(bloom_blob),
            index_keys,
            index_offsets,
            data_len,
            count,
        )

    # --- lookups ---------------------------------------------------------
    def may_contain(self, key: bytes) -> bool:
        """Bloom-filter membership test (no OSS traffic)."""
        return key in self._bloom

    def get(self, key: bytes) -> bytes | None:
        """Value for ``key`` (tombstones returned verbatim), else None."""
        if not self.may_contain(key) or not self._index_keys:
            return None
        block_index = bisect_right(self._index_keys, key) - 1
        if block_index < 0:
            return None
        start = self._index_offsets[block_index]
        end = (
            self._index_offsets[block_index + 1]
            if block_index + 1 < len(self._index_offsets)
            else self._data_length
        )
        block = self._oss.get_range(self._bucket, self.object_key, start, end - start)
        for record_key, value in _iter_records(block):
            if record_key == key:
                return value
            if record_key > key:
                return None
        return None

    def get_many(self, keys: Iterable[bytes]) -> dict[bytes, bytes]:
        """Batched point lookups; returns only the keys found here.

        Keys are Bloom-filtered, mapped to their index blocks, and adjacent
        needed blocks are coalesced into one ranged GET — the Rocks-OSS
        batching that lets a single round trip answer a whole container's
        worth of fingerprint queries instead of one GET per key.
        """
        if not self._index_keys:
            return {}
        by_block: dict[int, list[bytes]] = {}
        for key in dict.fromkeys(keys):
            if not self.may_contain(key):
                continue
            block_index = bisect_right(self._index_keys, key) - 1
            if block_index >= 0:
                by_block.setdefault(block_index, []).append(key)
        if not by_block:
            return {}

        results: dict[bytes, bytes] = {}
        blocks = sorted(by_block)
        run_start = 0
        while run_start < len(blocks):
            run_end = run_start
            while (
                run_end + 1 < len(blocks)
                and blocks[run_end + 1] == blocks[run_end] + 1
            ):
                run_end += 1
            first, last = blocks[run_start], blocks[run_end]
            start = self._index_offsets[first]
            end = (
                self._index_offsets[last + 1]
                if last + 1 < len(self._index_offsets)
                else self._data_length
            )
            wanted = {key for block in blocks[run_start : run_end + 1] for key in by_block[block]}
            blob = self._oss.get_range(self._bucket, self.object_key, start, end - start)
            for record_key, value in _iter_records(blob):
                if record_key in wanted:
                    results[record_key] = value
            run_start = run_end + 1
        return results

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        """Full scan in key order (one whole-object GET), for compaction."""
        data = self._oss.get_range(self._bucket, self.object_key, 0, self._data_length)
        return _iter_records(data)

    @property
    def min_key(self) -> bytes:
        """Smallest key in the table."""
        return self._index_keys[0]


def _iter_records(data: bytes) -> Iterator[tuple[bytes, bytes]]:
    offset = 0
    while offset < len(data):
        key_len, value_len = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        key = data[offset : offset + key_len]
        value = data[offset + key_len : offset + key_len + value_len]
        offset += key_len + value_len
        yield key, value
