"""Rocks-OSS: a from-scratch LSM-tree key-value store on OSS.

The paper stores its global fingerprint index in "Rocks-OSS, a RocksDB that
is adapted to suit the OSS".  This package implements the same architecture
from first principles: an in-memory memtable with a write-ahead log,
immutable SSTables (Bloom filter + sparse index + data blocks) persisted as
OSS objects, and size-tiered compaction.  Bloom filters and index blocks
stay cached in node memory; only data-block reads touch OSS, matching how
RocksDB's block cache behaves in front of slow storage.
"""

from repro.kvstore.bloom import BloomFilter, CountingBloomFilter
from repro.kvstore.lsm import LSMStore
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "CountingBloomFilter",
    "MemTable",
    "SSTable",
    "WriteAheadLog",
    "LSMStore",
]
