"""Bloom filters: plain and counting.

The plain filter fronts SSTable lookups (and G-node's global-dedup
prefilter, Section VI-A of the paper); the counting variant is the backbone
of the full-vision restore cache (Section V-A), which needs per-chunk
reference counts that decrement as chunks are restored.

Hashing uses blake2b with distinct salts, giving deterministic, well-mixed
hash functions without any randomness at construction time.
"""

from __future__ import annotations

import hashlib
import math
from array import array
from collections.abc import Iterable


def _hash(item: bytes, seed: int, modulus: int) -> int:
    digest = hashlib.blake2b(item, digest_size=8, salt=seed.to_bytes(8, "big")).digest()
    return int.from_bytes(digest, "big") % modulus


def optimal_parameters(expected_items: int, false_positive_rate: float) -> tuple[int, int]:
    """(bit count, hash count) minimising memory at the target FP rate."""
    if expected_items <= 0:
        raise ValueError(f"expected_items must be positive, got {expected_items}")
    if not 0 < false_positive_rate < 1:
        raise ValueError(f"false_positive_rate must be in (0, 1): {false_positive_rate}")
    bits = math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return max(8, bits), hashes


class BloomFilter:
    """A standard Bloom filter over byte-string items."""

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01) -> None:
        self._bits, self._hashes = optimal_parameters(expected_items, false_positive_rate)
        self._array = bytearray((self._bits + 7) // 8)
        self._count = 0

    def add(self, item: bytes) -> None:
        """Insert ``item``."""
        for seed in range(self._hashes):
            position = _hash(item, seed, self._bits)
            self._array[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def __contains__(self, item: bytes) -> bool:
        for seed in range(self._hashes):
            position = _hash(item, seed, self._bits)
            if not self._array[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def update(self, items: Iterable[bytes]) -> None:
        """Insert every item of an iterable."""
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return self._count

    @property
    def bit_count(self) -> int:
        """Number of bits backing this filter."""
        return self._bits

    # --- serialisation (SSTables persist their filter to OSS) ------------
    def to_bytes(self) -> bytes:
        header = (
            self._bits.to_bytes(8, "big")
            + self._hashes.to_bytes(2, "big")
            + self._count.to_bytes(8, "big")
        )
        return header + bytes(self._array)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        filt = cls.__new__(cls)
        filt._bits = int.from_bytes(payload[0:8], "big")
        filt._hashes = int.from_bytes(payload[8:10], "big")
        filt._count = int.from_bytes(payload[10:18], "big")
        filt._array = bytearray(payload[18:])
        if len(filt._array) != (filt._bits + 7) // 8:
            raise ValueError("corrupt bloom filter payload")
        return filt


class CountingBloomFilter:
    """Bloom filter with per-slot counters supporting remove and count query.

    The restore cache uses it to answer two questions about a fingerprint:
    "does this chunk appear again later in the recipe?" and "roughly how
    many references remain?".  Counts are estimates (minimum over the
    item's slots), exact enough because decrement mirrors increment.
    """

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01) -> None:
        self._slots, self._hashes = optimal_parameters(expected_items, false_positive_rate)
        self._counters = array("L", bytes(array("L").itemsize * self._slots))

    def add(self, item: bytes, times: int = 1) -> None:
        """Add ``times`` references to ``item``."""
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        for seed in range(self._hashes):
            self._counters[_hash(item, seed, self._slots)] += times

    def remove(self, item: bytes) -> None:
        """Drop one reference; removing an absent item is an error."""
        positions = [_hash(item, seed, self._slots) for seed in range(self._hashes)]
        if any(self._counters[p] == 0 for p in positions):
            raise KeyError(f"item not present in counting bloom filter: {item!r}")
        for position in positions:
            self._counters[position] -= 1

    def count(self, item: bytes) -> int:
        """Upper-bound estimate of remaining references to ``item``."""
        return min(
            self._counters[_hash(item, seed, self._slots)]
            for seed in range(self._hashes)
        )

    def __contains__(self, item: bytes) -> bool:
        return self.count(item) > 0
