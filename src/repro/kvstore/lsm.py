"""The LSM store tying memtable, WAL, SSTables and compaction together.

Writes land in the WAL and memtable; full memtables flush to new SSTables
on OSS.  Reads consult the memtable, then SSTables newest-first with Bloom
prefilters.  Size-tiered compaction merges all tables when their count
exceeds a threshold, discarding shadowed values and tombstones.  The store
exposes ``recover()`` to rebuild state from OSS after a simulated crash.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog
from repro.oss.object_store import ObjectStorageService


class LSMStore:
    """A persistent key-value store with the Rocks-OSS access pattern.

    Parameters
    ----------
    oss, bucket:
        Object store and bucket holding SSTables and WAL segments.
    name:
        Namespace prefix, so several stores can share one bucket.
    memtable_bytes:
        Flush threshold for the in-memory write buffer.
    compaction_threshold:
        Number of live SSTables that triggers a full merge.
    """

    def __init__(
        self,
        oss: ObjectStorageService,
        bucket: str,
        name: str = "default",
        memtable_bytes: int = 1 << 20,
        compaction_threshold: int = 8,
    ) -> None:
        if compaction_threshold < 2:
            raise ValueError(f"compaction_threshold must be >= 2: {compaction_threshold}")
        self._oss = oss
        self._bucket = bucket
        self._name = name
        self._prefix = f"sst/{name}/"
        self._memtable = MemTable(memtable_bytes)
        self._wal = WriteAheadLog(oss, bucket, name)
        self._sstables: list[SSTable] = []  # oldest first
        self._next_table_id = 0
        self.compaction_threshold = compaction_threshold
        oss.create_bucket(bucket)

    # --- basic operations ---------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``; may trigger a flush."""
        if value == TOMBSTONE:
            raise ValueError("value collides with the tombstone sentinel")
        self._wal.log_put(key, value)
        self._memtable.put(key, value)
        if self._memtable.is_full():
            self.flush()

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (tombstone shadows older SSTable entries)."""
        self._wal.log_delete(key)
        self._memtable.delete(key)
        if self._memtable.is_full():
            self.flush()

    def get(self, key: bytes) -> bytes | None:
        """Current value for ``key`` or None if absent/deleted."""
        value = self._memtable.get(key)
        if value is not None:
            return None if value == TOMBSTONE else value
        for table in reversed(self._sstables):
            value = table.get(key)
            if value is not None:
                return None if value == TOMBSTONE else value
        return None

    def get_many(self, keys: list[bytes]) -> dict[bytes, bytes | None]:
        """Batched point lookups; every requested key appears in the result.

        The memtable answers first; the remainder goes to the SSTables
        newest-first via :meth:`SSTable.get_many`, which coalesces index
        blocks into ranged GETs — far fewer OSS round trips than calling
        :meth:`get` per key.
        """
        results: dict[bytes, bytes | None] = {}
        unresolved: list[bytes] = []
        for key in dict.fromkeys(keys):
            value = self._memtable.get(key)
            if value is not None:
                results[key] = None if value == TOMBSTONE else value
            else:
                unresolved.append(key)
        for table in reversed(self._sstables):
            if not unresolved:
                break
            found = table.get_many(unresolved)
            if not found:
                continue
            for key, value in found.items():
                results[key] = None if value == TOMBSTONE else value
            unresolved = [key for key in unresolved if key not in found]
        for key in unresolved:
            results[key] = None
        return results

    def put_many(self, items: Iterable[tuple[bytes, bytes]]) -> None:
        """Insert or overwrite a batch of keys (may trigger flushes)."""
        for key, value in items:
            self.put(key, value)

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    # --- maintenance ---------------------------------------------------------
    def flush(self) -> SSTable | None:
        """Persist the memtable as a new SSTable (None if empty)."""
        if len(self._memtable) == 0:
            return None
        object_key = f"{self._prefix}{self._next_table_id:012d}.sst"
        table = SSTable.write(
            self._oss, self._bucket, object_key, self._memtable.sorted_items()
        )
        self._next_table_id += 1
        self._sstables.append(table)
        self._memtable.clear()
        self._wal.persist_segment()
        self._wal.discard_persisted()
        if len(self._sstables) >= self.compaction_threshold:
            self.compact()
        return table

    def compact(self) -> None:
        """Merge every SSTable into one, dropping shadowed and deleted keys."""
        if len(self._sstables) <= 1:
            return
        merged: dict[bytes, bytes] = {}
        for table in self._sstables:  # oldest first; newer overwrite older
            for key, value in table.iter_items():
                merged[key] = value
        survivors = sorted(
            (key, value) for key, value in merged.items() if value != TOMBSTONE
        )
        old_tables = self._sstables
        self._sstables = []
        if survivors:
            object_key = f"{self._prefix}{self._next_table_id:012d}.sst"
            self._next_table_id += 1
            self._sstables.append(
                SSTable.write(self._oss, self._bucket, object_key, survivors)
            )
        for table in old_tables:
            self._oss.delete_object(self._bucket, table.object_key)

    def recover(self) -> None:
        """Rebuild state from OSS: reopen SSTables, replay the WAL."""
        self._sstables = []
        for object_key in self._oss.list_objects(self._bucket, self._prefix):
            self._sstables.append(SSTable.open(self._oss, self._bucket, object_key))
        if self._sstables:
            last = self._sstables[-1].object_key
            stem = last[len(self._prefix) :].split(".")[0]
            self._next_table_id = int(stem) + 1
        self._memtable.clear()
        for op, key, value in self._wal.replay():
            if op == OP_PUT:
                self._memtable.put(key, value)
            elif op == OP_DELETE:
                self._memtable.delete(key)

    # --- introspection ---------------------------------------------------------
    @property
    def sstable_count(self) -> int:
        """Number of live SSTables."""
        return len(self._sstables)

    def iter_items(self) -> Iterator[tuple[bytes, bytes]]:
        """All live key/value pairs in key order (expensive: full scan)."""
        merged: dict[bytes, bytes] = {}
        for table in self._sstables:
            for key, value in table.iter_items():
                merged[key] = value
        for key, value in self._memtable.sorted_items():
            merged[key] = value
        for key in sorted(merged):
            if merged[key] != TOMBSTONE:
                yield key, merged[key]
