"""Ablation: ranged container reads x LAW prefetch threads.

The event-driven restore pipeline separates two effects the closed form
lumped together: how many bytes cross the wire (whole-container vs ranged
reads) and how well the reads overlap the splice CPU (prefetch threads).
This ablation runs the full matrix on an aged multi-version store —
reverse deduplication and sparse container compaction have relocated the
old version's chunks — and reports throughput and read amplification per
cell.

Doubles as the CI benchmark smoke: it asserts the event-simulated elapsed
matches the ``cpu + download`` closed form exactly at zero threads and
never undercuts ``max(cpu, download/threads)`` with prefetching on.
"""

from __future__ import annotations

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator

THREADS = [0, 1, 4, 8]
OLD_VERSION = 0


def run_restore_matrix():
    generator = SDBGenerator(
        SDBConfig(table_count=1, initial_table_bytes=1 << 20, version_count=8,
                  seed=77)
    )
    # Paper-default cache sizes; small containers so the aged version's
    # chunks scatter across enough containers for ranged reads to matter.
    store = SlimStore(SlimStoreConfig(container_bytes=128 * 1024))
    path = None
    for dataset_version in generator.versions():
        for item in dataset_version.files:
            store.backup(item.path, item.data)
            path = item.path
    results = {}
    for ranged in (False, True):
        for threads in THREADS:
            results[(ranged, threads)] = store.restore(
                path, OLD_VERSION, prefetch_threads=threads, verify=False,
                ranged=ranged,
            )
    return results


def test_ablation_restore_pipeline(benchmark, record):
    results = benchmark.pedantic(run_restore_matrix, rounds=1, iterations=1)

    rows = []
    for (ranged, threads), result in sorted(results.items()):
        rows.append([
            "ranged" if ranged else "whole",
            threads,
            f"{result.throughput_mb_s:.1f}",
            f"{result.read_amplification:.2f}",
            result.counters.get("container_bytes_read"),
            result.counters.get("ranged_bytes_saved"),
            result.counters.get("prefetch_stalls"),
        ])
    record(
        "ablation_restore_pipeline",
        format_table(
            "Ablation: ranged reads x prefetch threads (aged version restore)",
            ["reads", "threads", "MB/s", "amp", "bytes read", "bytes saved",
             "stalls"],
            rows,
        ),
    )

    reference = results[(False, 0)]
    for (ranged, threads), result in results.items():
        # Byte-identical output across the whole matrix.
        assert result.data == reference.data, (ranged, threads)
        # The event schedule never undercuts the closed form.
        assert result.elapsed_seconds >= 0.999 * result.closed_form_elapsed_seconds
        if ranged:
            # Plan-time resolution restores the read-once property even
            # on the aged version, at paper-default cache sizes.
            assert result.counters.get("repeated_container_reads") == 0
        else:
            # Whole-container mode discovers moved chunks lazily: every
            # repeated read is a redirect re-fetch, nothing else.
            assert result.counters.get("repeated_container_reads") <= (
                result.counters.get("global_index_redirects")
            )
    assert reference.counters.get("global_index_redirects") > 0

    for threads in THREADS:
        whole = results[(False, threads)]
        ranged = results[(True, threads)]
        # Ranged reads strictly reduce wire bytes on the aged version.
        assert (
            ranged.counters.get("container_bytes_read")
            < whole.counters.get("container_bytes_read")
        )
        assert ranged.counters.get("ranged_bytes_saved") > 0
        assert ranged.read_amplification < whole.read_amplification
    # Prefetching overlaps download with CPU: more threads, faster.
    for ranged in (False, True):
        assert (
            results[(ranged, 8)].throughput_mb_s
            > results[(ranged, 0)].throughput_mb_s
        )


def test_smoke_event_schedule_matches_closed_form(record):
    """Tiny-scale cross-check: whole-container uncontended restores pin
    the event kernel to the closed-form arithmetic."""
    generator = SDBGenerator(
        SDBConfig(table_count=1, initial_table_bytes=512 * 1024,
                  version_count=2, seed=99)
    )
    store = SlimStore(SlimStoreConfig(container_bytes=128 * 1024,
                                      reverse_dedup=False))
    path = None
    for dataset_version in generator.versions():
        for item in dataset_version.files:
            store.backup(item.path, item.data)
            path = item.path

    serial = store.restore(path, prefetch_threads=0, verify=False, ranged=False)
    assert serial.counters.get("global_index_redirects") == 0
    assert serial.elapsed_seconds == pytest.approx(
        serial.closed_form_elapsed_seconds, rel=1e-9
    )

    lines = [f"threads=0: exact ({serial.elapsed_seconds * 1e3:.3f} ms)"]
    for threads in (1, 4):
        result = store.restore(
            path, prefetch_threads=threads, verify=False, ranged=False
        )
        closed = result.closed_form_elapsed_seconds
        # Above the idealised bound (startup/tail transients), but not by
        # more than the first-read latency of this tiny trace allows.
        assert closed * 0.999 <= result.elapsed_seconds <= closed * 3.0
        lines.append(
            f"threads={threads}: event {result.elapsed_seconds * 1e3:.3f} ms"
            f" vs closed {closed * 1e3:.3f} ms"
        )
    record("smoke_event_vs_closed_form", "\n".join(lines))
