"""Ablation: fast online dedup vs exact dedup — the paper's core trade.

SLIMSTORE's thesis (Section I) is that neither pure approach fits the
cloud: exact dedup (DDFS-style, full index on OSS) maximises the ratio
but pays remote index lookups online; fast similarity dedup keeps the
L-node quick but misses some duplicates.  SLIMSTORE's hybrid runs fast
online and closes the ratio gap offline with reverse dedup.

This ablation measures all three on the same workload.
"""

from __future__ import annotations

from repro import ObjectStorageService, SlimStore, SlimStoreConfig
from repro.baselines import DDFSSystem
from repro.bench.harness import run_backup_series, run_slimstore_series
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator

CONFIG = SlimStoreConfig(chunk_merging=False)


def run_three_way():
    generator = SDBGenerator(
        SDBConfig(table_count=2, initial_table_bytes=1 << 20,
                  version_count=6, seed=88)
    )
    versions = generator.versions()

    ddfs = DDFSSystem(ObjectStorageService(), CONFIG)
    ddfs_series = run_backup_series("DDFS", ddfs.backup, versions)

    fast_store = SlimStore(
        CONFIG.with_overrides(reverse_dedup=False, sparse_compaction=False)
    )
    fast_series = run_slimstore_series(fast_store, versions, run_gnode=False)

    hybrid_store = SlimStore(
        CONFIG.with_overrides(reverse_dedup=True, sparse_compaction=False)
    )
    hybrid_series = run_slimstore_series(hybrid_store, versions, run_gnode=True)
    # Offline maintenance finishes reclaiming what reverse dedup marked.
    hybrid_store.gnode.deep_clean()

    return (
        ddfs_series, fast_series, hybrid_series,
        ddfs.stored_bytes(),
        fast_store.space_report().container_bytes,
        hybrid_store.space_report().container_bytes,
    )


def test_ablation_exact_vs_fast_vs_hybrid(benchmark, record):
    (ddfs_series, fast_series, hybrid_series,
     ddfs_space, fast_space, hybrid_space) = benchmark.pedantic(
        run_three_way, rounds=1, iterations=1
    )

    logical = ddfs_series.total_logical_bytes()
    rows = [
        ["DDFS (exact online)", f"{ddfs_series.mean_throughput():.0f}",
         f"{ddfs_space / (1 << 20):.2f}", f"{logical / ddfs_space:.2f}x"],
        ["SLIMSTORE L-dedupe only", f"{fast_series.mean_throughput():.0f}",
         f"{fast_space / (1 << 20):.2f}", f"{logical / fast_space:.2f}x"],
        ["SLIMSTORE + reverse dedup", f"{hybrid_series.mean_throughput():.0f}",
         f"{hybrid_space / (1 << 20):.2f}", f"{logical / hybrid_space:.2f}x"],
    ]
    record(
        "ablation_exact_vs_fast",
        format_table(
            "Ablation: exact vs fast vs hybrid deduplication (6 versions S-DB)",
            ["system", "online MB/s", "stored MB", "reduction"],
            rows,
        ),
    )

    # Fast online dedup outruns exact online dedup...
    assert fast_series.mean_throughput() > 1.2 * ddfs_series.mean_throughput()
    # ...but stores more (it misses some duplicates).
    assert fast_space >= ddfs_space * 0.99
    # The hybrid keeps the online speed (G-node work is offline)...
    assert hybrid_series.mean_throughput() > 0.9 * fast_series.mean_throughput()
    # ...and closes most of the space gap to exact dedup offline.
    gap_fast = fast_space - ddfs_space
    gap_hybrid = max(0, hybrid_space - ddfs_space)
    if gap_fast > 16 * 1024:
        assert gap_hybrid < 0.6 * gap_fast, (ddfs_space, fast_space, hybrid_space)
    assert hybrid_space <= fast_space
