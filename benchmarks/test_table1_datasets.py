"""Table I: the characteristics of the evaluation datasets.

Paper: S-DB = 2.44 TB / 25 versions / 500 files / dup 0.84 / 20% self-ref;
R-Data = 1.53 TB / 13 versions / 7440 files / dup 0.92 / 0.1% self-ref.
This reproduction generates both at laptop scale; the *ratios* (version
counts, duplication ratios, self-reference) must land on the paper's.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.workloads import RDataConfig, RDataGenerator, SDBConfig, SDBGenerator


def generate_summaries():
    sdb = SDBGenerator(
        SDBConfig(table_count=4, initial_table_bytes=512 * 1024, version_count=25)
    )
    sdb.versions()
    rdata = RDataGenerator(
        RDataConfig(file_count=64, version_count=13, max_file_bytes=512 * 1024)
    )
    rdata.versions()
    return sdb.summary(), rdata.summary()


def test_table1_dataset_characteristics(benchmark, record):
    sdb, rdata = benchmark.pedantic(generate_summaries, rounds=1, iterations=1)

    rows = list(zip([label for label, _ in sdb.rows()],
                    [value for _, value in sdb.rows()],
                    [value for _, value in rdata.rows()]))
    record(
        "table1_datasets",
        format_table("Table I: dataset characteristics (scaled)",
                     ["Characteristic", "S-DB", "R-Data"], rows),
    )

    assert sdb.version_count == 25
    assert rdata.version_count == 13
    # Duplication ratios must land near the paper's targets.
    assert 0.75 <= sdb.average_duplication_ratio <= 0.92
    assert 0.87 <= rdata.average_duplication_ratio <= 0.97
    # Self-reference: S-DB heavy, R-Data negligible (paper: 20% vs 0.1%).
    assert sdb.self_reference > 100 * rdata.self_reference
