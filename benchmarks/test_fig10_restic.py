"""Fig 10: SLIMSTORE vs restic on the R-Data workload.

Paper findings:
(a) SLIMSTORE backup throughput scales linearly with concurrent jobs,
    spilling onto more L-nodes past one node's slots, reaching 9102 MB/s
    at 72 jobs; restic's shared, locked repository index caps it at
    ~170 MB/s no matter how many jobs run.  One SLIMSTORE job also beats
    one restic job by ~25%.
(b) restores scale the same way: 3676 MB/s at 6 L-nodes x 8 jobs vs
    restic's 102 MB/s ceiling.
(c) SLIMSTORE's adaptive chunk sizes save ~20% of space vs restic's large
    fixed-average chunks; global reverse dedup adds a few percent more.

Scale note: chunk sizes shrink with the workload (SLIMSTORE 8 KB merging
up to 128 KB, restic 64 KB) to preserve the production chunk:file ratio.
"""

from __future__ import annotations

import pytest

from repro import ObjectStorageService, SlimStore, SlimStoreConfig
from repro.baselines import ResticRepository
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling import (
    restic_aggregate_throughput,
    slimstore_backup_scaling,
    slimstore_restore_scaling,
)
from repro.sim.cost_model import CostModel
from repro.workloads import RDataConfig, RDataGenerator

JOB_COUNTS = [1, 2, 4, 8, 13, 24, 48, 72]
RESTORE_JOBS = [1, 2, 4, 8, 16, 32, 48]
LNODES = 6


def _slim_config() -> SlimStoreConfig:
    return SlimStoreConfig(
        chunk_avg_size=8192,
        min_superchunk_bytes=32 * 1024,
        max_superchunk_bytes=64 * 1024,
        merge_threshold=3,
        reverse_dedup=True,
        sparse_compaction=True,
        # Offline space optimisation runs continuously in this experiment,
        # so stale containers are rewritten eagerly.
        container_rewrite_threshold=0.10,
    )


def run_rdata_comparison():
    generator = RDataGenerator(
        RDataConfig(file_count=32, version_count=6, size_log_mean=12.2,
                    max_file_bytes=1 << 20, seed=1953)
    )
    versions = generator.versions()

    slim = SlimStore(_slim_config())
    slim_noreverse = SlimStore(_slim_config().with_overrides(reverse_dedup=False))
    restic = ResticRepository(
        ObjectStorageService(CostModel()), chunk_avg=128 * 1024, pack_bytes=1 << 20
    )

    slim_jobs, restic_jobs = [], []
    restic_snapshots = {}
    for dataset_version in versions:
        for item in dataset_version.files:
            slim_jobs.append(slim.backup(item.path, item.data).result)
            slim_noreverse.backup(item.path, item.data, run_gnode=True)
            result = restic.backup(item.path, item.data)
            restic_jobs.append(result)
            restic_snapshots[item.path] = result.snapshot_id

    # Typical jobs: the largest file of the last version.  The paper's
    # R-Data files average ~200 MB, so representative jobs are the large
    # ones; small files' fixed per-job costs would not amortise at this
    # reduced scale.
    last_count = len(versions[-1].files)
    slim_last = slim_jobs[-last_count:]
    restic_last = restic_jobs[-last_count:]
    slim_job = max(slim_last, key=lambda r: r.logical_bytes)
    restic_job = max(restic_last, key=lambda r: r.logical_bytes)

    # One typical restore job per system (paper: 2 prefetch threads).
    target_path = slim_job.path
    slim_restore = slim.restore(target_path, prefetch_threads=2, verify=False)
    restic_restore = restic.restore(restic_snapshots[target_path])
    assert slim_restore.data == restic_restore.data

    return (
        slim, slim_noreverse, restic,
        slim_job, restic_job, slim_restore, restic_restore,
    )


def test_fig10_slimstore_vs_restic(benchmark, record):
    (slim, slim_noreverse, restic, slim_job, restic_job,
     slim_restore, restic_restore) = benchmark.pedantic(
        run_rdata_comparison, rounds=1, iterations=1
    )
    model = CostModel()

    # --- (a) backup scaling ------------------------------------------------
    slim_backup_curve = [
        slimstore_backup_scaling(
            slim_job.logical_bytes, slim_job.elapsed_seconds,
            slim_job.uploaded_bytes, jobs, LNODES, model,
        )
        for jobs in JOB_COUNTS
    ]
    restic_backup_curve = [
        restic_aggregate_throughput(
            restic_job.logical_bytes,
            restic_job.breakdown.elapsed_pipelined(),
            restic_job.serial_seconds,
            jobs,
        )
        for jobs in JOB_COUNTS
    ]
    record(
        "fig10a_backup_scaling",
        format_series(
            "Fig 10(a): aggregate backup throughput (MB/s) vs concurrent jobs",
            "jobs", JOB_COUNTS,
            {"SLIMSTORE": slim_backup_curve, "restic": restic_backup_curve},
        ),
    )

    # Cross-validate the closed-form SLIMSTORE curve with the
    # discrete-event cluster simulator.
    from repro.core.cluster import ClusterSimulator, JobSpec

    cluster = ClusterSimulator(LNODES, model)
    job_spec = JobSpec.from_backup_result(slim_job)
    for index, jobs in enumerate(JOB_COUNTS):
        des = cluster.backup_throughput(job_spec, jobs)
        assert des == pytest.approx(slim_backup_curve[index], rel=0.10), jobs

    # --- (b) restore scaling -------------------------------------------------
    slim_restore_curve = [
        slimstore_restore_scaling(
            slim_restore.logical_bytes, slim_restore.elapsed_seconds,
            slim_restore.counters.get("container_bytes_read"), jobs, LNODES, model,
        )
        for jobs in RESTORE_JOBS
    ]
    # Concurrent restic restores share one OSSFS repository mount, whose
    # read path sustains only a handful of parallel channels — the
    # structural reason the paper measured a ~102 MB/s restic restore
    # ceiling regardless of job count.
    mount_channels = 4
    restic_restore_curve = [
        restic_aggregate_throughput(
            len(restic_restore.data),
            restic_restore.breakdown.cpu_seconds() + restic_restore.breakdown.download,
            restic_restore.serial_seconds
            + restic_restore.breakdown.index_query
            + restic_restore.breakdown.download / mount_channels,
            jobs,
        )
        for jobs in RESTORE_JOBS
    ]
    record(
        "fig10b_restore_scaling",
        format_series(
            "Fig 10(b): aggregate restore throughput (MB/s) vs concurrent jobs",
            "jobs", RESTORE_JOBS,
            {"SLIMSTORE": slim_restore_curve, "restic": restic_restore_curve},
        ),
    )

    # --- (c) occupied space ----------------------------------------------------
    slim_space = slim.space_report().container_bytes
    slim_noreverse_space = slim_noreverse.space_report().container_bytes
    restic_space = restic.stored_bytes()
    gdedupe_saving = 1 - slim_space / slim_noreverse_space
    record(
        "fig10c_space",
        format_table(
            "Fig 10(c): occupied space on R-Data",
            ["system", "stored MB", "vs restic"],
            [
                ["restic", f"{restic_space / (1 << 20):.1f}", "1.00x"],
                ["SLIMSTORE (no G-dedupe)",
                 f"{slim_noreverse_space / (1 << 20):.1f}",
                 f"{slim_noreverse_space / restic_space:.2f}x"],
                ["SLIMSTORE", f"{slim_space / (1 << 20):.1f}",
                 f"{slim_space / restic_space:.2f}x"],
            ],
        ),
    )

    # --- paper-shape assertions ------------------------------------------------
    # One SLIMSTORE job outruns one restic job (paper: +25%).
    assert slim_backup_curve[0] > restic_backup_curve[0]
    # SLIMSTORE scales ~linearly to 72 jobs across 6 L-nodes.
    assert slim_backup_curve[-1] > 40 * slim_backup_curve[0]
    # restic flat-lines: more jobs never buy more than a few x one job
    # (paper: ~1.3x; the locked fraction is somewhat smaller at this
    # scale because the repository index is proportionally tiny).
    assert max(restic_backup_curve) < 4.5 * restic_backup_curve[0]
    # The scalability gap is an order of magnitude or more (paper: 9102 vs 170).
    assert slim_backup_curve[-1] > 10 * max(restic_backup_curve)
    # Restore: linear SLIMSTORE scaling vs a restic ceiling (3676 vs 102).
    assert slim_restore_curve[-1] > 20 * slim_restore_curve[0] / RESTORE_JOBS[0]
    assert slim_restore_curve[-1] > 10 * max(restic_restore_curve)
    # Space: SLIMSTORE stores less than restic (paper: ~20% less)...
    assert slim_space < 0.95 * restic_space
    # ...with reverse dedup contributing extra savings (paper: 4.6%; the
    # share is larger here because G-dedupe also reclaims the superchunk
    # constituents' old copies, a bigger fraction of a 6-version run).
    assert 0.0 < gdedupe_saving < 0.50, gdedupe_saving
