"""Fig 7: fast online deduplication vs SiLO and Sparse Indexing.

Paper findings: before chunk merging triggers (version 6 at merge
threshold 5), SLIMSTORE outruns SiLO 1.32x and Sparse Indexing 1.39x on
throughput with all three at almost the same dedup ratio.  Version 6 dips
(superchunks are written to OSS), after which SLIMSTORE leads 1.63x /
1.72x at the cost of ~1.5% dedup ratio.
"""

from __future__ import annotations

from repro import ObjectStorageService, SlimStore, SlimStoreConfig
from repro.baselines import SiLOSystem, SparseIndexingSystem
from repro.bench.harness import run_backup_series, run_slimstore_series
from repro.bench.reporting import format_series
from repro.workloads import SDBConfig, SDBGenerator

MERGE_THRESHOLD = 5
VERSIONS = 12


def run_three_systems():
    generator = SDBGenerator(
        SDBConfig(table_count=2, initial_table_bytes=2 << 20,
                  version_count=VERSIONS, hot_page_fraction=0.08, seed=23)
    )
    versions = generator.versions()

    config = SlimStoreConfig(
        merge_threshold=MERGE_THRESHOLD,
        min_superchunk_bytes=16 * 1024,
        max_superchunk_bytes=64 * 1024,
        reverse_dedup=False,
        sparse_compaction=False,
    )
    slim = run_slimstore_series(SlimStore(config), versions, run_gnode=False)

    silo_system = SiLOSystem(ObjectStorageService(), SlimStoreConfig())
    silo = run_backup_series("SiLO", silo_system.backup, versions)

    sparse_system = SparseIndexingSystem(ObjectStorageService(), SlimStoreConfig())
    sparse = run_backup_series("SparseIndexing", sparse_system.backup, versions)
    return slim, silo, sparse


def test_fig7_dedup_comparison(benchmark, record):
    slim, silo, sparse = benchmark.pedantic(run_three_systems, rounds=1, iterations=1)

    labels = [f"v{i}" for i in range(VERSIONS)]
    record(
        "fig7a_throughput",
        format_series(
            "Fig 7(a): dedup throughput (MB/s) per version",
            "version", labels,
            {"SLIMSTORE": slim.throughputs(), "SiLO": silo.throughputs(),
             "SparseIndexing": sparse.throughputs()},
        ),
    )
    record(
        "fig7b_ratio",
        format_series(
            "Fig 7(b): dedup ratio (%) per version",
            "version", labels,
            {"SLIMSTORE": [100 * r for r in slim.dedup_ratios()],
             "SiLO": [100 * r for r in silo.dedup_ratios()],
             "SparseIndexing": [100 * r for r in sparse.dedup_ratios()]},
        ),
    )

    def mean(values):
        return sum(values) / len(values)

    # duplicateTimes reaches the threshold at version MERGE_THRESHOLD, so
    # the superchunk-writing dip lands there (the paper's "version 6" with
    # its threshold-5 counting); steady state resumes two versions later.
    before = slice(1, MERGE_THRESHOLD)            # v1..v4: no merging yet
    after = slice(MERGE_THRESHOLD + 2, VERSIONS)  # v7..: post-merge steady state

    slim_before = mean(slim.throughputs()[before])
    slim_after = mean(slim.throughputs()[after])
    silo_before, silo_after = mean(silo.throughputs()[before]), mean(silo.throughputs()[after])
    sparse_before, sparse_after = (
        mean(sparse.throughputs()[before]), mean(sparse.throughputs()[after])
    )

    # Before merging: SLIMSTORE leads via stateless dedup + skip chunking
    # (paper: 1.32x over SiLO, 1.39x over Sparse Indexing).
    assert 1.1 <= slim_before / silo_before <= 2.2, slim_before / silo_before
    assert 1.1 <= slim_before / sparse_before <= 2.4, slim_before / sparse_before

    # The merge-trigger version dips: superchunks are written to OSS.
    dip = slim.throughputs()[MERGE_THRESHOLD]
    assert dip < 0.8 * slim_before
    assert dip < 0.8 * slim_after

    # After merging the lead widens (paper: 1.63x / 1.72x).
    assert slim_after / silo_after > slim_before / silo_before
    assert slim_after / sparse_after > slim_before / sparse_before
    assert slim_after / sparse_after >= 1.3

    # Dedup ratios: all three close before merging; SLIMSTORE loses only a
    # little after (paper: ~1.5%).
    slim_ratio_before = mean(slim.dedup_ratios()[before])
    silo_ratio_before = mean(silo.dedup_ratios()[before])
    assert abs(slim_ratio_before - silo_ratio_before) < 0.08
    slim_ratio_after = mean(slim.dedup_ratios()[after])
    silo_ratio_after = mean(silo.dedup_ratios()[after])
    assert silo_ratio_after - slim_ratio_after < 0.08
