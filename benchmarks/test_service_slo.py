"""Service bench: SLO attainment vs tenant count x node count x overload.

The control plane's headline claim is that *bounded* admission keeps
tail latency bounded: under overload the service sheds excess work with
an explicit retry-after instead of letting every admitted job queue
behind an ever-growing backlog.  This bench drives a seeded Poisson
arrival storm at each grid point twice —

* ``admission`` — the default bounded queues;
* ``unbounded`` — the same plane with effectively infinite queues (the
  no-admission-control baseline)

— and records throughput, rejection rate, and per-tenant p50/p99 backup
latency plus SLO attainment.  At overload factors well past 1.0 the
unbounded baseline's p99 must degrade past the bounded plane's p99 (the
backlog grows with the horizon), while the bounded plane's completed
jobs stay within a fixed multiple of the service time.  Results land in
``BENCH_service.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import SlimStoreConfig
from repro.bench.reporting import format_table
from repro.core.service import JobRequest, ServiceControlPlane, ServicePolicy
from repro.core.tenancy import BackupService
from repro.sim.arrivals import tenant_arrivals
from repro.sim.metrics import LatencyStats
from tests.conftest import random_bytes

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2021
PAYLOAD_BYTES = 32 * 1024
CONFIG = SlimStoreConfig(container_bytes=64 * 1024, segment_bytes=32 * 1024)

TENANT_COUNTS = (2, 4)
NODE_COUNTS = (1, 2)
OVERLOAD_FACTORS = (0.5, 1.5, 3.0)
HORIZON_SECONDS = 0.4
#: Per-job latency target for the bench grid (queueing included).
SLO_SECONDS = 0.1


def measure_service_rate() -> float:
    """Jobs/second one slot sustains for the bench payload (probe run)."""
    plane = ServiceControlPlane(
        BackupService(config=CONFIG),
        ServicePolicy(min_nodes=1, max_nodes=1, maintenance_idle_seconds=1e9),
    )
    rng = np.random.default_rng(SEED)
    for i in range(8):
        plane.submit_at(0.0, JobRequest(
            tenant="probe", kind="backup", path=f"f{i}",
            data=random_bytes(rng, PAYLOAD_BYTES),
        ))
    report = plane.run()
    stats = report.backup_latency["probe"]
    # Jobs ran back-to-back on one slot: the makespan is the last
    # completion, so the sustained rate is count / max-latency.
    return stats.count / stats.percentile(100)


def run_cell(tenants: int, nodes: int, overload: float,
             service_rate: float, bounded: bool) -> dict:
    policy = ServicePolicy(
        tenant_queue_limit=4 if bounded else 10**6,
        global_queue_limit=4 * tenants if bounded else 10**6,
        min_nodes=nodes,
        max_nodes=nodes,
        slots_per_node=1,
        maintenance_idle_seconds=1e9,
        slo_backup_seconds=SLO_SECONDS,
        slo_restore_seconds=SLO_SECONDS,
    )
    plane = ServiceControlPlane(BackupService(config=CONFIG), policy)
    names = [f"t{i}" for i in range(tenants)]
    per_tenant_rate = overload * service_rate * nodes / tenants
    schedule = tenant_arrivals(
        {name: per_tenant_rate for name in names}, HORIZON_SECONDS, seed=SEED
    )
    rng = np.random.default_rng(SEED + 1)
    for index, arrival in enumerate(schedule):
        plane.submit_at(arrival.time, JobRequest(
            tenant=arrival.tenant, kind="backup", path=f"f{index}",
            data=random_bytes(rng, PAYLOAD_BYTES),
        ))
    report = plane.run()
    merged = LatencyStats()
    for stats in report.backup_latency.values():
        merged = merged.merged_with(stats)
    summary = report.slo_summary(policy)
    attainment = (
        sum(summary[t]["backup"]["attainment"] for t in summary) / len(summary)
        if summary else 1.0
    )
    assert report.admitted + len(report.rejections) == report.submitted
    assert report.completed == report.admitted
    return {
        "tenants": tenants,
        "nodes": nodes,
        "overload": overload,
        "mode": "admission" if bounded else "unbounded",
        "submitted": report.submitted,
        "completed": report.completed,
        "rejected": len(report.rejections),
        "throughput_jobs_per_s": report.completed / HORIZON_SECONDS,
        "p50_s": merged.p50,
        "p99_s": merged.p99,
        "slo_attainment": attainment,
    }


def test_service_slo_grid(record):
    service_rate = measure_service_rate()
    assert service_rate > 0
    service_time = 1.0 / service_rate

    points = []
    for tenants in TENANT_COUNTS:
        for nodes in NODE_COUNTS:
            for overload in OVERLOAD_FACTORS:
                for bounded in (True, False):
                    points.append(run_cell(
                        tenants, nodes, overload, service_rate, bounded
                    ))

    rows = [
        [
            f"{p['tenants']}x{p['nodes']}",
            f"{p['overload']:.1f}",
            p["mode"],
            str(p["submitted"]),
            str(p["completed"]),
            str(p["rejected"]),
            f"{p['p50_s'] * 1e3:.2f}",
            f"{p['p99_s'] * 1e3:.2f}",
            f"{p['slo_attainment']:.2f}",
        ]
        for p in points
    ]

    by_key = {
        (p["tenants"], p["nodes"], p["overload"], p["mode"]): p for p in points
    }
    for tenants in TENANT_COUNTS:
        for nodes in NODE_COUNTS:
            bounded = by_key[(tenants, nodes, 3.0, "admission")]
            baseline = by_key[(tenants, nodes, 3.0, "unbounded")]
            # Deep overload: the unbounded baseline queues everything and
            # its p99 degrades unboundedly (it scales with the horizon);
            # bounded admission sheds instead and keeps p99 pinned to a
            # small multiple of the per-job service time.
            assert baseline["rejected"] == 0
            assert baseline["p99_s"] > bounded["p99_s"], (tenants, nodes)
            assert bounded["rejected"] > 0, (tenants, nodes)
            assert bounded["p99_s"] < 20 * service_time * max(
                1, tenants // nodes
            ), (tenants, nodes)
            assert bounded["slo_attainment"] > baseline["slo_attainment"], (
                tenants, nodes,
            )
            underload = by_key[(tenants, nodes, 0.5, "admission")]
            # At half load shedding is rare (Poisson bursts can still
            # momentarily overrun a queue) and the SLO holds.
            assert underload["rejected"] <= 0.05 * underload["submitted"], (
                tenants, nodes,
            )
            assert underload["slo_attainment"] > 0.9, (tenants, nodes)

    record(
        "service_slo",
        format_table(
            "Service SLO: admission vs unbounded (tenants x nodes x overload)",
            [
                "t x n",
                "load",
                "mode",
                "subm",
                "done",
                "shed",
                "p50ms",
                "p99ms",
                "slo",
            ],
            rows,
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(
            {
                "seed": SEED,
                "payload_bytes": PAYLOAD_BYTES,
                "horizon_seconds": HORIZON_SECONDS,
                "service_rate_jobs_per_s": service_rate,
                "points": points,
            },
            indent=2,
        )
        + "\n"
    )
