"""Microbenchmark: zero-copy memoryview slicing in the ingest hot loop.

The chunkers (and the dedup engine's skip/superchunk paths) used to
materialise a ``bytes`` copy of every chunk payload before hashing it —
one full duplicate of the backup stream per job, made 4 KiB at a time.
They now hand out :class:`memoryview` slices and the single copy happens
where a chunk genuinely needs owning bytes (container packing).

This bench measures both effects on a real chunk stream:

* **allocation** (deterministic, asserted tightly): ``tracemalloc`` peak
  of fingerprinting every chunk via copies vs via views, and
* **wall-clock** (noisy, asserted leniently): the same loop timed.

Unlike the rest of the suite this measures *host* time, not virtual
time, because the copies it removes are a real-Python cost the virtual
cost model never charged for.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.chunking import make_chunker
from repro.chunking.base import ChunkerParams
from repro.fingerprint.hashing import fingerprint
from tests.conftest import random_bytes

STREAM_BYTES = 4 << 20
ROUNDS = 3


def make_stream():
    import numpy as np

    return random_bytes(np.random.default_rng(7), STREAM_BYTES)


def fingerprint_via_copies(chunks) -> int:
    total = 0
    for chunk in chunks:
        total += len(fingerprint(chunk.tobytes()))
    return total


def fingerprint_via_views(chunks) -> int:
    total = 0
    for chunk in chunks:
        total += len(fingerprint(chunk.data))
    return total


def _best_of(rounds: int, fn, chunks) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(chunks)
        best = min(best, time.perf_counter() - start)
    return best


def _peak_bytes(fn, chunks) -> int:
    tracemalloc.start()
    try:
        fn(chunks)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_microbench_zero_copy_fingerprinting(record):
    data = make_stream()
    chunker = make_chunker("fastcdc", ChunkerParams().scaled(4096))
    chunks = chunker.chunk(data)
    assert all(isinstance(chunk.data, memoryview) for chunk in chunks)
    # The views reassemble the stream exactly — zero-copy, not zero-fidelity.
    assert b"".join(chunks[i].data for i in range(len(chunks))) == data

    copy_peak = _peak_bytes(fingerprint_via_copies, chunks)
    view_peak = _peak_bytes(fingerprint_via_views, chunks)
    copy_time = _best_of(ROUNDS, fingerprint_via_copies, chunks)
    view_time = _best_of(ROUNDS, fingerprint_via_views, chunks)

    lines = [
        "Microbenchmark: chunk fingerprinting, bytes copies vs memoryviews",
        "=" * 65,
        f"stream: {STREAM_BYTES >> 20} MiB, {len(chunks)} chunks "
        f"(avg {STREAM_BYTES // len(chunks)} B)",
        f"copy path:  peak alloc {copy_peak:>8} B, "
        f"best of {ROUNDS}: {copy_time * 1e3:7.2f} ms",
        f"view path:  peak alloc {view_peak:>8} B, "
        f"best of {ROUNDS}: {view_time * 1e3:7.2f} ms",
        f"alloc ratio {copy_peak / max(1, view_peak):5.1f}x, "
        f"time ratio {copy_time / view_time:5.2f}x",
    ]
    record("microbench_zero_copy", "\n".join(lines))

    # Deterministic: the copy path's peak holds at least one full chunk
    # duplicate; the view path allocates only digests and loop overhead,
    # so it must stay under the largest chunk's size.
    max_chunk = max(chunk.size for chunk in chunks)
    assert copy_peak >= max_chunk
    assert view_peak < max_chunk
    # Lenient wall-clock check: dropping a per-chunk bytes() copy must
    # not make hashing slower (generous margin for CI noise).
    assert view_time <= copy_time * 1.25


# ---------------------------------------------------------------------------
# Per-stage ingest wall-clock profile
# ---------------------------------------------------------------------------


def test_microbench_ingest_stage_profile(record):
    """Where does a backup's host time actually go?

    The virtual cost model answers that question for *simulated* seconds;
    this profile answers it for real ones, stage by stage, on the same
    chunk stream the zero-copy bench uses:

    * **chunk** — the CDC boundary scan,
    * **fingerprint** — hashing every chunk,
    * **index** — Rocks-OSS global-index writes then batched lookups,
    * **flush** — packing containers and putting them to the OSS.

    It then times the parallel engine's fused chunk+fingerprint against
    the serial sum of those two stages — the two CPU-bound stages the
    engine parallelises — so the profile and the wall-clock scaling bench
    tell one coherent story.
    """
    from repro.core.container import ContainerBuilder
    from repro.core.global_index import GlobalIndex
    from repro.exec import ParallelExecutor
    from repro.oss.object_store import ObjectStorageService

    data = make_stream()
    chunker = make_chunker("fastcdc", ChunkerParams().scaled(4096))

    def _timed(fn):
        best = float("inf")
        result = None
        for _ in range(ROUNDS):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return result, best

    boundary_set, chunk_s = _timed(lambda: chunker.boundaries(data))

    def _fingerprint_walk():
        view = memoryview(data)
        digests = []
        position = 0
        while position < len(data):
            end = boundary_set.next_cut(position)
            digests.append((position, end, fingerprint(view[position:end])))
            position = end
        return digests

    spans, fp_s = _timed(_fingerprint_walk)

    def _index_round_trip():
        index = GlobalIndex(ObjectStorageService(), use_bloom=False)
        index.put_many((fp, i % 7) for i, (_s, _e, fp) in enumerate(spans))
        return index.get_many([fp for _s, _e, fp in spans])

    lookup_result, index_s = _timed(_index_round_trip)
    assert len(lookup_result.owners) == len({fp for _s, _e, fp in spans})
    assert not lookup_result.failed

    def _flush_containers():
        oss = ObjectStorageService()
        oss.create_bucket("bench")
        builder = ContainerBuilder(0, 4 << 20)
        written = 0
        for start, end, fp in spans:
            if builder.is_full():
                oss.put_object("bench", f"containers/{written:08d}", builder.payload())
                written += 1
                builder = ContainerBuilder(written, 4 << 20)
            builder.add_chunk(fp, data[start:end])
        if not builder.is_empty():
            oss.put_object("bench", f"containers/{written:08d}", builder.payload())
            written += 1
        return written

    containers, flush_s = _timed(_flush_containers)
    assert containers >= 1

    with ParallelExecutor(4) as executor:
        (engine_set, memo), engine_s = _timed(
            lambda: executor.chunk_and_fingerprint(chunker, data)
        )
    assert engine_set.length == boundary_set.length
    assert all(memo[(s, e)] == fp for s, e, fp in spans)

    total = chunk_s + fp_s + index_s + flush_s
    stages = [
        ("chunk", chunk_s),
        ("fingerprint", fp_s),
        ("index", index_s),
        ("flush", flush_s),
    ]
    lines = [
        "Microbenchmark: per-stage ingest wall-clock profile",
        "=" * 60,
        f"stream: {STREAM_BYTES >> 20} MiB, {len(spans)} chunks, "
        f"{containers} containers, best of {ROUNDS}",
    ]
    for name, seconds in stages:
        lines.append(
            f"{name:<12}: {seconds * 1e3:8.2f} ms  "
            f"({seconds / total * 100:5.1f}% of serial total)"
        )
    lines += [
        f"serial chunk+fingerprint : {(chunk_s + fp_s) * 1e3:8.2f} ms",
        f"engine chunk+fingerprint : {engine_s * 1e3:8.2f} ms "
        f"({(chunk_s + fp_s) / engine_s:4.2f}x)",
    ]
    record("microbench_stage_profile", "\n".join(lines))

    # Every stage must register, and the engine must not be slower than
    # the serial pair it replaces (generous margin for CI noise).
    assert all(seconds > 0 for _name, seconds in stages)
    assert engine_s <= (chunk_s + fp_s) * 1.25
