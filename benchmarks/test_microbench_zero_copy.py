"""Microbenchmark: zero-copy memoryview slicing in the ingest hot loop.

The chunkers (and the dedup engine's skip/superchunk paths) used to
materialise a ``bytes`` copy of every chunk payload before hashing it —
one full duplicate of the backup stream per job, made 4 KiB at a time.
They now hand out :class:`memoryview` slices and the single copy happens
where a chunk genuinely needs owning bytes (container packing).

This bench measures both effects on a real chunk stream:

* **allocation** (deterministic, asserted tightly): ``tracemalloc`` peak
  of fingerprinting every chunk via copies vs via views, and
* **wall-clock** (noisy, asserted leniently): the same loop timed.

Unlike the rest of the suite this measures *host* time, not virtual
time, because the copies it removes are a real-Python cost the virtual
cost model never charged for.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.chunking import make_chunker
from repro.chunking.base import ChunkerParams
from repro.fingerprint.hashing import fingerprint
from tests.conftest import random_bytes

STREAM_BYTES = 4 << 20
ROUNDS = 3


def make_stream():
    import numpy as np

    return random_bytes(np.random.default_rng(7), STREAM_BYTES)


def fingerprint_via_copies(chunks) -> int:
    total = 0
    for chunk in chunks:
        total += len(fingerprint(chunk.tobytes()))
    return total


def fingerprint_via_views(chunks) -> int:
    total = 0
    for chunk in chunks:
        total += len(fingerprint(chunk.data))
    return total


def _best_of(rounds: int, fn, chunks) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(chunks)
        best = min(best, time.perf_counter() - start)
    return best


def _peak_bytes(fn, chunks) -> int:
    tracemalloc.start()
    try:
        fn(chunks)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_microbench_zero_copy_fingerprinting(record):
    data = make_stream()
    chunker = make_chunker("fastcdc", ChunkerParams().scaled(4096))
    chunks = chunker.chunk(data)
    assert all(isinstance(chunk.data, memoryview) for chunk in chunks)
    # The views reassemble the stream exactly — zero-copy, not zero-fidelity.
    assert b"".join(chunks[i].data for i in range(len(chunks))) == data

    copy_peak = _peak_bytes(fingerprint_via_copies, chunks)
    view_peak = _peak_bytes(fingerprint_via_views, chunks)
    copy_time = _best_of(ROUNDS, fingerprint_via_copies, chunks)
    view_time = _best_of(ROUNDS, fingerprint_via_views, chunks)

    lines = [
        "Microbenchmark: chunk fingerprinting, bytes copies vs memoryviews",
        "=" * 65,
        f"stream: {STREAM_BYTES >> 20} MiB, {len(chunks)} chunks "
        f"(avg {STREAM_BYTES // len(chunks)} B)",
        f"copy path:  peak alloc {copy_peak:>8} B, "
        f"best of {ROUNDS}: {copy_time * 1e3:7.2f} ms",
        f"view path:  peak alloc {view_peak:>8} B, "
        f"best of {ROUNDS}: {view_time * 1e3:7.2f} ms",
        f"alloc ratio {copy_peak / max(1, view_peak):5.1f}x, "
        f"time ratio {copy_time / view_time:5.2f}x",
    ]
    record("microbench_zero_copy", "\n".join(lines))

    # Deterministic: the copy path's peak holds at least one full chunk
    # duplicate; the view path allocates only digests and loop overhead,
    # so it must stay under the largest chunk's size.
    max_chunk = max(chunk.size for chunk in chunks)
    assert copy_peak >= max_chunk
    assert view_peak < max_chunk
    # Lenient wall-clock check: dropping a per-chunk bytes() copy must
    # not make hashing slower (generous margin for CI noise).
    assert view_time <= copy_time * 1.25
