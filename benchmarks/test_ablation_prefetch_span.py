"""Ablation: the segment-recipe prefetch span.

DESIGN.md calls out that consecutive segment recipes are fetched in spans
(one ranged GET covers several segments) to keep recipe prefetching off
the dedup critical path.  This ablation sweeps the span and measures
prefetch requests and download time per backup.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.harness import run_slimstore_series
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator

SPANS = [1, 2, 4, 8]


def run_span_sweep():
    outcomes = {}
    for span in SPANS:
        generator = SDBGenerator(
            SDBConfig(table_count=1, initial_table_bytes=1 << 20,
                      version_count=5, seed=55)
        )
        config = SlimStoreConfig(
            prefetch_segment_span=span,
            chunk_merging=False,
            reverse_dedup=False,
            sparse_compaction=False,
        )
        outcomes[span] = run_slimstore_series(
            SlimStore(config), generator.versions(), run_gnode=False
        )
    return outcomes


def test_ablation_prefetch_span(benchmark, record):
    outcomes = benchmark.pedantic(run_span_sweep, rounds=1, iterations=1)

    rows = []
    stats = {}
    for span, series in outcomes.items():
        steady = series.versions[1:]
        fetches = sum(s.counters.get("segments_prefetched") for s in steady)
        download_ms = sum(s.breakdown.download for s in steady) * 1e3
        throughput = series.mean_throughput()
        ratio = sum(s.dedup_ratio for s in steady) / len(steady)
        stats[span] = (fetches, download_ms, throughput, ratio)
        rows.append([span, fetches, f"{download_ms:.1f}", f"{throughput:.1f}",
                     f"{ratio:.1%}"])
    record(
        "ablation_prefetch_span",
        format_table(
            "Ablation: segment-recipe prefetch span",
            ["span", "segments fetched", "download ms", "MB/s", "dedup"],
            rows,
        ),
    )

    # Wider spans trade a few extra fetched segments for fewer round
    # trips; dedup quality must not depend on the span.
    assert stats[4][2] >= stats[1][2] * 0.95
    for span in SPANS[1:]:
        assert abs(stats[span][3] - stats[1][3]) < 0.03
    # Span 1 issues the most prefetch requests per segment fetched; the
    # download time per fetched segment shrinks with the span.
    per_segment_1 = stats[1][1] / max(1, stats[1][0])
    per_segment_8 = stats[8][1] / max(1, stats[8][0])
    assert per_segment_8 < per_segment_1
