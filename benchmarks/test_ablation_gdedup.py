"""Ablation: the G-node's reverse-dedup accelerations (Section VI-A).

The paper equips global reverse deduplication with two accelerations:
"a global bloom filter is used to quickly filter out unique chunks" and
"caching the meta of the old container can also reduce the access number
of Rocks-OSS".  This ablation measures both: Rocks-OSS lookups saved by
the Bloom prefilter and old-container meta reads saved by the cache.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.workloads import SDBConfig, SDBGenerator


def run_ablation():
    outcomes = {}
    for bloom, meta_cache in [(True, True), (False, True), (True, False)]:
        generator = SDBGenerator(
            SDBConfig(table_count=1, initial_table_bytes=1 << 20,
                      version_count=6, seed=77)
        )
        config = SlimStoreConfig(
            gdedup_bloom_filter=bloom,
            gdedup_meta_cache=meta_cache,
            sparse_compaction=False,
            # This ablation isolates the serial-path accelerations; the
            # batched lookup path has its own ablation
            # (test_ablation_index_sharding.py).
            gdedup_batched_lookup=False,
        )
        store = SlimStore(config)
        index_lookups = 0
        meta_hits = 0
        meta_misses = 0
        gdedup_seconds = 0.0
        duplicates = 0
        for dataset_version in generator.versions():
            for item in dataset_version.files:
                report = store.backup(item.path, item.data)
                reverse = report.reverse_dedup
                meta_hits += reverse.counters.get("meta_cache_hits")
                meta_misses += reverse.counters.get("meta_cache_misses")
                gdedup_seconds += reverse.breakdown.elapsed_serialized()
                duplicates += reverse.duplicates_removed
        index_lookups = store.storage.global_index.counters.get("index_lookups")
        outcomes[(bloom, meta_cache)] = (
            index_lookups, meta_hits, meta_misses, gdedup_seconds, duplicates
        )
    return outcomes


def test_ablation_reverse_dedup_accelerations(benchmark, record):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for (bloom, meta_cache), (lookups, hits, misses, seconds, dups) in outcomes.items():
        rows.append([
            "on" if bloom else "off",
            "on" if meta_cache else "off",
            lookups, hits, misses, f"{seconds * 1e3:.1f}", dups,
        ])
    record(
        "ablation_gdedup",
        format_table(
            "Ablation: reverse-dedup Bloom prefilter and meta cache",
            ["bloom", "meta cache", "index lookups", "meta hits",
             "meta misses", "G-dedup ms", "dups removed"],
            rows,
        ),
    )

    full = outcomes[(True, True)]
    no_bloom = outcomes[(False, True)]
    no_cache = outcomes[(True, False)]

    # The Bloom prefilter eliminates most Rocks-OSS lookups for unique
    # chunks; without it every scanned chunk pays an index lookup.
    assert no_bloom[0] > 2 * full[0], (full[0], no_bloom[0])
    # The meta cache converts repeat old-container meta reads into hits.
    assert full[1] > 0
    assert no_cache[1] == 0
    assert no_cache[2] >= full[2]
    # Neither acceleration changes what gets deduplicated.
    assert full[4] == no_bloom[4] == no_cache[4]
    # Both accelerations save offline G-dedup time.
    assert full[3] <= no_bloom[3]
    assert full[3] <= no_cache[3]
