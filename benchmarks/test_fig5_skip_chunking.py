"""Fig 5: performance of history-aware skip chunking.

Paper findings:
(a) skip chunking improves dedup throughput ~2x for Rabin CDC and ~1.5x
    for FastCDC; throughput grows with chunk size and plateaus past 32 KB;
(b) skip chunking costs no deduplication ratio; the ratio itself degrades
    as chunks grow, sharply past 16 KB;
(c) the higher a file's duplication ratio, the bigger the skip win;
(d) with skip chunking the CPU share of CDC collapses (paper: ~2%).
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.harness import run_slimstore_series
from repro.bench.reporting import format_series, format_table
from repro.workloads import SDBConfig, SDBGenerator

CHUNK_SIZES = [4096, 8192, 16384, 32768, 65536]
DUP_RATIOS = [0.65, 0.75, 0.85, 0.95]


def _series(chunker: str, skip: bool, chunk_size: int, versions):
    config = SlimStoreConfig(
        chunker=chunker,
        chunk_avg_size=chunk_size,
        skip_chunking=skip,
        chunk_merging=False,
        reverse_dedup=False,
        sparse_compaction=False,
    )
    return run_slimstore_series(SlimStore(config), versions, run_gnode=False)


def run_chunk_size_sweep():
    generator = SDBGenerator(
        SDBConfig(table_count=1, initial_table_bytes=1 << 20, version_count=4,
                  duplication_ratio_min=0.84, duplication_ratio_max=0.84, seed=5)
    )
    versions = generator.versions()
    sweep = {}
    for chunker in ("rabin", "fastcdc"):
        for skip in (False, True):
            label = f"{chunker}{'+skip' if skip else ''}"
            sweep[label] = [
                _series(chunker, skip, size, versions) for size in CHUNK_SIZES
            ]
    return sweep


def run_dup_ratio_sweep():
    by_ratio = {}
    for ratio in DUP_RATIOS:
        generator = SDBGenerator(
            SDBConfig(table_count=1, initial_table_bytes=1 << 20, version_count=4,
                      duplication_ratio_min=ratio, duplication_ratio_max=ratio, seed=9)
        )
        versions = generator.versions()
        by_ratio[ratio] = {
            skip: _series("fastcdc", skip, 4096, versions) for skip in (False, True)
        }
    return by_ratio


def test_fig5_skip_chunking(benchmark, record):
    sweep, by_ratio = benchmark.pedantic(
        lambda: (run_chunk_size_sweep(), run_dup_ratio_sweep()), rounds=1, iterations=1
    )

    # (a) throughput and (b) dedup ratio vs chunk size.
    throughput = {
        label: [series_list[i].mean_throughput() for i in range(len(CHUNK_SIZES))]
        for label, series_list in sweep.items()
    }
    ratios = {
        label: [
            100 * sum(s.dedup_ratios()[1:]) / (len(s.versions) - 1)
            for s in series_list
        ]
        for label, series_list in sweep.items()
    }
    record(
        "fig5a_throughput_vs_chunk_size",
        format_series("Fig 5(a): dedup throughput (MB/s) vs chunk size",
                      "chunk", [f"{s//1024}KB" for s in CHUNK_SIZES], throughput),
    )
    record(
        "fig5b_ratio_vs_chunk_size",
        format_series("Fig 5(b): dedup ratio (%) vs chunk size",
                      "chunk", [f"{s//1024}KB" for s in CHUNK_SIZES], ratios),
    )

    # (c) throughput vs file duplication ratio.
    rows = []
    for ratio, pair in by_ratio.items():
        no_skip = pair[False].mean_throughput()
        with_skip = pair[True].mean_throughput()
        rows.append([f"{ratio:.2f}", f"{no_skip:.1f}", f"{with_skip:.1f}",
                     f"{with_skip / no_skip:.2f}x"])
    record(
        "fig5c_throughput_vs_dup_ratio",
        format_table("Fig 5(c): skip-chunking speedup vs duplication ratio",
                     ["dup ratio", "fastcdc MB/s", "+skip MB/s", "speedup"], rows),
    )

    # (d) CPU breakdown with skip chunking.
    skip_series = by_ratio[0.95][True]
    shares = skip_series.versions[-1].breakdown.cpu_shares()
    record(
        "fig5d_breakdown_with_skip",
        format_table("Fig 5(d): CPU breakdown with skip chunking (dup 0.95)",
                     ["chunking", "fingerprinting", "index", "other"],
                     [[f"{shares[k]:.1%}" for k in
                       ("chunking", "fingerprinting", "index_query", "other")]]),
    )

    # --- paper-shape assertions -----------------------------------------
    at_4k = {label: values[0] for label, values in throughput.items()}
    rabin_speedup = at_4k["rabin+skip"] / at_4k["rabin"]
    fastcdc_speedup = at_4k["fastcdc+skip"] / at_4k["fastcdc"]
    assert 1.5 <= rabin_speedup <= 3.5, rabin_speedup          # paper: ~2x
    assert 1.2 <= fastcdc_speedup <= 2.5, fastcdc_speedup      # paper: ~1.5x
    assert rabin_speedup > fastcdc_speedup

    # (b) skip chunking never damages the dedup ratio (it may help a
    # little at sparse-candidate chunk sizes by following old boundaries).
    for chunker in ("rabin", "fastcdc"):
        for i in range(len(CHUNK_SIZES)):
            assert ratios[f"{chunker}+skip"][i] >= ratios[chunker][i] - 1.5
    # Ratio degrades as chunk size grows.
    assert ratios["fastcdc"][0] > ratios["fastcdc"][-1]

    # (a) CPU-side throughput grows with chunk size (per-chunk overheads
    # amortise) and the measured curve stabilises past 32 KB.  At this
    # scaled-down file size the *measured* curve is additionally capped by
    # re-uploads of the ratio lost to huge chunks, which the paper's
    # GB-sized tables do not suffer as sharply.
    def cpu_tput(series_list, index):
        stats = series_list[index].versions[-1]
        return stats.logical_bytes / stats.breakdown.cpu_seconds()

    assert cpu_tput(sweep["fastcdc"], len(CHUNK_SIZES) - 1) > cpu_tput(sweep["fastcdc"], 0)
    assert cpu_tput(sweep["rabin"], len(CHUNK_SIZES) - 1) > cpu_tput(sweep["rabin"], 0)
    # Diminishing returns: the 32->64 KB step gains much less CPU-side
    # throughput than the 4->32 KB span (the paper's "stable after 32 KB").
    low_span = cpu_tput(sweep["fastcdc"], 3) - cpu_tput(sweep["fastcdc"], 0)
    top_step = cpu_tput(sweep["fastcdc"], 4) - cpu_tput(sweep["fastcdc"], 3)
    assert top_step < low_span

    # (c) speedup grows with the duplication ratio.
    speedups = [
        by_ratio[r][True].mean_throughput() / by_ratio[r][False].mean_throughput()
        for r in DUP_RATIOS
    ]
    assert speedups[-1] > speedups[0]

    # (d) the CDC share of CPU collapses (paper: ~2%).
    assert shares["chunking"] < 0.12, shares
