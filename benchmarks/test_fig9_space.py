"""Fig 9: the effect of space management on G-node.

Paper findings after 25 versions of S-DB:
(a) L-dedupe cuts 2.44 TB to 516.6 GB (4.8x); global reverse dedup
    (G-dedupe) trims another 2.4%; keeping only the last 10 versions slows
    space growth markedly after version 10.
(b) the space occupied by version 0 decreases over time: SCC moves useful
    chunks into new versions' containers and reverse dedup deletes old
    copies, so old versions get cheaper — the design goal of paying less
    for old backups.
"""

from __future__ import annotations

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_series, format_table

RETENTION = 10


def _config(reverse: bool) -> SlimStoreConfig:
    return SlimStoreConfig(
        reverse_dedup=reverse,
        sparse_compaction=True,
        min_superchunk_bytes=16 * 1024,
        max_superchunk_bytes=64 * 1024,
    )


def run_space_tracking(versions):
    l_store = SlimStore(_config(reverse=False))
    g_store = SlimStore(_config(reverse=True))
    retention_store = SlimStore(_config(reverse=True))

    logical_cumulative = []
    l_series, g_series, retention_series = [], [], []
    v0_container_ids: list[int] = []
    v0_series = []
    total_logical = 0

    for dataset_version in versions:
        for item in dataset_version.files:
            l_store.backup(item.path, item.data)
            report = g_store.backup(item.path, item.data)
            if dataset_version.version == 0:
                v0_container_ids.extend(report.result.new_container_ids)
            retention_store.backup(item.path, item.data)
            if dataset_version.version >= RETENTION:
                retention_store.delete_version(
                    item.path, dataset_version.version - RETENTION
                )
        total_logical += dataset_version.total_bytes
        logical_cumulative.append(total_logical)
        l_series.append(l_store.space_report().container_bytes)
        g_series.append(g_store.space_report().container_bytes)
        retention_series.append(retention_store.space_report().container_bytes)
        v0_series.append(
            sum(
                g_store.storage.containers.container_size(cid)
                for cid in v0_container_ids
                if g_store.storage.containers.exists(cid)
            )
        )
    return logical_cumulative, l_series, g_series, retention_series, v0_series


def test_fig9_space_management(benchmark, record, sdb_25_versions):
    _, versions = sdb_25_versions
    logical, l_series, g_series, retention_series, v0_series = benchmark.pedantic(
        run_space_tracking, args=(versions,), rounds=1, iterations=1
    )

    count = len(versions)
    record(
        "fig9a_space",
        format_series(
            "Fig 9(a): occupied space (MB) over 25 versions",
            "version", [f"v{i}" for i in range(count)],
            {
                "no dedup": [b / (1 << 20) for b in logical],
                "L-dedupe": [b / (1 << 20) for b in l_series],
                "L+G-dedupe": [b / (1 << 20) for b in g_series],
                "keep last 10": [b / (1 << 20) for b in retention_series],
            },
        ),
    )
    record(
        "fig9b_version0_space",
        format_series(
            "Fig 9(b): space still held by version 0's containers (MB)",
            "version", [f"v{i}" for i in range(count)],
            {"version 0 footprint": [b / (1 << 20) for b in v0_series]},
        ),
    )
    reduction = logical[-1] / l_series[-1]
    g_extra = 1 - g_series[-1] / l_series[-1]
    record(
        "fig9_summary",
        format_table(
            "Fig 9 summary (paper: 4.8x, then -2.4%; v0 shrinks over time)",
            ["metric", "value"],
            [
                ["logical total (MB)", f"{logical[-1] / (1 << 20):.1f}"],
                ["L-dedupe stored (MB)", f"{l_series[-1] / (1 << 20):.1f}"],
                ["L-dedupe reduction", f"{reduction:.2f}x"],
                ["G-dedupe extra saving", f"{g_extra:.1%}"],
                ["keep-last-10 stored (MB)", f"{retention_series[-1] / (1 << 20):.1f}"],
                ["v0 footprint v0 -> v24 (MB)",
                 f"{v0_series[0] / (1 << 20):.1f} -> {v0_series[-1] / (1 << 20):.1f}"],
            ],
        ),
    )

    # (a) L-dedupe achieves a multi-x reduction (paper: 4.8x).
    assert 2.5 <= reduction <= 10.0, reduction
    # G-dedupe saves a further percentage (paper: 2.4%; larger here
    # because reverse dedup also reclaims superchunk constituents' old
    # copies, which are a bigger share of this scaled-down run).
    assert 0.0 < g_extra < 0.40, g_extra
    # Version collection keeps space clearly below keep-everything.
    assert retention_series[-1] < 0.85 * g_series[-1]
    # Growth slows after version 10: the last-10 window's late growth is
    # well below the keep-all store's.
    late_growth_keep_all = g_series[-1] - g_series[RETENTION]
    late_growth_retention = retention_series[-1] - retention_series[RETENTION]
    assert late_growth_retention < 0.8 * late_growth_keep_all
    # (b) version 0's footprint decreases over time.
    assert v0_series[-1] < 0.9 * v0_series[0]
    assert all(b <= a * 1.001 for a, b in zip(v0_series, v0_series[1:]))
