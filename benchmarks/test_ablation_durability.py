"""Ablation: the durability x space-overhead x restore-latency curve.

The heat-aware durability tier trades extra bytes (replicas, parity) for
the ability to restore through lost primaries.  This ablation backs up
one seeded version chain under four policy points —

* ``off``            — no tier (the seed's behaviour): zero overhead,
  zero survivability;
* ``erasure-all``    — every referenced container erasure-coded (hot
  threshold unreachably high): parity-only overhead;
* ``replicate-hot``  — the repo default shape: hot containers 3-way
  replicated, cold ones erasure-coded;
* ``replicate-all``  — every referenced container 3-way replicated:
  maximum overhead, cheapest degraded reads

— then, for each point, kills each of the three fault domains in turn
(every primary ``.data`` in the domain deleted at rest) and measures how
many versions still restore byte-identically, and at what virtual-time
cost relative to a healthy restore.

Asserts the acceptance criteria directly: every tiered point restores
*all* versions under *any* single-domain loss, the untiered baseline
does not, and overhead orders ``off < erasure-all < replicate-all``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from tests.conftest import make_version_chain

RESULTS_DIR = Path(__file__).parent / "results"

PATH = "db/table.bin"
VERSIONS = 5
DOMAINS = 3

BASE_CONFIG = SlimStoreConfig().with_overrides(
    container_bytes=64 * 1024,
    segment_bytes=32 * 1024,
    min_superchunk_bytes=8 * 1024,
    max_superchunk_bytes=32 * 1024,
)

#: name -> config overrides (None disables the tier entirely).
POLICY_POINTS: list[tuple[str, dict | None]] = [
    ("off", None),
    (
        "erasure-all",
        dict(durability_hot_refs=10**6, durability_cold_refs=1),
    ),
    (
        "replicate-hot",
        dict(durability_hot_refs=3, durability_cold_refs=1),
    ),
    (
        "replicate-all",
        dict(durability_hot_refs=1, durability_cold_refs=1),
    ),
]


def build_store(overrides: dict | None) -> tuple[SlimStore, list[bytes]]:
    config = BASE_CONFIG
    if overrides is not None:
        config = config.with_overrides(
            durability_enabled=True,
            fault_domains=DOMAINS,
            durability_replicas=3,
            erasure_data_shards=4,
            erasure_parity_shards=2,
            **overrides,
        )
    store = SlimStore(config)
    rng = np.random.default_rng(20210414)
    chain = make_version_chain(rng, versions=VERSIONS)
    for payload in chain:
        store.backup(PATH, payload)
    if store.storage.durability is not None:
        # Measure steady state: age past the tombstone grace window so
        # copies and stripes retired by mid-chain promotions are reaped.
        for _ in range(store.storage.containers.grace_epochs + 1):
            store.storage.containers.advance_epoch()
        store.storage.durability.reap_retired()
    return store, chain


def snapshot_objects(store: SlimStore) -> dict[str, dict[str, bytes]]:
    return {
        bucket: dict(store.oss._backend(bucket)._objects)
        for bucket in store.oss.bucket_names()
    }


def restore_objects(store: SlimStore, state: dict[str, dict[str, bytes]]) -> None:
    for bucket, objects in state.items():
        store.oss._backend(bucket)._objects = dict(objects)


def timed_restore_sweep(store: SlimStore, chain: list[bytes]) -> tuple[int, float]:
    """(versions restored byte-identically, virtual seconds spent)."""
    survived = 0
    before = store.oss.clock.now
    for version, payload in enumerate(chain):
        try:
            if store.restore(PATH, version).data == payload:
                survived += 1
        except Exception:
            pass
    return survived, store.oss.clock.now - before


def kill_domain(store: SlimStore, domain: int) -> int:
    """Delete every primary container payload in one fault domain."""
    killed = 0
    for cid in sorted(store.storage.containers.container_ids()):
        if cid % DOMAINS == domain:
            store.oss.delete_object("slimstore", f"containers/{cid:012d}.data")
            killed += 1
    return killed


def test_ablation_durability(record):
    rows = []
    points = []
    overheads = {}
    for name, overrides in POLICY_POINTS:
        store, chain = build_store(overrides)
        space = store.space_report()
        overhead = space.durability_bytes / space.container_bytes
        overheads[name] = overhead

        healthy_ok, healthy_seconds = timed_restore_sweep(store, chain)
        assert healthy_ok == VERSIONS

        # Kill each domain in turn from the same aged state.
        base = snapshot_objects(store)
        worst_survived = VERSIONS
        degraded_seconds = 0.0
        for domain in range(DOMAINS):
            restore_objects(store, base)
            assert kill_domain(store, domain) > 0
            survived, seconds = timed_restore_sweep(store, chain)
            worst_survived = min(worst_survived, survived)
            degraded_seconds = max(degraded_seconds, seconds)
        restore_objects(store, base)

        durability = store.storage.durability
        classes = durability.classes() if durability is not None else {}
        histogram = {
            klass: sum(1 for k in classes.values() if k == klass)
            for klass in sorted(set(classes.values()))
        }
        slowdown = degraded_seconds / healthy_seconds if healthy_seconds else 0.0
        rows.append(
            [
                name,
                f"{overhead:.2f}x",
                f"{worst_survived}/{VERSIONS}",
                f"{healthy_seconds:.2f}s",
                f"{degraded_seconds:.2f}s",
                f"{slowdown:.2f}x",
            ]
        )
        points.append(
            {
                "policy": name,
                "overrides": overrides,
                "container_bytes": space.container_bytes,
                "durability_bytes": space.durability_bytes,
                "space_overhead": round(overhead, 4),
                "class_histogram": histogram,
                "versions_survive_any_single_domain_loss": worst_survived,
                "versions_total": VERSIONS,
                "healthy_restore_seconds": round(healthy_seconds, 4),
                "worst_degraded_restore_seconds": round(degraded_seconds, 4),
                "degraded_slowdown": round(slowdown, 4),
            }
        )

        if overrides is None:
            # The baseline really loses data to a domain outage.
            assert worst_survived < VERSIONS
            assert space.durability_bytes == 0
        else:
            # Every tiered point restores everything through any single
            # domain loss — the headline guarantee, at its real price.
            assert worst_survived == VERSIONS
            assert space.durability_bytes > 0

    # The curve is a real trade-off: parity is cheaper than replicas.
    assert 0 == overheads["off"] < overheads["erasure-all"]
    assert overheads["erasure-all"] < overheads["replicate-all"]

    record(
        "ablation_durability",
        format_table(
            "Ablation: durability policy x space overhead x restore latency",
            ["policy", "overhead", "survive", "healthy", "degraded", "slowdown"],
            rows,
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_durability.json").write_text(
        json.dumps(
            {
                "workload": {
                    "path": PATH,
                    "versions": VERSIONS,
                    "fault_domains": DOMAINS,
                    "container_bytes": BASE_CONFIG.container_bytes,
                },
                "points": points,
            },
            indent=2,
        )
        + "\n"
    )
