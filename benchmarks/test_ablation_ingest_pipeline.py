"""Ablation: ingest segments x index batching x flush buffers.

The segment-parallel ingest pipeline separates three effects the serial
closed form lumped together: how far chunking may run ahead of the
classification spine (``ingest_segments``), how the surviving index
probes are grouped into round trips (``index_batch_size``), and how many
container uploads ride in flight (``flush_buffers``).  This ablation
measures one dedup-heavy incremental backup — a mutated 8 MiB table that
also splices blocks from an already-indexed donor file, so some probes
survive the Bloom prefilter and become real batched round trips — then
replays its trace through :class:`ClusterSimulator` across the full knob
matrix at 1 and 8 concurrent jobs.

Doubles as the CI benchmark smoke.  It asserts the PR's acceptance
criteria directly:

* the pipelined path is byte-identical to the serial path (full bucket
  dump comparison),
* the event schedule at 0 extra segments / 0 extra buffers matches the
  closed-form ``backup_throughput`` within 10%, and
* the best pipelined cell delivers >= 2x the serial aggregate ingest
  throughput at 8 concurrent jobs (at the repo-default index batching).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro import SlimStore, SlimStoreConfig
from repro.bench.reporting import format_table
from repro.core.cluster import (
    BackupJobSpec,
    ClusterSimulator,
    JobSpec,
    ShardedIndexSpec,
)
from tests.conftest import random_bytes

RESULTS_DIR = Path(__file__).parent / "results"

PATH = "db/table.bin"
BATCHES = [1, 256]
KNOBS = [(0, 0), (2, 0), (2, 1), (4, 2)]
JOB_COUNTS = [1, 8]
#: The headline comparison: best pipelined cell vs serial, 8 jobs, at the
#: repo-default batching.
HEADLINE_BATCH = 256
TARGET_SPEEDUP = 2.0


def bench_config(batch: int, pipelined: bool) -> SlimStoreConfig:
    # 8 KiB chunks and 128 KiB containers: a backup-tuned geometry where
    # the lookup spine is small next to chunking/fingerprinting and the
    # container flushes are spread through the stream (overlappable).
    return SlimStoreConfig().with_overrides(
        ingest_pipeline=pipelined,
        chunk_avg_size=8192,
        container_bytes=128 * 1024,
        prefetch_segment_span=32,
        index_batch_size=batch,
    )


def make_workload():
    """A donor file plus an 8 MiB table mutated with donor splices.

    The spliced blocks are new to the table's own history but already in
    the global index, so their probes survive the Bloom prefilter — the
    traffic the batched ``get_many`` modeling exists for.
    """
    rng = np.random.default_rng(2021)
    donor = random_bytes(rng, 512 * 1024)
    base = random_bytes(rng, 8 << 20)
    v2 = bytearray(base)
    for i in range(8):
        offset = i * (len(base) // 8) + 123 * 1024
        v2[offset : offset + 32 * 1024] = donor[i * 32 * 1024 : (i + 1) * 32 * 1024]
    return donor, base, bytes(v2)


def run_chain(config: SlimStoreConfig, donor: bytes, base: bytes, v2: bytes):
    store = SlimStore(config)
    store.backup("db/donor.bin", donor)
    store.backup(PATH, base)
    return store, store.backup(PATH, v2).result


def dump_buckets(store: SlimStore) -> dict:
    return {
        bucket: dict(store.oss._backend(bucket)._objects)
        for bucket in store.oss.bucket_names()
    }


def test_ablation_ingest_pipeline(record):
    donor, base, v2 = make_workload()

    rows = []
    cells = []
    crosschecks = {}
    speedups = {}
    for batch in BATCHES:
        store, result = run_chain(bench_config(batch, True), donor, base, v2)

        # Byte-identical outputs: the serial path over the same workload
        # produces the exact same repository, object for object.
        serial_store, serial_result = run_chain(
            bench_config(batch, False), donor, base, v2
        )
        assert dump_buckets(store) == dump_buckets(serial_store)
        assert store.restore(PATH).data == v2

        sim = ClusterSimulator(
            1, index_spec=ShardedIndexSpec(store.config.index_shard_count, batch, 1)
        )
        serial_spec = JobSpec.from_backup_result(serial_result)
        pipe_spec = BackupJobSpec.from_backup_result(result, 0, 0)
        rpc_count = sum(len(r) for r in result.ingest.lookup_rpcs)

        for jobs in JOB_COUNTS:
            serial_tput = sim.backup_throughput(serial_spec, jobs)
            rows.append([batch, "serial", "-", "-", jobs, f"{serial_tput:.0f}", "-"])
            cells.append(
                {
                    "mode": "serial",
                    "index_batch": batch,
                    "jobs": jobs,
                    "throughput_mb_s": round(serial_tput, 1),
                }
            )
            for ahead, buffers in KNOBS:
                tput = sim.backup_throughput(pipe_spec.with_knobs(ahead, buffers), jobs)
                rows.append(
                    [batch, "pipelined", ahead, buffers, jobs, f"{tput:.0f}",
                     rpc_count]
                )
                cells.append(
                    {
                        "mode": "pipelined",
                        "index_batch": batch,
                        "ingest_segments": ahead,
                        "flush_buffers": buffers,
                        "jobs": jobs,
                        "throughput_mb_s": round(tput, 1),
                        "index_rpcs": rpc_count,
                    }
                )
            if jobs == 8:
                best = max(
                    sim.backup_throughput(pipe_spec.with_knobs(a, b), jobs)
                    for a, b in KNOBS
                )
                speedups[batch] = best / serial_tput

        # Cross-check: at 0/0 the event schedule serialises every stage,
        # so the closed-form comparator is the serialised breakdown plus
        # the batched drain of the Bloom-surviving keys.
        survivors = result.counters.get("ingest_index_keys")
        serialised = JobSpec(
            logical_bytes=result.logical_bytes,
            cpu_seconds=result.breakdown.elapsed_serialized(),
            network_bytes=0.0,
            index_lookups=survivors,
        )
        closed = sim.backup_throughput(serialised, 1)
        event = sim.backup_throughput(pipe_spec, 1)
        crosschecks[batch] = closed / event

    record(
        "ablation_ingest_pipeline",
        format_table(
            "Ablation: ingest segments x index batching x flush buffers",
            ["batch", "mode", "ahead", "buffers", "jobs", "MB/s", "rpcs"],
            rows,
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ingest.json").write_text(
        json.dumps(
            {
                "workload": {
                    "logical_bytes": len(v2),
                    "donor_bytes": len(donor),
                    "chunk_avg_size": 8192,
                    "container_bytes": 128 * 1024,
                    "lnode_count": 1,
                },
                "cells": cells,
                "closed_form_over_event_at_0_0": {
                    str(batch): round(ratio, 4)
                    for batch, ratio in crosschecks.items()
                },
                "speedup_8_jobs_best_vs_serial": {
                    str(batch): round(ratio, 3) for batch, ratio in speedups.items()
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Acceptance: closed form within 10% of the event schedule at 0/0.
    for batch, ratio in crosschecks.items():
        assert 0.9 <= ratio <= 1.1, (batch, ratio)
    # Acceptance: >= 2x aggregate ingest throughput at 8 concurrent jobs.
    assert speedups[HEADLINE_BATCH] >= TARGET_SPEEDUP, speedups
    # Unbatched probes make the serial drain the bottleneck; the pipeline
    # wins even bigger there.
    assert speedups[1] >= speedups[HEADLINE_BATCH]

    # Each knob helps (weakly) at 8 jobs: more look-ahead, then buffers.
    by_key = {
        (c["index_batch"], c.get("ingest_segments"), c.get("flush_buffers"),
         c["jobs"]): c["throughput_mb_s"]
        for c in cells
        if c["mode"] == "pipelined"
    }
    for batch in BATCHES:
        assert by_key[(batch, 2, 0, 8)] >= by_key[(batch, 0, 0, 8)]
        assert by_key[(batch, 2, 1, 8)] >= by_key[(batch, 2, 0, 8)]
        assert by_key[(batch, 4, 2, 8)] >= by_key[(batch, 2, 1, 8)]
