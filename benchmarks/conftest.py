"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one table or figure from the paper's evaluation
(Section VII).  Rendered results are printed and also written under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import SDBConfig, SDBGenerator

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Write one experiment's rendered output to disk and stdout."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def sdb_small():
    """A small S-DB instance shared by CPU-breakdown experiments."""
    generator = SDBGenerator(
        SDBConfig(
            table_count=2,
            initial_table_bytes=1 << 20,
            version_count=6,
            seed=2021,
        )
    )
    return generator, generator.versions()


@pytest.fixture(scope="session")
def sdb_25_versions():
    """The paper-shaped 25-version S-DB run (scaled to 2 x 1 MiB tables)."""
    generator = SDBGenerator(
        SDBConfig(
            table_count=2,
            initial_table_bytes=1 << 20,
            version_count=25,
            seed=2021,
        )
    )
    return generator, generator.versions()
