"""Fig 8: restore performance — FV cache, SCC, and the baselines.

Paper findings:
(a,b) with prefetching disabled, the FV cache beats ALACC which beats the
      OPT container cache (container-granular caching wastes space on
      useless chunks; LAW-limited vision loses distant fragments).  FV
      reads every container at most once.
(c)   at a large cache, read amplification of the *freshly backed-up*
      version is driven by sparse containers: with SCC the containers read
      per 100 MB stabilise after ~v7, while ALACC (no sparse-container
      treatment) keeps growing over versions.
(d)   with LAW prefetching on, SCC+FV restores the new version fastest and
      its speed does not decay with version age, unlike ALACC's.

Restores for (c) and (d) run immediately after each version's backup —
the paper's perspective of "restore performance of the new version over
time".
"""

from __future__ import annotations

import pytest

from repro import SlimStore, SlimStoreConfig
from repro.baselines import ALACCRestorer, HARDriver, OPTCacheRestorer
from repro.bench.reporting import format_series, format_table
from repro.core.restore import RestoreEngine
from repro.core.storage import StorageLayer
from repro.oss.object_store import ObjectStorageService
from repro.sim.cost_model import CostModel

CONTAINER = 512 * 1024
CACHE_SIZES = [1 << 20, 2 << 20, 4 << 20, 8 << 20]
SAMPLED = list(range(1, 25, 3))
BIG_CACHE = 8 << 20
THREADS = 6


def _slim_config(scc: bool) -> SlimStoreConfig:
    return SlimStoreConfig(
        sparse_compaction=scc,
        reverse_dedup=False,
        container_bytes=CONTAINER,
        min_superchunk_bytes=16 * 1024,
        max_superchunk_bytes=64 * 1024,
    )


def _fv_restore(store: SlimStore, path: str, version: int, cache_bytes: int,
                threads: int):
    config = store.config.with_overrides(
        restore_cache_bytes=cache_bytes,
        restore_disk_cache_bytes=4 * cache_bytes,
        verify_restore=False,
    )
    engine = RestoreEngine(config, store.storage, store.cost_model)
    return engine.restore(path, version, prefetch_threads=threads)


def _records(storage: StorageLayer, path: str, version: int):
    return storage.recipes.get_recipe(path, version).all_records()


@pytest.fixture(scope="module")
def fig8_data(sdb_25_versions):
    """Backups on three systems with at-time restore measurements."""
    _, versions = sdb_25_versions
    path = versions[0].files[0].path

    scc_store = SlimStore(_slim_config(scc=True))
    plain_store = SlimStore(_slim_config(scc=False))
    har_storage = StorageLayer.create(ObjectStorageService(CostModel()))
    har = HARDriver(_slim_config(scc=False), har_storage)

    at_time: dict[str, list] = {"SCC+FV": [], "HAR+OPT": [], "ALACC": []}
    for dataset_version in versions:
        for item in dataset_version.files:
            scc_store.backup(item.path, item.data)
            plain_store.backup(item.path, item.data, run_gnode=False)
            har.backup(item.path, item.data)
        target = dataset_version.version
        if target not in SAMPLED:
            continue
        at_time["SCC+FV"].append(
            _fv_restore(scc_store, path, target, BIG_CACHE, THREADS)
        )
        at_time["HAR+OPT"].append(
            OPTCacheRestorer(
                har_storage.containers, BIG_CACHE // CONTAINER,
                prefetch_threads=THREADS,
            ).restore(_records(har_storage, path, target))
        )
        at_time["ALACC"].append(
            ALACCRestorer(
                plain_store.storage.containers, BIG_CACHE // 2, BIG_CACHE // 2,
                prefetch_threads=THREADS,
            ).restore(_records(plain_store.storage, path, target))
        )
    return versions, scc_store, plain_store, har_storage, at_time


def test_fig8ab_cache_comparison(benchmark, record, fig8_data):
    versions, _scc_store, plain_store, _har, _at_time = fig8_data
    path = versions[0].files[0].path
    target = 22  # a late version: fragmentation fully developed

    def run():
        rows = {}
        for cache_bytes in CACHE_SIZES:
            fv = _fv_restore(plain_store, path, target, cache_bytes, threads=0)
            records = _records(plain_store.storage, path, target)
            opt = OPTCacheRestorer(
                plain_store.storage.containers, max(1, cache_bytes // CONTAINER)
            ).restore(records)
            alacc = ALACCRestorer(
                plain_store.storage.containers, cache_bytes // 2, cache_bytes // 2
            ).restore(records)
            rows[cache_bytes] = (fv, opt, alacc)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for cache_bytes, (fv, opt, alacc) in rows.items():
        table.append([
            f"{cache_bytes >> 20}MB",
            f"{fv.containers_per_100mb:.0f}", f"{fv.throughput_mb_s:.1f}",
            f"{opt.containers_per_100mb:.0f}", f"{opt.throughput_mb_s:.1f}",
            f"{alacc.containers_per_100mb:.0f}", f"{alacc.throughput_mb_s:.1f}",
        ])
    record(
        "fig8ab_cache_comparison",
        format_table(
            "Fig 8(a,b): restore caches at version 22 (prefetch off)",
            ["cache", "FV ctr/100MB", "FV MB/s",
             "OPT ctr/100MB", "OPT MB/s", "ALACC ctr/100MB", "ALACC MB/s"],
            table,
        ),
    )

    for cache_bytes, (fv, opt, alacc) in rows.items():
        # FV never re-reads a container and reads the fewest.
        assert fv.counters.get("repeated_container_reads") == 0
        assert fv.containers_read <= opt.containers_read
        assert fv.containers_read <= alacc.containers_read
        assert fv.throughput_mb_s >= 0.95 * max(opt.throughput_mb_s, alacc.throughput_mb_s)
    # The container-granular OPT cache suffers most at the smallest cache
    # (useless chunks occupy whole-container slots).
    small_fv, small_opt, small_alacc = rows[CACHE_SIZES[0]]
    assert small_opt.containers_read >= small_alacc.containers_read
    assert small_opt.containers_read > small_fv.containers_read


def test_fig8c_read_amplification_over_versions(benchmark, record, fig8_data):
    _versions, _scc, _plain, _har, at_time = benchmark.pedantic(
        lambda: fig8_data, rounds=1, iterations=1
    )
    series = {
        name: [result.containers_per_100mb for result in results]
        for name, results in at_time.items()
    }
    record(
        "fig8c_containers_per_version",
        format_series(
            "Fig 8(c): containers read per 100 MB, new version at its own time",
            "version", [f"v{v}" for v in SAMPLED], series,
        ),
    )

    scc_series = series["SCC+FV"]
    alacc_series = series["ALACC"]

    def mean(values):
        return sum(values) / len(values)

    # SCC stabilises: the late-era average reads barely more containers
    # than the v7/v10 era (the paper's "stabilizing after version 7").
    scc_mid = mean(scc_series[2:4])
    scc_late = mean(scc_series[5:])
    assert scc_late <= 1.30 * scc_mid, (scc_mid, scc_late, scc_series)
    # ALACC (no sparse-container treatment) keeps growing over versions...
    assert alacc_series[-1] > 3.0 * alacc_series[0]
    assert mean(alacc_series[5:]) > 1.15 * mean(alacc_series[2:4])
    # ...and ends above SCC+FV.
    assert alacc_series[-1] > scc_series[-1]


def test_fig8d_prefetch_throughput(benchmark, record, fig8_data):
    _versions, _scc, _plain, _har, at_time = benchmark.pedantic(
        lambda: fig8_data, rounds=1, iterations=1
    )
    series = {
        name: [result.throughput_mb_s for result in results]
        for name, results in at_time.items()
    }
    record(
        "fig8d_prefetch_throughput",
        format_series(
            "Fig 8(d): restore throughput (MB/s) with LAW prefetching (6 threads)",
            "version", [f"v{v}" for v in SAMPLED], series,
        ),
    )

    fv_tput = series["SCC+FV"]
    har_tput = series["HAR+OPT"]
    alacc_tput = series["ALACC"]

    def late_mean(values):
        return sum(values[-3:]) / 3

    # SCC+FV leads on late versions (the paper's 9.75x / 16.35x gaps
    # compress at this scale, but the ordering must hold).  The event
    # pipeline makes single versions noisy — a restore here is only a
    # handful of container reads, so one large first read swings a point —
    # hence the late-era mean rather than the last sample alone.
    assert late_mean(fv_tput) > late_mean(har_tput)
    assert late_mean(fv_tput) > late_mean(alacc_tput)
    # New versions restore about as fast as early ones under SCC+FV.
    assert fv_tput[-1] >= 0.75 * fv_tput[0]
    # ALACC's restore speed decays over versions.
    assert late_mean(alacc_tput) < 0.9 * alacc_tput[0]
