"""Ablation: inline-only vs hybrid dedup across the workload suite.

SLIMSTORE's pipeline is deliberately two-stage: the L-node's inline
similarity dedup is approximate (it only compares against *similar*
files and skips chunking inside matched regions), and the G-node's
out-of-line reverse dedup sweeps the global fingerprint index to
reclaim whatever the inline stage missed.  Whether that second stage
pays for itself depends on the workload: scattered cross-file
duplicates (a VM fleet cloning a golden image) are invisible inline,
while an append-only mail log is already fully handled by skip
chunking, leaving the reverse pass scanning mostly unique chunks.

This ablation runs every workload generator through both
configurations —

* ``inline``  — ``reverse_dedup=False, sparse_compaction=False``;
* ``hybrid``  — the steady-state default (reverse dedup + compaction)

— and grades the reverse pass on its *scan efficiency*: duplicates
removed per chunk scanned.  The pass **wins** on a workload when at
least one scanned chunk in five is a reclaimable duplicate
(``WIN_HIT_RATE``) and **loses** when fewer than one in seven is
(``LOSE_HIT_RATE``) — the sweep is then mostly wasted G-node work for
space inline dedup had substantially already saved.  Reclaimed bytes,
maintenance time and the oracle gap are reported per workload in
``BENCH_workloads.json``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro import SlimStore
from repro.analysis import conformance
from repro.bench.reporting import format_table
from repro.workloads import GENERATOR_NAMES, make_generator
from tests.conftest import SMALL_CONFIG

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 7
VERSIONS = 4

#: Scan efficiency at or above which the reverse pass clearly wins.
WIN_HIT_RATE = 0.20
#: Scan efficiency below which it clearly loses.
LOSE_HIT_RATE = 0.15

INLINE_CONFIG = replace(SMALL_CONFIG, reverse_dedup=False, sparse_compaction=False)


def run_workload(name: str, config) -> dict:
    """Back one generator's stream into a fresh store; return metrics."""
    generator = make_generator(name, seed=SEED, version_count=VERSIONS)
    versions = generator.versions()
    store = SlimStore(config)
    scanned = removed = 0
    for version in versions:
        for item in sorted(version.files, key=lambda f: f.path):
            report = store.backup(item.path, item.data)
            if report.reverse_dedup is not None:
                scanned += report.reverse_dedup.chunks_scanned
                removed += report.reverse_dedup.duplicates_removed
    backup_seconds = store.oss.clock.now
    grade = conformance(
        name, SEED, versions, store, config, generator.fresh_random_bytes
    )
    return {
        "logical_bytes": grade.bound.logical_bytes,
        "live_bytes": round(
            grade.bound.logical_bytes * (1.0 - grade.measured_ratio)
        ),
        "measured_ratio": grade.measured_ratio,
        "oracle_gap": grade.gap,
        "chunk_bound_ratio": grade.bound.chunk_bound_ratio,
        "backup_seconds": backup_seconds,
        "chunks_scanned": scanned,
        "duplicates_removed": removed,
    }


def test_ablation_workloads(record):
    rows = []
    points = []
    wins = []
    losses = []
    for name in GENERATOR_NAMES:
        inline = run_workload(name, INLINE_CONFIG)
        hybrid = run_workload(name, SMALL_CONFIG)

        # The reverse pass may only ever help the space ratio.
        assert hybrid["live_bytes"] <= inline["live_bytes"]
        assert hybrid["chunks_scanned"] > 0

        reclaimed = inline["live_bytes"] - hybrid["live_bytes"]
        reclaimed_fraction = reclaimed / inline["logical_bytes"]
        hit_rate = hybrid["duplicates_removed"] / hybrid["chunks_scanned"]
        extra_seconds = hybrid["backup_seconds"] - inline["backup_seconds"]
        verdict = (
            "win"
            if hit_rate >= WIN_HIT_RATE
            else "lose" if hit_rate < LOSE_HIT_RATE else "even"
        )
        (wins if verdict == "win" else losses if verdict == "lose" else []).append(
            name
        )

        rows.append(
            [
                name,
                f"{inline['measured_ratio']:.3f}",
                f"{hybrid['measured_ratio']:.3f}",
                f"{reclaimed_fraction:+.3f}",
                f"{hit_rate:.2f}",
                f"{extra_seconds:+.2f}s",
                f"{hybrid['oracle_gap']:.3f}",
                verdict,
            ]
        )
        points.append(
            {
                "workload": name,
                "seed": SEED,
                "versions": VERSIONS,
                "logical_bytes": inline["logical_bytes"],
                "inline": {
                    k: round(v, 4) if isinstance(v, float) else v
                    for k, v in inline.items()
                },
                "hybrid": {
                    k: round(v, 4) if isinstance(v, float) else v
                    for k, v in hybrid.items()
                },
                "reclaimed_bytes": reclaimed,
                "reclaimed_fraction_of_logical": round(reclaimed_fraction, 4),
                "reverse_scan_hit_rate": round(hit_rate, 4),
                "extra_maintenance_seconds": round(extra_seconds, 4),
                "reverse_dedup_verdict": verdict,
            }
        )

    # The ablation's headline claim: the hybrid design is a genuine
    # trade-off, not uniformly good — at least one workload where the
    # reverse pass earns its keep, at least one where it mostly spins.
    assert wins, "no workload where reverse dedup wins"
    assert losses, "no workload where reverse dedup loses"
    assert "vmfleet" in wins or "rdata" in wins or "sdb" in wins
    assert "maillog" in losses

    record(
        "ablation_workloads",
        format_table(
            "Ablation: inline-only vs hybrid dedup per workload",
            [
                "workload",
                "inline",
                "hybrid",
                "reclaim",
                "hit-rate",
                "extra-t",
                "gap",
                "verdict",
            ],
            rows,
        ),
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_workloads.json").write_text(
        json.dumps(
            {
                "seed": SEED,
                "versions": VERSIONS,
                "win_hit_rate": WIN_HIT_RATE,
                "lose_hit_rate": LOSE_HIT_RATE,
                "wins": wins,
                "losses": losses,
                "points": points,
            },
            indent=2,
        )
        + "\n"
    )
